//! Dual-window SLO burn-rate evaluation.
//!
//! An objective ("99 % of requests finish under the latency threshold",
//! "95 % of connections are not shed") has an error budget of
//! `1 - target`. The **burn rate** over a time window is the observed
//! bad fraction divided by that budget: burn 1.0 spends the budget
//! exactly at the sustainable pace, burn 10 spends a month's budget in
//! three days. Alerting on a single window forces a bad trade — a short
//! window pages on blips, a long one pages an hour late — so the
//! standard practice (Google SRE workbook, ch. 5) is to require **both**
//! a fast window (default 1 min — is it burning *now*?) and a slow
//! window (default 30 min — has it burned *enough to matter*?) to
//! exceed the threshold before firing.
//!
//! [`SloMonitor`] implements this over *cumulative* good/bad counters:
//! the caller feeds monotone snapshots ([`SloMonitor::observe`]), the
//! monitor keeps a pruned ring of them, and [`SloMonitor::report`]
//! differences the ring against each window's start to produce the two
//! burn rates and the firing verdict. The query server evaluates one
//! monitor per objective on `GET /v1/health` (200 when no objective
//! fires, 503 otherwise) and `loadgen` applies the same thresholds as
//! its soak pass/fail criteria.

use std::collections::VecDeque;

use crate::SentinelError;

/// One service-level objective: a name and the target good fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Stable identifier, e.g. `latency_p99` or `shed_rate`.
    pub name: String,
    /// Target good fraction in `(0, 1)`; the error budget is `1 - target`.
    pub target: f64,
}

/// The window pair and firing threshold for burn-rate evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindows {
    /// Fast window in nanoseconds (default 1 min): is it burning now?
    pub fast_ns: u64,
    /// Slow window in nanoseconds (default 30 min): has enough burned?
    pub slow_ns: u64,
    /// Both windows' burn rates must exceed this to fire.
    pub max_burn: f64,
}

impl Default for BurnWindows {
    fn default() -> Self {
        BurnWindows {
            fast_ns: 60 * 1_000_000_000,
            slow_ns: 30 * 60 * 1_000_000_000,
            max_burn: 2.0,
        }
    }
}

/// One cumulative snapshot: totals as of `t_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Snapshot {
    t_ns: u64,
    good: u64,
    bad: u64,
}

/// The verdict for one objective at one evaluation instant.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnReport {
    /// The objective's name.
    pub name: String,
    /// The objective's target good fraction.
    pub target: f64,
    /// Burn rate over the fast window (0 when the window saw nothing).
    pub fast_burn: f64,
    /// Burn rate over the slow window (0 when the window saw nothing).
    pub slow_burn: f64,
    /// The configured firing threshold.
    pub max_burn: f64,
    /// `true` when both windows exceed `max_burn`.
    pub firing: bool,
    /// Lifetime good events (last snapshot's cumulative total).
    pub good: u64,
    /// Lifetime bad events (last snapshot's cumulative total).
    pub bad: u64,
}

/// Rolling burn-rate state for one objective (see the module docs).
#[derive(Debug, Clone)]
pub struct SloMonitor {
    objective: Objective,
    windows: BurnWindows,
    /// Snapshot ring, oldest first; pruned to the slow window plus one
    /// baseline point at or before its left edge.
    points: VecDeque<Snapshot>,
    /// Snapshots closer together than this coalesce in place, bounding
    /// the ring at ~64 points per fast window regardless of load.
    resolution_ns: u64,
}

impl SloMonitor {
    /// Builds a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`SentinelError::SloConfig`] when `target` is outside
    /// `(0, 1)`, a window is zero, the fast window is not shorter than
    /// the slow one, or `max_burn` is not a positive finite number.
    pub fn new(objective: Objective, windows: BurnWindows) -> Result<Self, SentinelError> {
        if !(objective.target > 0.0 && objective.target < 1.0) {
            return Err(SentinelError::SloConfig(format!(
                "target must be in (0, 1), got {}",
                objective.target
            )));
        }
        if windows.fast_ns == 0 || windows.fast_ns >= windows.slow_ns {
            return Err(SentinelError::SloConfig(format!(
                "need 0 < fast window < slow window, got {} vs {} ns",
                windows.fast_ns, windows.slow_ns
            )));
        }
        if !(windows.max_burn > 0.0 && windows.max_burn.is_finite()) {
            return Err(SentinelError::SloConfig(format!(
                "max_burn must be positive and finite, got {}",
                windows.max_burn
            )));
        }
        let resolution_ns = (windows.fast_ns / 64).max(1);
        Ok(SloMonitor { objective, windows, points: VecDeque::new(), resolution_ns })
    }

    /// The objective this monitor evaluates.
    #[must_use]
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The window configuration this monitor evaluates with.
    #[must_use]
    pub fn windows(&self) -> BurnWindows {
        self.windows
    }

    /// Feeds one cumulative snapshot: `good`/`bad` are lifetime totals
    /// as of `t_ns`. Snapshots must be fed in non-decreasing `t_ns`
    /// order with non-decreasing totals; a regression in either (a
    /// restarted counter) resets the ring rather than reporting a
    /// negative window delta.
    pub fn observe(&mut self, t_ns: u64, good: u64, bad: u64) {
        let snap = Snapshot { t_ns, good, bad };
        if let Some(last) = self.points.back_mut() {
            if t_ns < last.t_ns || good < last.good || bad < last.bad {
                self.points.clear();
            } else if t_ns - last.t_ns < self.resolution_ns {
                // Coalesce: the newest totals at (almost) the same
                // instant replace the previous point.
                last.good = good;
                last.bad = bad;
                last.t_ns = t_ns;
                self.prune(t_ns);
                return;
            }
        }
        self.points.push_back(snap);
        self.prune(t_ns);
    }

    /// Drops points older than the slow window, keeping one point at or
    /// before the window's left edge as the differencing baseline.
    fn prune(&mut self, now_ns: u64) {
        let edge = now_ns.saturating_sub(self.windows.slow_ns);
        while self.points.len() >= 2 {
            // Safe by the length guard; avoids a panic path for R1.
            let (Some(first), Some(second)) = (self.points.front(), self.points.get(1)) else {
                return;
            };
            if first.t_ns < edge && second.t_ns <= edge {
                self.points.pop_front();
            } else {
                return;
            }
        }
    }

    /// The `(good, bad)` event deltas inside the window ending at
    /// `now_ns`. These are the *summable* form of the burn state: a
    /// federation layer can add them across replicas and feed the sums
    /// to [`burn_rate`], which is exactly how a fleet-wide burn verdict
    /// is computed from per-replica scrapes.
    #[must_use]
    pub fn window_counts(&self, now_ns: u64, window_ns: u64) -> (u64, u64) {
        let Some(last) = self.points.back() else {
            return (0, 0);
        };
        let edge = now_ns.saturating_sub(window_ns);
        // Baseline: the newest point at or before the window's left
        // edge; a window older than every point starts from zero.
        let mut baseline = Snapshot::default();
        for p in &self.points {
            if p.t_ns <= edge {
                baseline = *p;
            } else {
                break;
            }
        }
        (
            last.good.saturating_sub(baseline.good),
            last.bad.saturating_sub(baseline.bad),
        )
    }

    /// The burn rate over the window ending at `now_ns`: bad fraction
    /// of the events inside the window divided by the error budget. A
    /// window with no events burns 0 (an idle service is healthy, not
    /// unknown).
    fn window_burn(&self, now_ns: u64, window_ns: u64) -> f64 {
        let (good, bad) = self.window_counts(now_ns, window_ns);
        burn_rate(good, bad, self.objective.target)
    }

    /// Evaluates both windows as of `now_ns`.
    #[must_use]
    pub fn report(&self, now_ns: u64) -> BurnReport {
        let fast_burn = self.window_burn(now_ns, self.windows.fast_ns);
        let slow_burn = self.window_burn(now_ns, self.windows.slow_ns);
        let last = self.points.back().copied().unwrap_or_default();
        BurnReport {
            name: self.objective.name.clone(),
            target: self.objective.target,
            fast_burn,
            slow_burn,
            max_burn: self.windows.max_burn,
            firing: fast_burn > self.windows.max_burn && slow_burn > self.windows.max_burn,
            good: last.good,
            bad: last.bad,
        }
    }
}

impl BurnReport {
    /// Renders the report as a JSON object with a stable key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"target\":{},\"fast_burn\":{},\"slow_burn\":{},\
             \"max_burn\":{},\"firing\":{},\"good\":{},\"bad\":{}}}",
            escape_json(&self.name),
            fmt_f64(self.target),
            fmt_f64(self.fast_burn),
            fmt_f64(self.slow_burn),
            fmt_f64(self.max_burn),
            self.firing,
            self.good,
            self.bad
        )
    }
}

/// The burn rate implied by `good`/`bad` event counts against a target
/// good fraction: bad fraction divided by the error budget
/// (`1 - target`), 0 when the counts are empty. Shared by the
/// per-monitor window evaluation and the federation layer's
/// summed-counter fleet verdict, so both compute burn identically.
#[must_use]
pub fn burn_rate(good: u64, bad: u64, target: f64) -> f64 {
    let total = good + bad;
    if total == 0 {
        return 0.0;
    }
    let bad_fraction = bad as f64 / total as f64;
    let budget = 1.0 - target;
    bad_fraction / budget
}

/// Renders a string as a quoted JSON literal (objective names are
/// static identifiers, but the report must stay valid JSON for any).
/// Shared with the federation layer's snapshot renderer.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest-roundtrip float rendering that stays valid JSON (never
/// `NaN`/`inf`, which burn math cannot produce but belts and braces).
/// Shared with the federation layer so fleet JSON round-trips floats
/// bit-for-bit.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn monitor(target: f64) -> SloMonitor {
        SloMonitor::new(
            Objective { name: "latency_p99".to_string(), target },
            BurnWindows { fast_ns: 60 * S, slow_ns: 1_800 * S, max_burn: 2.0 },
        )
        .expect("valid config")
    }

    #[test]
    fn rejects_bad_configuration() {
        let windows = BurnWindows::default();
        let bad_target = |t| {
            SloMonitor::new(Objective { name: "x".to_string(), target: t }, windows)
        };
        assert!(bad_target(0.0).is_err());
        assert!(bad_target(1.0).is_err());
        assert!(bad_target(1.5).is_err());
        assert!(bad_target(0.99).is_ok());
        let swapped = BurnWindows { fast_ns: 10 * S, slow_ns: 5 * S, max_burn: 2.0 };
        assert!(SloMonitor::new(Objective { name: "x".to_string(), target: 0.99 }, swapped).is_err());
        let no_burn = BurnWindows { max_burn: 0.0, ..BurnWindows::default() };
        assert!(SloMonitor::new(Objective { name: "x".to_string(), target: 0.99 }, no_burn).is_err());
    }

    #[test]
    fn idle_monitor_is_healthy() {
        let m = monitor(0.99);
        let r = m.report(3_600 * S);
        assert_eq!(r.fast_burn, 0.0);
        assert_eq!(r.slow_burn, 0.0);
        assert!(!r.firing);
    }

    #[test]
    fn steady_burn_at_the_budget_is_burn_one() {
        let mut m = monitor(0.99);
        // 1 bad per 100 events, continuously: exactly the budget pace.
        for i in 0..2_000u64 {
            let t = i * 2 * S;
            m.observe(t, i * 99, i);
        }
        let r = m.report(2_000 * 2 * S);
        assert!((r.fast_burn - 1.0).abs() < 0.1, "fast {}", r.fast_burn);
        assert!((r.slow_burn - 1.0).abs() < 0.1, "slow {}", r.slow_burn);
        assert!(!r.firing, "burn 1.0 must not fire at max_burn 2.0");
    }

    #[test]
    fn fires_only_when_both_windows_exceed_max_burn() {
        let mut m = monitor(0.99);
        // A long healthy history…
        let mut good = 0u64;
        for i in 0..1_700u64 {
            good += 100;
            m.observe(i * S, good, 0);
        }
        // …then a heavy 10-second 100%-bad spike, large enough that
        // even diluted across the slow window it overspends the budget.
        let mut bad = 0u64;
        for i in 0..10u64 {
            bad += 10_000;
            m.observe((1_700 + i) * S, good, bad);
        }
        let r = m.report(1_710 * S);
        assert!(r.fast_burn > m.windows.max_burn, "fast {}", r.fast_burn);
        assert!(r.slow_burn > m.windows.max_burn, "slow {}", r.slow_burn);
        assert!(r.firing, "sustained spike fires");

        // The same spike against a 30-minute flood of good traffic
        // keeps the slow burn under threshold: no firing.
        let mut m2 = monitor(0.99);
        let mut good = 0u64;
        for i in 0..1_799u64 {
            good += 100_000;
            m2.observe(i * S, good, 0);
        }
        m2.observe(1_799 * S, good, 200_000);
        let r2 = m2.report(1_800 * S);
        assert!(r2.fast_burn > m2.windows.max_burn, "fast {}", r2.fast_burn);
        assert!(r2.slow_burn < m2.windows.max_burn, "slow {}", r2.slow_burn);
        assert!(!r2.firing, "short blip must not fire");
    }

    #[test]
    fn recovery_clears_the_fast_window_first() {
        let mut m = monitor(0.95);
        // A bad minute…
        for i in 0..60u64 {
            m.observe(i * S, i, i);
        }
        // …then five healthy minutes.
        for i in 60..360u64 {
            m.observe(i * S, 60 + (i - 60) * 100, 60);
        }
        let r = m.report(360 * S);
        assert_eq!(r.fast_burn, 0.0, "fast window is clean after recovery");
        assert!(r.slow_burn > 0.0, "slow window still remembers the incident");
        assert!(!r.firing);
    }

    #[test]
    fn ring_stays_bounded_and_counter_reset_clears() {
        let mut m = monitor(0.99);
        for i in 0..1_000_000u64 {
            // A snapshot every millisecond for ~17 minutes.
            m.observe(i * 1_000_000, i, 0);
        }
        assert!(
            m.points.len() <= 64 * 31 + 2,
            "ring must stay bounded, got {}",
            m.points.len()
        );
        // A cumulative total going backwards (process restart) resets.
        m.observe(1_000_000 * 1_000_000, 5, 0);
        assert_eq!(m.points.len(), 1);
    }

    #[test]
    fn report_renders_stable_json() {
        let mut m = monitor(0.99);
        m.observe(10 * S, 99, 1);
        let json = m.report(10 * S).to_json();
        assert!(json.starts_with("{\"name\":\"latency_p99\",\"target\":0.99,"));
        assert!(json.contains("\"firing\":false"));
        assert!(json.ends_with("\"good\":99,\"bad\":1}"));
        crate::json::parse(&json).expect("valid JSON");
    }
}
