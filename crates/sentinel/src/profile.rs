//! Folds the `NANOCOST_TRACE` JSONL span stream into a profile.
//!
//! PR 2 gave the model pipeline spans; this module turns a captured
//! stream into (1) folded-stack lines (`root;child;leaf <self_ns>`),
//! the interchange format every flamegraph renderer accepts, and (2) a
//! self/total-time hotspot table. Self time is a span's elapsed time
//! minus the elapsed time of its direct children, so the folded lines
//! sum to the root spans' wall time — the invariant the acceptance
//! tests pin.
//!
//! The second half of this module aggregates the *sampling* profiler's
//! `"type":"stack_sample"` records (emitted by
//! `nanocost-trace::stack_registry` at `NANOCOST_PROFILE_HZ`) into a
//! [`ProfileReport`]: per-frame self/total sample counts, folded
//! stacks, per-endpoint and per-request attribution, all with
//! byte-deterministic JSON so two reports of the same window compare
//! equal and `profile_diff` can gate on the relative self-share shift.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::{self, JsonValue};
use crate::SentinelError;

/// One span reconstructed from the stream.
#[derive(Debug, Clone, PartialEq)]
struct SpanNode {
    name: String,
    parent: Option<u64>,
    thread: u64,
    /// Entry time in nanoseconds (the enter record's `ts_us` scaled
    /// up); anchors window clipping.
    start_ns: u64,
    /// Elapsed nanoseconds from the exit record (clipped to the window
    /// when one is active); `None` while unclosed or fully outside the
    /// window.
    elapsed_ns: Option<u64>,
    /// Sum of direct (closed) children's elapsed nanoseconds.
    children_ns: u64,
}

/// A reconstructed span profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    spans: BTreeMap<u64, SpanNode>,
    /// Half-open time window `[since, until)` in epoch nanoseconds;
    /// span elapsed time is clipped to it. `None` = whole capture.
    window: Option<(u64, u64)>,
    /// Spans that entered but never exited (a crash or truncated
    /// capture); they are excluded from timing but kept for stack paths.
    pub unclosed: usize,
    /// Exit records with no matching enter (truncated capture head).
    pub orphan_exits: usize,
    /// Closed spans whose interval missed the window entirely; their
    /// time is excluded but their names still anchor stack paths.
    pub windowed_out: usize,
}

/// One row of the hotspot table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// Span name.
    pub name: String,
    /// Number of closed spans with this name.
    pub calls: u64,
    /// Total elapsed nanoseconds (including children).
    pub total_ns: u64,
    /// Self nanoseconds (elapsed minus direct children).
    pub self_ns: u64,
}

impl Profile {
    /// Reconstructs a profile from a JSONL capture. Non-span records
    /// (events, provenance, metrics) are skipped; malformed JSON fails.
    ///
    /// # Errors
    ///
    /// [`SentinelError::Parse`] on malformed JSON,
    /// [`SentinelError::Schema`] when a span record lacks its keys.
    pub fn from_jsonl(text: &str) -> Result<Profile, SentinelError> {
        Profile::from_jsonl_window(text, None)
    }

    /// [`Profile::from_jsonl`] restricted to a half-open time window
    /// `[since, until)` in epoch nanoseconds. A span's elapsed time is
    /// clipped to its overlap with the window; spans with no overlap
    /// contribute no time (but still anchor their descendants' stack
    /// paths) and are counted in [`Profile::windowed_out`].
    ///
    /// # Errors
    ///
    /// Same as [`Profile::from_jsonl`].
    pub fn from_jsonl_window(
        text: &str,
        window: Option<(u64, u64)>,
    ) -> Result<Profile, SentinelError> {
        let mut p = Profile { window, ..Profile::default() };
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v =
                json::parse(line).map_err(|error| SentinelError::Parse { line: lineno, error })?;
            match v.get("type").and_then(JsonValue::as_str) {
                Some("span_enter") => p.on_enter(&v, lineno)?,
                Some("span_exit") => p.on_exit(&v, lineno)?,
                _ => {}
            }
        }
        // Windowed-out spans also carry `elapsed_ns: None`; only the
        // remainder genuinely never closed.
        let no_elapsed = p.spans.values().filter(|s| s.elapsed_ns.is_none()).count();
        p.unclosed = no_elapsed.saturating_sub(p.windowed_out);
        Ok(p)
    }

    fn on_enter(&mut self, v: &JsonValue, line: usize) -> Result<(), SentinelError> {
        let span = v
            .get("span")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(line, "span_enter missing `span`"))?;
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema(line, "span_enter missing `name`"))?
            .to_string();
        let parent = v.get("parent").and_then(JsonValue::as_u64);
        let thread = v.get("thread").and_then(JsonValue::as_u64).unwrap_or(0);
        let start_ns = v
            .get("ts_us")
            .and_then(JsonValue::as_u64)
            .map_or(0, |us| us.saturating_mul(1_000));
        self.spans.insert(
            span,
            SpanNode { name, parent, thread, start_ns, elapsed_ns: None, children_ns: 0 },
        );
        Ok(())
    }

    fn on_exit(&mut self, v: &JsonValue, line: usize) -> Result<(), SentinelError> {
        let span = v
            .get("span")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(line, "span_exit missing `span`"))?;
        let elapsed = v
            .get("elapsed_ns")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(line, "span_exit missing `elapsed_ns`"))?;
        let window = self.window;
        let parent = match self.spans.get_mut(&span) {
            Some(node) => {
                // Clip the span's interval to the window, if one is
                // active. Children nest inside parents in time, so
                // clipped child time never exceeds clipped parent time
                // and the self-time invariant survives windowing.
                let clipped = match window {
                    None => Some(elapsed),
                    Some((lo, hi)) => {
                        let start = node.start_ns;
                        let end = start.saturating_add(elapsed);
                        let overlap = end.min(hi).saturating_sub(start.max(lo));
                        if overlap > 0 {
                            Some(overlap)
                        } else {
                            self.windowed_out += 1;
                            None
                        }
                    }
                };
                node.elapsed_ns = clipped;
                clipped.map(|c| (node.parent, c))
            }
            None => {
                self.orphan_exits += 1;
                return Ok(());
            }
        };
        if let Some((Some(pid), clipped)) = parent {
            if let Some(pnode) = self.spans.get_mut(&pid) {
                pnode.children_ns += clipped;
            }
        }
        Ok(())
    }

    /// Number of spans reconstructed (closed or not).
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Total elapsed nanoseconds of closed root spans (no parent).
    #[must_use]
    pub fn root_total_ns(&self) -> u64 {
        self.spans
            .values()
            .filter(|s| s.parent.is_none())
            .filter_map(|s| s.elapsed_ns)
            .sum()
    }

    /// Sum of self time over all closed spans; equals
    /// [`Self::root_total_ns`] for a complete, well-nested capture.
    #[must_use]
    pub fn total_self_ns(&self) -> u64 {
        self.spans
            .values()
            .filter_map(|s| s.elapsed_ns.map(|e| e.saturating_sub(s.children_ns)))
            .sum()
    }

    /// The `;`-joined ancestor path of a span, root first.
    fn stack_path(&self, mut id: u64) -> String {
        let mut names: Vec<&str> = Vec::new();
        // Bounded walk guards against a corrupt capture with a parent
        // cycle; real traces are trees.
        for _ in 0..1024 {
            let Some(node) = self.spans.get(&id) else { break };
            names.push(&node.name);
            match node.parent {
                Some(p) => id = p,
                None => break,
            }
        }
        names.reverse();
        names.join(";")
    }

    /// Folded-stack lines, one per distinct stack with positive self
    /// time, sorted by stack path: `root;child;leaf <self_ns>`.
    #[must_use]
    pub fn folded_stacks(&self) -> String {
        let mut by_stack: BTreeMap<String, u64> = BTreeMap::new();
        for (&id, node) in &self.spans {
            let Some(elapsed) = node.elapsed_ns else { continue };
            let self_ns = elapsed.saturating_sub(node.children_ns);
            if self_ns > 0 {
                *by_stack.entry(self.stack_path(id)).or_insert(0) += self_ns;
            }
        }
        let mut out = String::new();
        for (stack, ns) in by_stack {
            out.push_str(&format!("{stack} {ns}\n"));
        }
        out
    }

    /// Per-name hotspot rows, sorted by self time descending (ties by
    /// name for determinism).
    #[must_use]
    pub fn hotspots(&self) -> Vec<Hotspot> {
        let mut by_name: BTreeMap<&str, Hotspot> = BTreeMap::new();
        for node in self.spans.values() {
            let Some(elapsed) = node.elapsed_ns else { continue };
            let row = by_name.entry(&node.name).or_insert_with(|| Hotspot {
                name: node.name.clone(),
                calls: 0,
                total_ns: 0,
                self_ns: 0,
            });
            row.calls += 1;
            row.total_ns += elapsed;
            row.self_ns += elapsed.saturating_sub(node.children_ns);
        }
        let mut rows: Vec<Hotspot> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Human-readable hotspot table with a totals footer.
    #[must_use]
    pub fn hotspot_table(&self) -> String {
        let rows = self.hotspots();
        let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max("name".len());
        let mut out = format!("{:>8}  {:>12}  {:>12}  name\n", "calls", "total", "self");
        for r in &rows {
            out.push_str(&format!(
                "{:>8}  {:>12}  {:>12}  {:<name_w$}\n",
                r.calls,
                fmt_ns(r.total_ns),
                fmt_ns(r.self_ns),
                r.name
            ));
        }
        out.push_str(&format!(
            "\n{} spans, root total {}, self total {}",
            self.span_count(),
            fmt_ns(self.root_total_ns()),
            fmt_ns(self.total_self_ns()),
        ));
        if self.unclosed > 0 || self.orphan_exits > 0 {
            out.push_str(&format!(
                " ({} unclosed, {} orphan exits)",
                self.unclosed, self.orphan_exits
            ));
        }
        if self.windowed_out > 0 {
            out.push_str(&format!(" ({} spans outside the window)", self.windowed_out));
        }
        out.push('\n');
        out
    }
}

fn schema(line: usize, message: &str) -> SentinelError {
    SentinelError::Schema { line, message: message.to_string() }
}

/// Renders nanoseconds with an SI prefix suited to the magnitude.
fn fmt_ns(ns: u64) -> String {
    let secs = ns as f64 / 1.0e9;
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1.0e-3 {
        format!("{:.3} ms", secs * 1.0e3)
    } else if secs >= 1.0e-6 {
        format!("{:.3} us", secs * 1.0e6)
    } else {
        format!("{ns} ns")
    }
}

// ---------------------------------------------------------------------
// Stack-sample aggregation (the sampling profiler's report)
// ---------------------------------------------------------------------

/// [`ProfileReport`] JSON schema version.
pub const REPORT_SCHEMA: u64 = 1;

/// How many request ids the report's attribution table keeps.
const TOP_REQUESTS: usize = 10;

/// Span-name prefix the query server gives its per-endpoint spans; the
/// report attributes a sample to the endpoint of its innermost such
/// frame.
pub const ENDPOINT_FRAME_PREFIX: &str = "serve.endpoint.";

/// One parsed `stack_sample` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackSample {
    /// Nanoseconds since the emitter's trace epoch at sample time.
    pub t_ns: u64,
    /// The sampled thread.
    pub thread: u64,
    /// The sampled thread's request scope, if any.
    pub req_id: Option<String>,
    /// Span names, outermost first.
    pub frames: Vec<String>,
    /// Full logical stack depth (≥ `frames.len()` when clamped).
    pub depth: u64,
}

/// Extracts every `stack_sample` record from a JSONL capture; other
/// record types are skipped.
///
/// # Errors
///
/// [`SentinelError::Parse`] on malformed JSON, [`SentinelError::Schema`]
/// when a `stack_sample` record lacks its keys.
pub fn stack_samples_from_jsonl(text: &str) -> Result<Vec<StackSample>, SentinelError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|error| SentinelError::Parse { line: lineno, error })?;
        if v.get("type").and_then(JsonValue::as_str) != Some("stack_sample") {
            continue;
        }
        let t_ns = v
            .get("t_ns")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(lineno, "stack_sample missing `t_ns`"))?;
        let thread = v
            .get("thread")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(lineno, "stack_sample missing `thread`"))?;
        let Some(JsonValue::Arr(raw_frames)) = v.get("frames") else {
            return Err(schema(lineno, "stack_sample missing `frames` array"));
        };
        let mut frames = Vec::with_capacity(raw_frames.len());
        for f in raw_frames {
            match f.as_str() {
                Some(name) if !name.is_empty() => frames.push(name.to_string()),
                _ => return Err(schema(lineno, "stack_sample frame is not a non-empty string")),
            }
        }
        if frames.is_empty() {
            return Err(schema(lineno, "stack_sample has an empty `frames` array"));
        }
        let depth = v
            .get("depth")
            .and_then(JsonValue::as_u64)
            .unwrap_or(frames.len() as u64);
        let req_id = v.get("req_id").and_then(JsonValue::as_str).map(str::to_string);
        out.push(StackSample { t_ns, thread, req_id, frames, depth });
    }
    Ok(out)
}

/// One frame's sample counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameStat {
    /// Span name.
    pub name: String,
    /// Samples whose *leaf* frame this was (CPU attribution).
    pub self_samples: u64,
    /// Samples whose stack contained this frame anywhere.
    pub total_samples: u64,
}

/// A time-windowed aggregation of stack samples — the sampling
/// profiler's analogue of the span-based [`Profile`]. Serialization is
/// byte-deterministic: every map is ordered and every list carries a
/// total order, so identical windows render identical JSON.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// Smallest sample `t_ns` included (0 when empty).
    pub since_ns: u64,
    /// Largest sample `t_ns` included plus one (0 when empty).
    pub until_ns: u64,
    /// Samples aggregated.
    pub samples: u64,
    /// Distinct threads sampled.
    pub threads: u64,
    /// Samples whose logical depth exceeded the captured frames.
    pub truncated: u64,
    /// Per-frame counts, self-samples descending (ties by name).
    pub frames: Vec<FrameStat>,
    /// Folded stacks (`root;child;leaf` → sample count).
    pub folded: BTreeMap<String, u64>,
    /// Samples per endpoint (innermost `serve.endpoint.*` frame).
    pub endpoints: BTreeMap<String, u64>,
    /// Distinct request ids observed.
    pub distinct_requests: u64,
    /// The [`TOP_REQUESTS`] most-sampled request ids (count desc, id
    /// asc): the requests that burned the most CPU in the window.
    pub top_requests: Vec<(String, u64)>,
}

impl ProfileReport {
    /// Aggregates `samples`, keeping only those with `t_ns` inside the
    /// half-open `window` (`None` = all).
    #[must_use]
    pub fn from_samples(samples: &[StackSample], window: Option<(u64, u64)>) -> ProfileReport {
        let mut report = ProfileReport::default();
        let mut threads: BTreeSet<u64> = BTreeSet::new();
        let mut frames: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut requests: BTreeMap<String, u64> = BTreeMap::new();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for s in samples {
            if let Some((since, until)) = window {
                if s.t_ns < since || s.t_ns >= until {
                    continue;
                }
            }
            report.samples += 1;
            lo = lo.min(s.t_ns);
            hi = hi.max(s.t_ns);
            threads.insert(s.thread);
            if s.depth > s.frames.len() as u64 {
                report.truncated += 1;
            }
            if let Some(leaf) = s.frames.last() {
                frames.entry(leaf.clone()).or_insert((0, 0)).0 += 1;
            }
            // Total counts each distinct name once per sample, so a
            // recursive frame cannot exceed the sample count.
            let distinct: BTreeSet<&String> = s.frames.iter().collect();
            for name in distinct {
                frames.entry(name.clone()).or_insert((0, 0)).1 += 1;
            }
            *report.folded.entry(s.frames.join(";")).or_insert(0) += 1;
            if let Some(endpoint) = s
                .frames
                .iter()
                .rev()
                .find_map(|f| f.strip_prefix(ENDPOINT_FRAME_PREFIX))
            {
                *report.endpoints.entry(endpoint.to_string()).or_insert(0) += 1;
            }
            if let Some(id) = &s.req_id {
                *requests.entry(id.clone()).or_insert(0) += 1;
            }
        }
        if report.samples > 0 {
            report.since_ns = lo;
            report.until_ns = hi.saturating_add(1);
        }
        report.threads = threads.len() as u64;
        report.frames = frames
            .into_iter()
            .map(|(name, (self_samples, total_samples))| FrameStat {
                name,
                self_samples,
                total_samples,
            })
            .collect();
        report
            .frames
            .sort_by(|a, b| b.self_samples.cmp(&a.self_samples).then_with(|| a.name.cmp(&b.name)));
        report.distinct_requests = requests.len() as u64;
        let mut top: Vec<(String, u64)> = requests.into_iter().collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        top.truncate(TOP_REQUESTS);
        report.top_requests = top;
        report
    }

    /// Renders the report as one deterministic JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":{REPORT_SCHEMA},\"since_ns\":{},\"until_ns\":{},\"samples\":{},\
             \"threads\":{},\"truncated\":{}",
            self.since_ns, self.until_ns, self.samples, self.threads, self.truncated
        );
        out.push_str(",\"frames\":[");
        for (i, f) in self.frames.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"self\":{},\"total\":{}}}",
                escape_json(&f.name),
                f.self_samples,
                f.total_samples
            ));
        }
        out.push_str("],\"folded\":[");
        for (i, (stack, count)) in self.folded.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stack\":{},\"count\":{count}}}",
                escape_json(stack)
            ));
        }
        out.push_str("],\"endpoints\":{");
        for (i, (endpoint, count)) in self.endpoints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{count}", escape_json(endpoint)));
        }
        out.push_str(&format!(
            "}},\"requests\":{{\"distinct\":{},\"top\":[",
            self.distinct_requests
        ));
        for (i, (id, count)) in self.top_requests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"req_id\":{},\"count\":{count}}}",
                escape_json(id)
            ));
        }
        out.push_str("]}}");
        out
    }

    /// Parses a report rendered by [`ProfileReport::to_json`] (the
    /// `/v1/profile` payload and `profile_diff` inputs).
    ///
    /// # Errors
    ///
    /// [`SentinelError::Parse`] on malformed JSON, [`SentinelError::Schema`]
    /// on missing keys or an unknown schema version.
    pub fn from_json(text: &str) -> Result<ProfileReport, SentinelError> {
        const LINE: usize = 1;
        let v = json::parse(text).map_err(|error| SentinelError::Parse { line: LINE, error })?;
        let schema_v = v
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(LINE, "profile report missing `schema`"))?;
        if schema_v != REPORT_SCHEMA {
            return Err(SentinelError::Schema {
                line: LINE,
                message: format!("unsupported profile report schema {schema_v}"),
            });
        }
        let field = |name: &'static str| -> Result<u64, SentinelError> {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| schema(LINE, name))
        };
        let mut report = ProfileReport {
            since_ns: field("since_ns")?,
            until_ns: field("until_ns")?,
            samples: field("samples")?,
            threads: field("threads")?,
            truncated: field("truncated")?,
            ..ProfileReport::default()
        };
        let Some(JsonValue::Arr(frames)) = v.get("frames") else {
            return Err(schema(LINE, "profile report missing `frames` array"));
        };
        for f in frames {
            let name = f
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| schema(LINE, "frame missing `name`"))?
                .to_string();
            let self_samples = f
                .get("self")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| schema(LINE, "frame missing `self`"))?;
            let total_samples = f
                .get("total")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| schema(LINE, "frame missing `total`"))?;
            report.frames.push(FrameStat { name, self_samples, total_samples });
        }
        if let Some(JsonValue::Arr(folded)) = v.get("folded") {
            for entry in folded {
                let stack = entry
                    .get("stack")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| schema(LINE, "folded entry missing `stack`"))?
                    .to_string();
                let count = entry
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| schema(LINE, "folded entry missing `count`"))?;
                report.folded.insert(stack, count);
            }
        }
        if let Some(JsonValue::Obj(endpoints)) = v.get("endpoints") {
            for (endpoint, count) in endpoints {
                let count = count
                    .as_u64()
                    .ok_or_else(|| schema(LINE, "endpoint count is not a number"))?;
                report.endpoints.insert(endpoint.clone(), count);
            }
        }
        if let Some(requests) = v.get("requests") {
            report.distinct_requests =
                requests.get("distinct").and_then(JsonValue::as_u64).unwrap_or(0);
            if let Some(JsonValue::Arr(top)) = requests.get("top") {
                for entry in top {
                    let id = entry
                        .get("req_id")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| schema(LINE, "top request missing `req_id`"))?
                        .to_string();
                    let count = entry
                        .get("count")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| schema(LINE, "top request missing `count`"))?;
                    report.top_requests.push((id, count));
                }
            }
        }
        Ok(report)
    }

    /// Merges two reports into one, as the federation layer does with
    /// per-replica `/v1/profile` scrapes. Folded-stack counts add and
    /// the per-frame self/total table is recomputed from the merged
    /// folds, so merging is associative and commutative and agrees
    /// with having aggregated both sample streams at once. `threads`
    /// add — replicas sample disjoint OS threads even when their small
    /// per-process integer ids collide — and the `[since_ns, until_ns)`
    /// window is the envelope of both (meaningful per replica only, as
    /// each process stamps its own trace epoch). Request attribution
    /// merges by id; a federator should namespace ids per replica
    /// first (see `federate`), since raw `r<N>` ids recur across
    /// processes.
    #[must_use]
    pub fn merged(&self, other: &ProfileReport) -> ProfileReport {
        let mut report = ProfileReport {
            samples: self.samples + other.samples,
            threads: self.threads + other.threads,
            truncated: self.truncated + other.truncated,
            ..ProfileReport::default()
        };
        report.since_ns = match (self.samples, other.samples) {
            (0, _) => other.since_ns,
            (_, 0) => self.since_ns,
            _ => self.since_ns.min(other.since_ns),
        };
        report.until_ns = self.until_ns.max(other.until_ns);
        report.folded = self.folded.clone();
        for (stack, count) in &other.folded {
            *report.folded.entry(stack.clone()).or_insert(0) += count;
        }
        // Rebuild the frame table from the merged folds: leaves carry
        // self counts, distinct names per stack carry total counts —
        // the same accounting `from_samples` does per sample.
        let mut frames: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (stack, &count) in &report.folded {
            if let Some(leaf) = stack.rsplit(';').next() {
                frames.entry(leaf).or_insert((0, 0)).0 += count;
            }
            let distinct: BTreeSet<&str> = stack.split(';').collect();
            for name in distinct {
                frames.entry(name).or_insert((0, 0)).1 += count;
            }
        }
        report.frames = frames
            .into_iter()
            .map(|(name, (self_samples, total_samples))| FrameStat {
                name: name.to_string(),
                self_samples,
                total_samples,
            })
            .collect();
        report
            .frames
            .sort_by(|a, b| b.self_samples.cmp(&a.self_samples).then_with(|| a.name.cmp(&b.name)));
        report.endpoints = self.endpoints.clone();
        for (endpoint, count) in &other.endpoints {
            *report.endpoints.entry(endpoint.clone()).or_insert(0) += count;
        }
        report.distinct_requests = self.distinct_requests + other.distinct_requests;
        let mut requests: BTreeMap<String, u64> = BTreeMap::new();
        for (id, count) in self.top_requests.iter().chain(&other.top_requests) {
            *requests.entry(id.clone()).or_insert(0) += count;
        }
        let mut top: Vec<(String, u64)> = requests.into_iter().collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        top.truncate(TOP_REQUESTS);
        report.top_requests = top;
        report
    }

    /// A frame's share of all self samples in `[0, 1]`.
    #[must_use]
    pub fn self_share(&self, name: &str) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let own = self
            .frames
            .iter()
            .find(|f| f.name == name)
            .map_or(0, |f| f.self_samples);
        own as f64 / self.samples as f64
    }

    /// Folded-stack lines (`root;child;leaf <count>`), sorted by stack.
    #[must_use]
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.folded {
            out.push_str(&format!("{stack} {count}\n"));
        }
        out
    }

    /// Human-readable top-frames table with attribution footers.
    #[must_use]
    pub fn hotspot_table(&self) -> String {
        let mut out = format!("{:>8}  {:>8}  {:>6}  name\n", "self", "total", "self%");
        for f in &self.frames {
            let share = if self.samples == 0 {
                0.0
            } else {
                f.self_samples as f64 * 100.0 / self.samples as f64
            };
            out.push_str(&format!(
                "{:>8}  {:>8}  {share:>5.1}%  {}\n",
                f.self_samples, f.total_samples, f.name
            ));
        }
        out.push_str(&format!(
            "\n{} samples across {} threads, window [{} ns, {} ns)",
            self.samples, self.threads, self.since_ns, self.until_ns
        ));
        if self.truncated > 0 {
            out.push_str(&format!(" ({} depth-truncated)", self.truncated));
        }
        out.push('\n');
        if !self.endpoints.is_empty() {
            out.push_str("endpoint attribution:\n");
            for (endpoint, count) in &self.endpoints {
                out.push_str(&format!("  {endpoint:<12} {count}\n"));
            }
        }
        if !self.top_requests.is_empty() {
            out.push_str(&format!(
                "top requests ({} distinct):\n",
                self.distinct_requests
            ));
            for (id, count) in &self.top_requests {
                out.push_str(&format!("  {id:<12} {count}\n"));
            }
        }
        out
    }
}

/// Renders a string as a quoted JSON literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(span: u64, parent: Option<u64>, name: &str) -> String {
        let parent = parent.map_or_else(|| "null".to_string(), |p| p.to_string());
        format!(
            "{{\"ts_us\":1,\"thread\":0,\"type\":\"span_enter\",\"span\":{span},\
             \"parent\":{parent},\"name\":\"{name}\",\"fields\":{{}}}}"
        )
    }

    fn exit(span: u64, name: &str, elapsed_ns: u64) -> String {
        format!(
            "{{\"ts_us\":2,\"thread\":0,\"type\":\"span_exit\",\"span\":{span},\
             \"name\":\"{name}\",\"elapsed_ns\":{elapsed_ns}}}"
        )
    }

    fn nested_capture() -> String {
        // root (1000ns) -> a (600ns) -> b (200ns); plus a second call to
        // a (100ns) directly under root.
        [
            enter(1, None, "root"),
            enter(2, Some(1), "a"),
            enter(3, Some(2), "b"),
            exit(3, "b", 200),
            exit(2, "a", 600),
            enter(4, Some(1), "a"),
            exit(4, "a", 100),
            exit(1, "root", 1000),
        ]
        .join("\n")
    }

    #[test]
    fn self_time_sums_to_the_root_span() {
        let p = Profile::from_jsonl(&nested_capture()).expect("parses");
        assert_eq!(p.root_total_ns(), 1000);
        assert_eq!(p.total_self_ns(), 1000);
        assert_eq!(p.unclosed, 0);
    }

    #[test]
    fn folded_stacks_carry_full_paths_and_self_times() {
        let p = Profile::from_jsonl(&nested_capture()).expect("parses");
        let folded = p.folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"root 300"), "root self = 1000-600-100: {folded}");
        assert!(lines.contains(&"root;a 500"), "both `a` calls fold together: {folded}");
        assert!(lines.contains(&"root;a;b 200"), "{folded}");
        let total: u64 = lines
            .iter()
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|n| n.parse::<u64>().ok())
            .sum();
        assert_eq!(total, p.root_total_ns());
    }

    #[test]
    fn hotspots_aggregate_by_name() {
        let p = Profile::from_jsonl(&nested_capture()).expect("parses");
        let rows = p.hotspots();
        let a = rows.iter().find(|r| r.name == "a").expect("has `a`");
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 700);
        assert_eq!(a.self_ns, 500);
        // Sorted by self time descending: `a` (500) beats `root` (300).
        assert_eq!(rows[0].name, "a");
        let table = p.hotspot_table();
        assert!(table.contains("name"), "{table}");
    }

    #[test]
    fn unclosed_and_orphan_spans_are_counted_not_fatal() {
        let text = [enter(1, None, "root"), exit(9, "ghost", 50)].join("\n");
        let p = Profile::from_jsonl(&text).expect("parses");
        assert_eq!(p.unclosed, 1);
        assert_eq!(p.orphan_exits, 1);
        assert_eq!(p.root_total_ns(), 0);
    }

    #[test]
    fn non_span_records_are_skipped() {
        let text = concat!(
            "{\"ts_us\":1,\"thread\":0,\"type\":\"event\",\"span\":null,",
            "\"name\":\"e\",\"fields\":{}}\n",
            "{\"ts_us\":1,\"thread\":0,\"type\":\"metric\",\"name\":\"m\",",
            "\"metric_kind\":\"counter\",\"fields\":{}}\n"
        );
        let p = Profile::from_jsonl(text).expect("parses");
        assert_eq!(p.span_count(), 0);
    }

    #[test]
    fn windowing_clips_and_excludes_span_time() {
        // root: [1000ns, 2000ns); a: [1000ns, 1600ns) nested inside;
        // late: [5000ns, 5400ns) — note ts_us 1 -> 1000ns etc.
        fn enter_at(span: u64, parent: Option<u64>, name: &str, ts_us: u64) -> String {
            let parent = parent.map_or_else(|| "null".to_string(), |p| p.to_string());
            format!(
                "{{\"ts_us\":{ts_us},\"thread\":0,\"type\":\"span_enter\",\"span\":{span},\
                 \"parent\":{parent},\"name\":\"{name}\",\"fields\":{{}}}}"
            )
        }
        let text = [
            enter_at(1, None, "root", 1),
            enter_at(2, Some(1), "a", 1),
            exit(2, "a", 600),
            exit(1, "root", 1000),
            enter_at(3, None, "late", 5),
            exit(3, "late", 400),
        ]
        .join("\n");
        // Full capture: root 1000 + late 400.
        let p = Profile::from_jsonl(&text).expect("parses");
        assert_eq!(p.root_total_ns(), 1400);
        // Window [1000, 1500): root clipped to 500, `a` clipped to 500,
        // `late` excluded entirely.
        let w = Profile::from_jsonl_window(&text, Some((1_000, 1_500))).expect("parses");
        assert_eq!(w.root_total_ns(), 500);
        assert_eq!(w.total_self_ns(), 500);
        assert_eq!(w.windowed_out, 1);
        assert_eq!(w.unclosed, 0);
        let folded = w.folded_stacks();
        assert!(folded.contains("root;a 500"), "{folded}");
        assert!(!folded.contains("late"), "{folded}");
        // Empty window: nothing survives, nothing panics.
        let e = Profile::from_jsonl_window(&text, Some((9_000, 9_000))).expect("parses");
        assert_eq!(e.root_total_ns(), 0);
        assert_eq!(e.windowed_out, 3);
    }

    #[test]
    fn malformed_lines_fail_with_the_line_number() {
        let text = format!("{}\nnot json\n", enter(1, None, "root"));
        match Profile::from_jsonl(&text) {
            Err(SentinelError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    // --- stack-sample aggregation ---

    fn sample_line(ts_us: u64, thread: u64, t_ns: u64, req: Option<&str>, frames: &[&str], depth: u64) -> String {
        let req_part = req.map_or(String::new(), |r| format!("\"req_id\":\"{r}\","));
        let arr: Vec<String> = frames.iter().map(|f| format!("\"{f}\"")).collect();
        format!(
            "{{\"ts_us\":{ts_us},\"thread\":{thread},{req_part}\"type\":\"stack_sample\",\
             \"depth\":{depth},\"t_ns\":{t_ns},\"frames\":[{}]}}",
            arr.join(",")
        )
    }

    fn fixture_samples() -> Vec<StackSample> {
        let text = [
            sample_line(10, 1, 1_000, Some("r1"), &["serve.request", "serve.endpoint.cost"], 2),
            sample_line(11, 1, 2_000, Some("r1"), &["serve.request", "serve.endpoint.cost"], 2),
            sample_line(12, 2, 2_500, Some("r2"), &["serve.request", "serve.endpoint.batch"], 2),
            sample_line(13, 2, 3_000, None, &["figure4.panel"], 33),
            // A non-sample record interleaved: must be skipped.
            "{\"ts_us\":14,\"thread\":2,\"type\":\"metric\",\"name\":\"x\",\"kind\":\"counter\",\"fields\":{}}".to_string(),
        ]
        .join("\n");
        stack_samples_from_jsonl(&text).expect("parses")
    }

    #[test]
    fn stack_samples_parse_and_skip_other_records() {
        let samples = fixture_samples();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].req_id.as_deref(), Some("r1"));
        assert_eq!(samples[0].frames, ["serve.request", "serve.endpoint.cost"]);
        assert_eq!(samples[3].depth, 33);
        assert_eq!(samples[3].req_id, None);
    }

    #[test]
    fn malformed_stack_samples_are_rejected() {
        for bad in [
            // missing frames
            "{\"ts_us\":1,\"thread\":1,\"type\":\"stack_sample\",\"depth\":1,\"t_ns\":5}",
            // empty frames
            "{\"ts_us\":1,\"thread\":1,\"type\":\"stack_sample\",\"depth\":1,\"t_ns\":5,\"frames\":[]}",
            // empty frame name
            "{\"ts_us\":1,\"thread\":1,\"type\":\"stack_sample\",\"depth\":1,\"t_ns\":5,\"frames\":[\"\"]}",
            // missing t_ns
            "{\"ts_us\":1,\"thread\":1,\"type\":\"stack_sample\",\"depth\":1,\"frames\":[\"a\"]}",
        ] {
            match stack_samples_from_jsonl(bad) {
                Err(SentinelError::Schema { line: 1, .. }) => {}
                other => panic!("unexpected for {bad}: {other:?}"),
            }
        }
    }

    #[test]
    fn report_aggregates_self_total_endpoints_and_requests() {
        let report = ProfileReport::from_samples(&fixture_samples(), None);
        assert_eq!(report.samples, 4);
        assert_eq!(report.threads, 2);
        assert_eq!(report.truncated, 1);
        assert_eq!(report.since_ns, 1_000);
        assert_eq!(report.until_ns, 3_001);
        // Leading frame by self time: serve.endpoint.cost (2 leaf hits).
        assert_eq!(report.frames[0].name, "serve.endpoint.cost");
        assert_eq!(report.frames[0].self_samples, 2);
        assert_eq!(report.frames[0].total_samples, 2);
        let serve = report.frames.iter().find(|f| f.name == "serve.request").expect("serve.request");
        assert_eq!(serve.self_samples, 0);
        assert_eq!(serve.total_samples, 3);
        assert_eq!(report.endpoints.get("cost"), Some(&2));
        assert_eq!(report.endpoints.get("batch"), Some(&1));
        assert_eq!(report.distinct_requests, 2);
        assert_eq!(report.top_requests[0], ("r1".to_string(), 2));
        assert_eq!(
            report.folded.get("serve.request;serve.endpoint.cost"),
            Some(&2)
        );
        assert!((report.self_share("serve.endpoint.cost") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_window_clips_samples() {
        let report = ProfileReport::from_samples(&fixture_samples(), Some((2_000, 3_000)));
        assert_eq!(report.samples, 2);
        assert_eq!(report.since_ns, 2_000);
        assert_eq!(report.until_ns, 2_501);
        assert_eq!(report.truncated, 0);
        // Empty window aggregates to an all-zero report.
        let empty = ProfileReport::from_samples(&fixture_samples(), Some((9_000, 9_000)));
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.since_ns, 0);
        assert_eq!(empty.to_json(), ProfileReport::default().to_json());
    }

    #[test]
    fn report_json_is_deterministic_and_round_trips() {
        let report = ProfileReport::from_samples(&fixture_samples(), None);
        let a = report.to_json();
        let b = ProfileReport::from_samples(&fixture_samples(), None).to_json();
        assert_eq!(a, b, "same window must render identical bytes");
        crate::json::parse(&a).expect("report is valid JSON");
        let parsed = ProfileReport::from_json(&a).expect("round-trips");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), a);
        // Unknown schema version is refused.
        let bumped = a.replacen("\"schema\":1", "\"schema\":99", 1);
        assert!(ProfileReport::from_json(&bumped).is_err());
    }

    #[test]
    fn merged_reports_agree_with_single_stream_aggregation() {
        // Split the fixture stream across two "replicas" (disjoint
        // threads and request ids, as distinct processes would have
        // after namespacing) and merge the per-replica reports.
        let samples = fixture_samples();
        let a = ProfileReport::from_samples(&samples[..2], None);
        let b = ProfileReport::from_samples(&samples[2..], None);
        let merged = a.merged(&b);
        let whole = ProfileReport::from_samples(&samples, None);
        assert_eq!(merged, whole, "merge must equal one-stream aggregation");
        assert_eq!(merged.to_json(), whole.to_json());
        assert_eq!(a.merged(&b), b.merged(&a), "merge is commutative");
        // The empty report is the identity.
        assert_eq!(whole.merged(&ProfileReport::default()), whole);
        assert_eq!(ProfileReport::default().merged(&whole), whole);
    }

    #[test]
    fn report_renders_folded_text_and_table() {
        let report = ProfileReport::from_samples(&fixture_samples(), None);
        let folded = report.folded_text();
        assert!(folded.contains("serve.request;serve.endpoint.cost 2\n"), "{folded}");
        let table = report.hotspot_table();
        assert!(table.contains("serve.endpoint.cost"), "{table}");
        assert!(table.contains("4 samples across 2 threads"), "{table}");
        assert!(table.contains("(1 depth-truncated)"), "{table}");
        assert!(table.contains("endpoint attribution:"), "{table}");
        assert!(table.contains("top requests (2 distinct):"), "{table}");
    }
}
