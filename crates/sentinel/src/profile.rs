//! Folds the `NANOCOST_TRACE` JSONL span stream into a profile.
//!
//! PR 2 gave the model pipeline spans; this module turns a captured
//! stream into (1) folded-stack lines (`root;child;leaf <self_ns>`),
//! the interchange format every flamegraph renderer accepts, and (2) a
//! self/total-time hotspot table. Self time is a span's elapsed time
//! minus the elapsed time of its direct children, so the folded lines
//! sum to the root spans' wall time — the invariant the acceptance
//! tests pin.

use std::collections::BTreeMap;

use crate::json::{self, JsonValue};
use crate::SentinelError;

/// One span reconstructed from the stream.
#[derive(Debug, Clone, PartialEq)]
struct SpanNode {
    name: String,
    parent: Option<u64>,
    thread: u64,
    /// Entry time in nanoseconds (the enter record's `ts_us` scaled
    /// up); anchors window clipping.
    start_ns: u64,
    /// Elapsed nanoseconds from the exit record (clipped to the window
    /// when one is active); `None` while unclosed or fully outside the
    /// window.
    elapsed_ns: Option<u64>,
    /// Sum of direct (closed) children's elapsed nanoseconds.
    children_ns: u64,
}

/// A reconstructed span profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    spans: BTreeMap<u64, SpanNode>,
    /// Half-open time window `[since, until)` in epoch nanoseconds;
    /// span elapsed time is clipped to it. `None` = whole capture.
    window: Option<(u64, u64)>,
    /// Spans that entered but never exited (a crash or truncated
    /// capture); they are excluded from timing but kept for stack paths.
    pub unclosed: usize,
    /// Exit records with no matching enter (truncated capture head).
    pub orphan_exits: usize,
    /// Closed spans whose interval missed the window entirely; their
    /// time is excluded but their names still anchor stack paths.
    pub windowed_out: usize,
}

/// One row of the hotspot table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// Span name.
    pub name: String,
    /// Number of closed spans with this name.
    pub calls: u64,
    /// Total elapsed nanoseconds (including children).
    pub total_ns: u64,
    /// Self nanoseconds (elapsed minus direct children).
    pub self_ns: u64,
}

impl Profile {
    /// Reconstructs a profile from a JSONL capture. Non-span records
    /// (events, provenance, metrics) are skipped; malformed JSON fails.
    ///
    /// # Errors
    ///
    /// [`SentinelError::Parse`] on malformed JSON,
    /// [`SentinelError::Schema`] when a span record lacks its keys.
    pub fn from_jsonl(text: &str) -> Result<Profile, SentinelError> {
        Profile::from_jsonl_window(text, None)
    }

    /// [`Profile::from_jsonl`] restricted to a half-open time window
    /// `[since, until)` in epoch nanoseconds. A span's elapsed time is
    /// clipped to its overlap with the window; spans with no overlap
    /// contribute no time (but still anchor their descendants' stack
    /// paths) and are counted in [`Profile::windowed_out`].
    ///
    /// # Errors
    ///
    /// Same as [`Profile::from_jsonl`].
    pub fn from_jsonl_window(
        text: &str,
        window: Option<(u64, u64)>,
    ) -> Result<Profile, SentinelError> {
        let mut p = Profile { window, ..Profile::default() };
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v =
                json::parse(line).map_err(|error| SentinelError::Parse { line: lineno, error })?;
            match v.get("type").and_then(JsonValue::as_str) {
                Some("span_enter") => p.on_enter(&v, lineno)?,
                Some("span_exit") => p.on_exit(&v, lineno)?,
                _ => {}
            }
        }
        // Windowed-out spans also carry `elapsed_ns: None`; only the
        // remainder genuinely never closed.
        let no_elapsed = p.spans.values().filter(|s| s.elapsed_ns.is_none()).count();
        p.unclosed = no_elapsed.saturating_sub(p.windowed_out);
        Ok(p)
    }

    fn on_enter(&mut self, v: &JsonValue, line: usize) -> Result<(), SentinelError> {
        let span = v
            .get("span")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(line, "span_enter missing `span`"))?;
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema(line, "span_enter missing `name`"))?
            .to_string();
        let parent = v.get("parent").and_then(JsonValue::as_u64);
        let thread = v.get("thread").and_then(JsonValue::as_u64).unwrap_or(0);
        let start_ns = v
            .get("ts_us")
            .and_then(JsonValue::as_u64)
            .map_or(0, |us| us.saturating_mul(1_000));
        self.spans.insert(
            span,
            SpanNode { name, parent, thread, start_ns, elapsed_ns: None, children_ns: 0 },
        );
        Ok(())
    }

    fn on_exit(&mut self, v: &JsonValue, line: usize) -> Result<(), SentinelError> {
        let span = v
            .get("span")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(line, "span_exit missing `span`"))?;
        let elapsed = v
            .get("elapsed_ns")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema(line, "span_exit missing `elapsed_ns`"))?;
        let window = self.window;
        let parent = match self.spans.get_mut(&span) {
            Some(node) => {
                // Clip the span's interval to the window, if one is
                // active. Children nest inside parents in time, so
                // clipped child time never exceeds clipped parent time
                // and the self-time invariant survives windowing.
                let clipped = match window {
                    None => Some(elapsed),
                    Some((lo, hi)) => {
                        let start = node.start_ns;
                        let end = start.saturating_add(elapsed);
                        let overlap = end.min(hi).saturating_sub(start.max(lo));
                        if overlap > 0 {
                            Some(overlap)
                        } else {
                            self.windowed_out += 1;
                            None
                        }
                    }
                };
                node.elapsed_ns = clipped;
                clipped.map(|c| (node.parent, c))
            }
            None => {
                self.orphan_exits += 1;
                return Ok(());
            }
        };
        if let Some((Some(pid), clipped)) = parent {
            if let Some(pnode) = self.spans.get_mut(&pid) {
                pnode.children_ns += clipped;
            }
        }
        Ok(())
    }

    /// Number of spans reconstructed (closed or not).
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Total elapsed nanoseconds of closed root spans (no parent).
    #[must_use]
    pub fn root_total_ns(&self) -> u64 {
        self.spans
            .values()
            .filter(|s| s.parent.is_none())
            .filter_map(|s| s.elapsed_ns)
            .sum()
    }

    /// Sum of self time over all closed spans; equals
    /// [`Self::root_total_ns`] for a complete, well-nested capture.
    #[must_use]
    pub fn total_self_ns(&self) -> u64 {
        self.spans
            .values()
            .filter_map(|s| s.elapsed_ns.map(|e| e.saturating_sub(s.children_ns)))
            .sum()
    }

    /// The `;`-joined ancestor path of a span, root first.
    fn stack_path(&self, mut id: u64) -> String {
        let mut names: Vec<&str> = Vec::new();
        // Bounded walk guards against a corrupt capture with a parent
        // cycle; real traces are trees.
        for _ in 0..1024 {
            let Some(node) = self.spans.get(&id) else { break };
            names.push(&node.name);
            match node.parent {
                Some(p) => id = p,
                None => break,
            }
        }
        names.reverse();
        names.join(";")
    }

    /// Folded-stack lines, one per distinct stack with positive self
    /// time, sorted by stack path: `root;child;leaf <self_ns>`.
    #[must_use]
    pub fn folded_stacks(&self) -> String {
        let mut by_stack: BTreeMap<String, u64> = BTreeMap::new();
        for (&id, node) in &self.spans {
            let Some(elapsed) = node.elapsed_ns else { continue };
            let self_ns = elapsed.saturating_sub(node.children_ns);
            if self_ns > 0 {
                *by_stack.entry(self.stack_path(id)).or_insert(0) += self_ns;
            }
        }
        let mut out = String::new();
        for (stack, ns) in by_stack {
            out.push_str(&format!("{stack} {ns}\n"));
        }
        out
    }

    /// Per-name hotspot rows, sorted by self time descending (ties by
    /// name for determinism).
    #[must_use]
    pub fn hotspots(&self) -> Vec<Hotspot> {
        let mut by_name: BTreeMap<&str, Hotspot> = BTreeMap::new();
        for node in self.spans.values() {
            let Some(elapsed) = node.elapsed_ns else { continue };
            let row = by_name.entry(&node.name).or_insert_with(|| Hotspot {
                name: node.name.clone(),
                calls: 0,
                total_ns: 0,
                self_ns: 0,
            });
            row.calls += 1;
            row.total_ns += elapsed;
            row.self_ns += elapsed.saturating_sub(node.children_ns);
        }
        let mut rows: Vec<Hotspot> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Human-readable hotspot table with a totals footer.
    #[must_use]
    pub fn hotspot_table(&self) -> String {
        let rows = self.hotspots();
        let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max("name".len());
        let mut out = format!("{:>8}  {:>12}  {:>12}  name\n", "calls", "total", "self");
        for r in &rows {
            out.push_str(&format!(
                "{:>8}  {:>12}  {:>12}  {:<name_w$}\n",
                r.calls,
                fmt_ns(r.total_ns),
                fmt_ns(r.self_ns),
                r.name
            ));
        }
        out.push_str(&format!(
            "\n{} spans, root total {}, self total {}",
            self.span_count(),
            fmt_ns(self.root_total_ns()),
            fmt_ns(self.total_self_ns()),
        ));
        if self.unclosed > 0 || self.orphan_exits > 0 {
            out.push_str(&format!(
                " ({} unclosed, {} orphan exits)",
                self.unclosed, self.orphan_exits
            ));
        }
        if self.windowed_out > 0 {
            out.push_str(&format!(" ({} spans outside the window)", self.windowed_out));
        }
        out.push('\n');
        out
    }
}

fn schema(line: usize, message: &str) -> SentinelError {
    SentinelError::Schema { line, message: message.to_string() }
}

/// Renders nanoseconds with an SI prefix suited to the magnitude.
fn fmt_ns(ns: u64) -> String {
    let secs = ns as f64 / 1.0e9;
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1.0e-3 {
        format!("{:.3} ms", secs * 1.0e3)
    } else if secs >= 1.0e-6 {
        format!("{:.3} us", secs * 1.0e6)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(span: u64, parent: Option<u64>, name: &str) -> String {
        let parent = parent.map_or_else(|| "null".to_string(), |p| p.to_string());
        format!(
            "{{\"ts_us\":1,\"thread\":0,\"type\":\"span_enter\",\"span\":{span},\
             \"parent\":{parent},\"name\":\"{name}\",\"fields\":{{}}}}"
        )
    }

    fn exit(span: u64, name: &str, elapsed_ns: u64) -> String {
        format!(
            "{{\"ts_us\":2,\"thread\":0,\"type\":\"span_exit\",\"span\":{span},\
             \"name\":\"{name}\",\"elapsed_ns\":{elapsed_ns}}}"
        )
    }

    fn nested_capture() -> String {
        // root (1000ns) -> a (600ns) -> b (200ns); plus a second call to
        // a (100ns) directly under root.
        [
            enter(1, None, "root"),
            enter(2, Some(1), "a"),
            enter(3, Some(2), "b"),
            exit(3, "b", 200),
            exit(2, "a", 600),
            enter(4, Some(1), "a"),
            exit(4, "a", 100),
            exit(1, "root", 1000),
        ]
        .join("\n")
    }

    #[test]
    fn self_time_sums_to_the_root_span() {
        let p = Profile::from_jsonl(&nested_capture()).expect("parses");
        assert_eq!(p.root_total_ns(), 1000);
        assert_eq!(p.total_self_ns(), 1000);
        assert_eq!(p.unclosed, 0);
    }

    #[test]
    fn folded_stacks_carry_full_paths_and_self_times() {
        let p = Profile::from_jsonl(&nested_capture()).expect("parses");
        let folded = p.folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"root 300"), "root self = 1000-600-100: {folded}");
        assert!(lines.contains(&"root;a 500"), "both `a` calls fold together: {folded}");
        assert!(lines.contains(&"root;a;b 200"), "{folded}");
        let total: u64 = lines
            .iter()
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|n| n.parse::<u64>().ok())
            .sum();
        assert_eq!(total, p.root_total_ns());
    }

    #[test]
    fn hotspots_aggregate_by_name() {
        let p = Profile::from_jsonl(&nested_capture()).expect("parses");
        let rows = p.hotspots();
        let a = rows.iter().find(|r| r.name == "a").expect("has `a`");
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 700);
        assert_eq!(a.self_ns, 500);
        // Sorted by self time descending: `a` (500) beats `root` (300).
        assert_eq!(rows[0].name, "a");
        let table = p.hotspot_table();
        assert!(table.contains("name"), "{table}");
    }

    #[test]
    fn unclosed_and_orphan_spans_are_counted_not_fatal() {
        let text = [enter(1, None, "root"), exit(9, "ghost", 50)].join("\n");
        let p = Profile::from_jsonl(&text).expect("parses");
        assert_eq!(p.unclosed, 1);
        assert_eq!(p.orphan_exits, 1);
        assert_eq!(p.root_total_ns(), 0);
    }

    #[test]
    fn non_span_records_are_skipped() {
        let text = concat!(
            "{\"ts_us\":1,\"thread\":0,\"type\":\"event\",\"span\":null,",
            "\"name\":\"e\",\"fields\":{}}\n",
            "{\"ts_us\":1,\"thread\":0,\"type\":\"metric\",\"name\":\"m\",",
            "\"metric_kind\":\"counter\",\"fields\":{}}\n"
        );
        let p = Profile::from_jsonl(text).expect("parses");
        assert_eq!(p.span_count(), 0);
    }

    #[test]
    fn windowing_clips_and_excludes_span_time() {
        // root: [1000ns, 2000ns); a: [1000ns, 1600ns) nested inside;
        // late: [5000ns, 5400ns) — note ts_us 1 -> 1000ns etc.
        fn enter_at(span: u64, parent: Option<u64>, name: &str, ts_us: u64) -> String {
            let parent = parent.map_or_else(|| "null".to_string(), |p| p.to_string());
            format!(
                "{{\"ts_us\":{ts_us},\"thread\":0,\"type\":\"span_enter\",\"span\":{span},\
                 \"parent\":{parent},\"name\":\"{name}\",\"fields\":{{}}}}"
            )
        }
        let text = [
            enter_at(1, None, "root", 1),
            enter_at(2, Some(1), "a", 1),
            exit(2, "a", 600),
            exit(1, "root", 1000),
            enter_at(3, None, "late", 5),
            exit(3, "late", 400),
        ]
        .join("\n");
        // Full capture: root 1000 + late 400.
        let p = Profile::from_jsonl(&text).expect("parses");
        assert_eq!(p.root_total_ns(), 1400);
        // Window [1000, 1500): root clipped to 500, `a` clipped to 500,
        // `late` excluded entirely.
        let w = Profile::from_jsonl_window(&text, Some((1_000, 1_500))).expect("parses");
        assert_eq!(w.root_total_ns(), 500);
        assert_eq!(w.total_self_ns(), 500);
        assert_eq!(w.windowed_out, 1);
        assert_eq!(w.unclosed, 0);
        let folded = w.folded_stacks();
        assert!(folded.contains("root;a 500"), "{folded}");
        assert!(!folded.contains("late"), "{folded}");
        // Empty window: nothing survives, nothing panics.
        let e = Profile::from_jsonl_window(&text, Some((9_000, 9_000))).expect("parses");
        assert_eq!(e.root_total_ns(), 0);
        assert_eq!(e.windowed_out, 3);
    }

    #[test]
    fn malformed_lines_fail_with_the_line_number() {
        let text = format!("{}\nnot json\n", enter(1, None, "root"));
        match Profile::from_jsonl(&text) {
            Err(SentinelError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
