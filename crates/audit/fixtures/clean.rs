//! Fixture: a file whose only would-be violation is suppressed by a
//! well-formed pragma. Must audit to zero diagnostics.

/// Unwraps a statically known value (cites eq. 1 for R5).
pub fn suppressed() -> f64 {
    let v: Option<f64> = Some(0.5);
    v.unwrap() // nanocost-audit: allow(R1, reason = "fixture demonstrates suppression")
}
