//! R7 fixture: trace-macro names in library code, with every exemption
//! the rule grants — good names, test regions, and a reasoned pragma.

/// Figure 4 pipeline stage with a mixed-case span name; violates R7.
pub fn bad_case() {
    span!("MonteCarlo.Run");
}

/// Table A1 row counter fed from a runtime variable; violates R7.
pub fn dynamic_name(metric: &str) {
    counter!(metric, 1u64);
}

/// Hot loop from Eq. (7) with compliant lowercase dotted names; clean.
pub fn good_names(wafers: u64) {
    span!("figure4.run");
    event!("mc.batch_done", wafers = wafers);
    gauge!("mc.batch_size", 2.0);
    metric_histogram!("wafer_cost_usd", 1.0);
}

/// ITRS bridge that must mirror an external dashboard key; a reasoned
/// pragma suppresses the deliberate mixed-case name.
pub fn external_key() {
    // nanocost-audit: allow(R7, reason = "must match the legacy dashboard series name verbatim")
    event!("Legacy.SeriesName");
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_names_are_fine_in_tests() {
        span!("Scratch.Name");
    }
}
