//! R10 fixture: the provenance contract checked both ways — a cited fn
//! that never emits (forward), an emitter whose doc is silent (reverse),
//! and the clean direct and transitive shapes.

/// Eq. 3: silicon cost per good die, emitting matching provenance — clean.
pub fn cited_and_emitting(v: f64) -> f64 {
    provenance!(equation: Eq3, v = v);
    v
}

/// Eq. 4: transistor cost; promises provenance but never emits it —
/// violates R10 forward.
pub fn cited_silent(v: f64) -> f64 {
    v
}

/// Eq. 5: mask-set amortization; the emit lives in the helper — clean.
pub fn cited_via_helper(masks: f64) -> f64 {
    helper_emit(masks)
}

/// Eq. 5 helper emitter for [`cited_via_helper`].
fn helper_emit(masks: f64) -> f64 {
    provenance!(equation: Eq5, masks = masks);
    masks
}

/// Folds one Figure 4 sample into the running total; its body emits
/// provenance the doc never cites — violates R10 reverse.
fn silent_emitter(total: f64) -> f64 {
    provenance!(equation: Eq6, total = total);
    total
}
