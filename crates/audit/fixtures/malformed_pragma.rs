//! Fixture: a pragma without the mandatory reason. The suppression is
//! void (R1 still fires) and the pragma itself is reported as P0.

/// Unwraps behind a bad pragma (cites eq. 1 for R5).
pub fn bad_pragma() -> f64 {
    let v: Option<f64> = Some(0.5);
    v.unwrap() // nanocost-audit: allow(R1)
}
