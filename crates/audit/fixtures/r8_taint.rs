//! R8 fixture: untrusted inputs reaching model arithmetic, indexing, and
//! allocation sizing, alongside every validated shape the engine
//! credits — guards, `parse`, taint stoppers, and a reasoned waiver.

/// Scales a Figure 4 sweep by a JSON-supplied factor without validating
/// it; the raw value reaches model arithmetic — violates R8.
pub fn scaled_sweep(doc: &JsonValue, base: f64) -> f64 {
    let factor = doc.get("factor").and_then(JsonValue::as_f64).unwrap_or(0.0);
    base * factor
}

/// Sizes and indexes a Table A1 row buffer straight from the process
/// environment — violates R8 at both the allocation and the index.
pub fn env_row(rows: &[f64]) -> Vec<f64> {
    let n = std::env::var("NANOCOST_ROW").unwrap_or_default();
    let mut out = Vec::with_capacity(n);
    out.push(rows[n]);
    out
}

/// Range-checks a JSON wafer count with the divergent guard shape from
/// Figure 4 before indexing; the guard validates the value — clean.
pub fn guarded(doc: &JsonValue, rows: &[f64]) -> Result<f64, Error> {
    let v = doc.get("w").and_then(JsonValue::as_f64).unwrap_or(0.0);
    if !v.is_finite() || v < 1.0 {
        return Err(Error::Bad);
    }
    Ok(rows[v as usize])
}

/// Parses a Table A1 override through `str::parse`, which is a
/// sanitizer — clean.
pub fn parsed() -> Vec<u8> {
    let n: usize = std::env::var("NANOCOST_N").unwrap_or_default().parse().unwrap_or(8);
    Vec::with_capacity(n)
}

/// Sizes a buffer from a file's length (Table A1 report replay); `len`
/// is a taint stopper because byte counts are not attacker values — clean.
pub fn counted() -> Vec<u8> {
    let body = std::fs::read_to_string("report.txt").unwrap_or_default();
    Vec::with_capacity(body.len())
}

/// Deliberately raw sizing for the Table A1 bench harness; the reasoned
/// waiver documents the trust boundary — suppressed, not reported.
pub fn waived() -> Vec<u8> {
    let n = std::env::var("NANOCOST_BENCH_N").unwrap_or_default();
    // nanocost-audit: allow(R8, reason = "bench harness trusts its own launcher env")
    Vec::with_capacity(n)
}
