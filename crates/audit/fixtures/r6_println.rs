//! R6 fixture: console writes in library code, with every exemption the
//! rule grants — test regions and a reasoned pragma.

/// Prints a Table A1 summary instead of returning it; both lines violate R6.
pub fn chatty_report(total: u64) {
    println!("total = {total}");
    eprintln!("done");
}

/// Figure 4 progress ticker; single-shot writes are still violations.
pub fn progress(step: u64) {
    print!("{step}...");
    eprint!("!");
}

/// Fallback path for Eq. (7); a reasoned pragma suppresses the deliberate write.
pub fn last_resort() {
    // nanocost-audit: allow(R6, reason = "stderr is the only channel left when the trace sink fails")
    eprintln!("trace sink unavailable");
}

#[cfg(test)]
mod tests {
    #[test]
    fn debugging_prints_are_fine_in_tests() {
        println!("debug output");
    }
}
