//! Seeded model file: re-introduces the pre-hardening mask-cost flow the
//! real workspace used to have — a raw JSON number crossing straight
//! into model arithmetic and an infallible unit constructor.

/// Eq. 5: mask-set cost from a raw scenario document. The JSON number
/// reaches model arithmetic and `Dollars::new` unvalidated (seeded R8),
/// and no Eq. 5 provenance emit is reachable (seeded R10 forward).
pub fn mask_cost(doc: &JsonValue) -> Dollars {
    let masks = doc.get("masks").and_then(JsonValue::as_f64).unwrap_or(0.0);
    Dollars::new(masks * MASK_UNIT_COST)
}

/// Folds one Figure 4 sample into the running total; its body emits
/// provenance the doc never cites (seeded R10 reverse).
fn tally(total: f64) -> f64 {
    provenance!(equation: Eq2, total = total);
    total
}
