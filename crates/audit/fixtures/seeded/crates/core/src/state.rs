//! Seeded shared state: poison-panicking acquisition, a lock-order
//! inversion, and a channel send under a held guard.

/// Reads the Table A1 cache hit counter with a poison panic (seeded R9).
pub fn cache_hits(&self) -> u64 {
    let g = self.cache.lock().unwrap();
    g.hits
}

/// Refreshes the Figure 4 sweep taking cache before stats (seeded R9
/// inversion, paired with `snapshot` below).
pub fn refresh(&self) {
    let _c = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
    let _s = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
}

/// Snapshots the Figure 4 totals taking stats before cache, then sends
/// while both guards are still held (seeded R9: inversion + I/O under
/// lock).
pub fn snapshot(&self, tx: &Sender<u64>) {
    let s = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
    let _c = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
    tx.send(s.total);
}
