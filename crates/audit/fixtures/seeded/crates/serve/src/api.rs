//! Seeded serve file: raw request numbers reaching allocation and
//! indexing sinks with no range guard.

/// Sizes the Table A1 batch reply buffer straight from the request body
/// (seeded R8 allocation sink).
pub fn batch_buffer(doc: &JsonValue) -> Vec<f64> {
    let n = doc.get("count").and_then(JsonValue::as_f64).unwrap_or(0.0);
    Vec::with_capacity(n as usize)
}

/// Picks a Figure 4 scenario row by a request-supplied index (seeded R8
/// index sink).
pub fn scenario_row(doc: &JsonValue, rows: &[f64]) -> f64 {
    let i = doc.get("row").and_then(JsonValue::as_f64).unwrap_or(0.0);
    rows[i as usize]
}
