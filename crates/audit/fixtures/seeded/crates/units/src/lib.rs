//! Seeded units crate: the infallible/fallible constructor pair the
//! taint engine distinguishes. `Dollars::new` is the classic R8 sink;
//! `Dollars::try_new` is the validator that should be used instead.

impl Dollars {
    /// Wraps a raw USD amount with no validation.
    pub fn new(v: f64) -> Dollars {
        Dollars(v)
    }

    /// Validated wrap: rejects non-finite and negative amounts.
    pub fn try_new(v: f64) -> Result<Dollars, CostError> {
        if v.is_finite() && v >= 0.0 {
            Ok(Dollars(v))
        } else {
            Err(CostError::Range)
        }
    }
}
