//! R9 fixture: lock-discipline violations — poison-panic acquisition,
//! inconsistent ordering, and I/O under a guard — next to the
//! disciplined shapes the rule credits.

/// Reads the Table A1 scenario cache with a poison-panicking guard;
/// violates R9 (the companion R1 hit is waived to keep this fixture
/// focused on lock discipline).
pub fn poisoned(&self) -> u64 {
    // nanocost-audit: allow(R1, reason = "fixture isolates the R9 poison diagnostic")
    let g = self.cache.lock().unwrap();
    g.hits
}

/// Takes the Figure 4 sweep locks as cache-then-stats; paired with
/// `backward` below this is an inconsistent global order — violates R9.
pub fn forward(&self) {
    let _c = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
    let _s = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
}

/// Takes the same Figure 4 locks as stats-then-cache — the other half
/// of the inversion; violates R9.
pub fn backward(&self) {
    let _s = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
    let _c = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
}

/// Streams a Table A1 batch to a peer while still holding the scenario
/// cache — violates R9.
pub fn send_under_lock(&self, tx: &Sender<u64>) {
    let g = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
    tx.send(g.hits);
}

/// Copies the Figure 4 counter out inside a scope, then sends after the
/// guard drops — clean.
pub fn scoped_then_send(&self, tx: &Sender<u64>) {
    let hits = {
        let g = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        g.hits
    };
    tx.send(hits);
}

/// Releases the Table A1 guard with `drop` before blocking — clean.
pub fn drop_then_send(&self, tx: &Sender<u64>) {
    let g = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
    let hits = g.hits;
    drop(g);
    tx.send(hits);
}
