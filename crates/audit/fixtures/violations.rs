//! Fixture: one (or more) violation per rule, at stable line numbers.
//! Audited as if it lived at `crates/core/src/violations.rs`.

/// Missing a citation on purpose: R5 fires here.
pub fn missing_citation() -> f64 {
    let v: Option<f64> = Some(0.5);
    v.unwrap()
}

/// Compares floats directly (cites eq. 3 so R5 stays quiet).
pub fn direct_compare(x: f64) -> bool {
    x == 0.3
}

/// Raw density parameter (cites eq. 2 so R5 stays quiet).
pub fn raw_density(sd: f64) -> f64 {
    sd * 1.234
}
