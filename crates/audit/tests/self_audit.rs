//! Self-audit: the workspace must pass its own static analysis with
//! `--deny` semantics (no errors, no warnings). This is the in-tree
//! equivalent of the CI gate in `scripts/ci.sh`.

use std::path::PathBuf;

use nanocost_audit::{audit_workspace, verdict, AuditOptions, Verdict};

#[test]
fn the_workspace_audits_clean_under_deny() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let diags = audit_workspace(&root, AuditOptions { strict_pragmas: true })
        .expect("workspace walk succeeds");
    let rendered: Vec<String> = diags.iter().map(|d| d.render_text()).collect();
    assert_eq!(
        verdict(&diags, true),
        Verdict::Pass,
        "workspace must audit clean under --deny:\n{}",
        rendered.join("\n")
    );
}
