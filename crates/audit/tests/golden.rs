//! Golden-file tests: fixtures in `fixtures/` are audited as if they were
//! `crates/core/src/` files, and the rendered text and JSON reports must
//! match their checked-in `.expected.txt` / `.expected.json` siblings
//! byte-for-byte. Regenerate with `NANOCOST_AUDIT_BLESS=1 cargo test -p
//! nanocost-audit`.

use std::fs;
use std::path::PathBuf;

use nanocost_audit::diagnostics::{render_json_report, sort_diagnostics, Diagnostic, RuleId};
use nanocost_audit::audit_source;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn audit_fixture(name: &str) -> Vec<Diagnostic> {
    let src = fs::read_to_string(fixture_dir().join(name)).expect("fixture exists");
    let rel = format!("crates/core/src/{name}");
    let mut diags = audit_source(&rel, "core", &src);
    sort_diagnostics(&mut diags);
    diags
}

fn check_golden(name: &str, rendered: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("NANOCOST_AUDIT_BLESS").is_some() {
        fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .expect("golden file exists (NANOCOST_AUDIT_BLESS=1 regenerates)");
    assert_eq!(rendered, expected, "golden mismatch for {name}");
}

fn render_text_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_text());
        out.push('\n');
    }
    out
}

#[test]
fn violations_fixture_matches_goldens() {
    let diags = audit_fixture("violations.rs");
    check_golden("violations.expected.txt", &render_text_report(&diags));
    check_golden("violations.expected.json", &render_json_report(&diags));
}

#[test]
fn violations_fixture_trips_every_main_rule() {
    let diags = audit_fixture("violations.rs");
    for rule in [RuleId::R1, RuleId::R2, RuleId::R3, RuleId::R4, RuleId::R5] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "fixture should trip {rule}: {diags:?}"
        );
    }
}

#[test]
fn r6_fixture_matches_golden_and_honors_exemptions() {
    let diags = audit_fixture("r6_println.rs");
    check_golden("r6_println.expected.txt", &render_text_report(&diags));
    assert_eq!(diags.len(), 4, "two println-family lines per chatty fn: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::R6));
    // The pragma-suppressed eprintln! and the test-module println! are absent.
    assert!(diags.iter().all(|d| d.line < 17));
}

#[test]
fn r7_fixture_matches_golden_and_honors_exemptions() {
    let diags = audit_fixture("r7_span_names.rs");
    check_golden("r7_span_names.expected.txt", &render_text_report(&diags));
    assert_eq!(diags.len(), 2, "one bad literal + one dynamic name: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::R7));
    // The pragma-suppressed event! and the test-module span! are absent.
    assert!(diags.iter().all(|d| d.line < 20));
}

#[test]
fn clean_fixture_is_clean() {
    let diags = audit_fixture("clean.rs");
    assert!(diags.is_empty(), "clean fixture must audit clean: {diags:?}");
}

#[test]
fn malformed_pragma_fixture_reports_p0_and_keeps_the_violation() {
    let diags = audit_fixture("malformed_pragma.rs");
    check_golden("malformed_pragma.expected.txt", &render_text_report(&diags));
    assert!(diags.iter().any(|d| d.rule == RuleId::P0));
    assert!(
        diags.iter().any(|d| d.rule == RuleId::R1),
        "a reason-less pragma must not suppress: {diags:?}"
    );
}

#[test]
fn json_report_round_trips_through_the_golden() {
    // The golden JSON is the source of truth for the output contract:
    // stable key order, one diagnostics array, and an error/warning count
    // object. Spot-check the structure without a JSON parser.
    let json = fs::read_to_string(fixture_dir().join("violations.expected.json"))
        .expect("golden exists");
    assert!(json.starts_with("{\"diagnostics\":["));
    assert!(json.contains("\"counts\":{\"error\":"));
    assert!(json.ends_with("}\n"));
    let reports = audit_fixture("violations.rs");
    assert_eq!(render_json_report(&reports), json);
}
