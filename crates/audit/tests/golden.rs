//! Golden-file tests: fixtures in `fixtures/` are audited as if they were
//! `crates/core/src/` files, and the rendered text and JSON reports must
//! match their checked-in `.expected.txt` / `.expected.json` siblings
//! byte-for-byte. Regenerate with `NANOCOST_AUDIT_BLESS=1 cargo test -p
//! nanocost-audit`.

use std::fs;
use std::path::PathBuf;

use nanocost_audit::diagnostics::{render_json_report, sort_diagnostics, Diagnostic, RuleId};
use nanocost_audit::{audit_source, audit_workspace, verdict, AuditOptions, Verdict};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn audit_fixture(name: &str) -> Vec<Diagnostic> {
    let src = fs::read_to_string(fixture_dir().join(name)).expect("fixture exists");
    let rel = format!("crates/core/src/{name}");
    let mut diags = audit_source(&rel, "core", &src);
    sort_diagnostics(&mut diags);
    diags
}

fn check_golden(name: &str, rendered: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("NANOCOST_AUDIT_BLESS").is_some() {
        fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .expect("golden file exists (NANOCOST_AUDIT_BLESS=1 regenerates)");
    assert_eq!(rendered, expected, "golden mismatch for {name}");
}

fn render_text_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_text());
        out.push('\n');
    }
    out
}

#[test]
fn violations_fixture_matches_goldens() {
    let diags = audit_fixture("violations.rs");
    check_golden("violations.expected.txt", &render_text_report(&diags));
    check_golden("violations.expected.json", &render_json_report(&diags));
}

#[test]
fn violations_fixture_trips_every_main_rule() {
    let diags = audit_fixture("violations.rs");
    for rule in [RuleId::R1, RuleId::R2, RuleId::R3, RuleId::R4, RuleId::R5] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "fixture should trip {rule}: {diags:?}"
        );
    }
}

#[test]
fn r6_fixture_matches_golden_and_honors_exemptions() {
    let diags = audit_fixture("r6_println.rs");
    check_golden("r6_println.expected.txt", &render_text_report(&diags));
    assert_eq!(diags.len(), 4, "two println-family lines per chatty fn: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::R6));
    // The pragma-suppressed eprintln! and the test-module println! are absent.
    assert!(diags.iter().all(|d| d.line < 17));
}

#[test]
fn r7_fixture_matches_golden_and_honors_exemptions() {
    let diags = audit_fixture("r7_span_names.rs");
    check_golden("r7_span_names.expected.txt", &render_text_report(&diags));
    assert_eq!(diags.len(), 2, "one bad literal + one dynamic name: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::R7));
    // The pragma-suppressed event! and the test-module span! are absent.
    assert!(diags.iter().all(|d| d.line < 20));
}

#[test]
fn r8_fixture_matches_golden_and_honors_sanitizers() {
    let diags = audit_fixture("r8_taint.rs");
    check_golden("r8_taint.expected.txt", &render_text_report(&diags));
    assert!(diags.iter().all(|d| d.rule == RuleId::R8), "{diags:?}");
    assert_eq!(diags.len(), 3, "arith + alloc + index, nothing else: {diags:?}");
    // The guarded/parsed/len'd/waived fns audit clean — no diagnostic at
    // or past `guarded`'s first line.
    assert!(diags.iter().all(|d| d.line < 21), "{diags:?}");
}

#[test]
fn r9_fixture_matches_golden_and_credits_discipline() {
    let diags = audit_fixture("r9_locks.rs");
    check_golden("r9_locks.expected.txt", &render_text_report(&diags));
    assert!(diags.iter().all(|d| d.rule == RuleId::R9), "R1 waiver holds: {diags:?}");
    let poison = diags.iter().filter(|d| d.message.contains("poisoned mutex")).count();
    let order = diags.iter().filter(|d| d.message.contains("inconsistent order")).count();
    let io = diags.iter().filter(|d| d.message.contains("I/O call")).count();
    assert_eq!((poison, order, io), (1, 2, 1), "{diags:?}");
}

#[test]
fn r10_fixture_matches_golden_and_checks_both_directions() {
    let diags = audit_fixture("r10_provenance.rs");
    check_golden("r10_provenance.expected.txt", &render_text_report(&diags));
    assert!(diags.iter().all(|d| d.rule == RuleId::R10), "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("cites Eq. 4")), "forward: {diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("never cites Eq. 6")), "reverse: {diags:?}");
    assert_eq!(diags.len(), 2, "clean direct/transitive shapes stay clean: {diags:?}");
}

#[test]
fn clean_fixture_is_clean() {
    let diags = audit_fixture("clean.rs");
    assert!(diags.is_empty(), "clean fixture must audit clean: {diags:?}");
}

#[test]
fn malformed_pragma_fixture_reports_p0_and_keeps_the_violation() {
    let diags = audit_fixture("malformed_pragma.rs");
    check_golden("malformed_pragma.expected.txt", &render_text_report(&diags));
    assert!(diags.iter().any(|d| d.rule == RuleId::P0));
    assert!(
        diags.iter().any(|d| d.rule == RuleId::R1),
        "a reason-less pragma must not suppress: {diags:?}"
    );
}

/// The seeded mini-workspace under `fixtures/seeded/` re-introduces the
/// bug shapes the new rules exist to catch. If this test starts passing
/// with an empty report, the analyzer has gone blind — which is exactly
/// what the assertion (and the matching `scripts/ci.sh` negative gate)
/// exists to detect.
#[test]
fn seeded_workspace_trips_the_dataflow_rules() {
    let root = fixture_dir().join("seeded");
    let mut diags = audit_workspace(&root, AuditOptions::default()).expect("seeded walk");
    sort_diagnostics(&mut diags);
    check_golden("seeded/expected.txt", &render_text_report(&diags));
    assert_eq!(verdict(&diags, true), Verdict::Errors);
    for rule in [RuleId::R8, RuleId::R9, RuleId::R10] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "seeded workspace must trip {rule}: {diags:?}"
        );
    }
    // The specific seeded shapes, by name.
    assert!(diags.iter().any(|d| d.message.contains("Dollars::new")), "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("inconsistent order")), "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("cites Eq. 5")), "{diags:?}");
}

#[test]
fn json_report_round_trips_through_the_golden() {
    // The golden JSON is the source of truth for the output contract:
    // stable key order, one diagnostics array, and an error/warning count
    // object. Spot-check the structure without a JSON parser.
    let json = fs::read_to_string(fixture_dir().join("violations.expected.json"))
        .expect("golden exists");
    assert!(json.starts_with("{\"schema\":2,\"diagnostics\":["));
    assert!(json.contains("\"counts\":{\"error\":"));
    assert!(json.ends_with("}\n"));
    let reports = audit_fixture("violations.rs");
    assert_eq!(render_json_report(&reports), json);
}
