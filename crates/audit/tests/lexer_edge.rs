//! Lexer edge cases and a seeded mutation sweep.
//!
//! The lexer is the foundation every rule stands on, so it must (a) get
//! the genuinely tricky Rust surface right — raw strings with hash
//! fences, nested block comments, lifetimes vs char literals, shebang
//! lines — and (b) never panic, whatever bytes it is fed. The sweep
//! mutates real-looking source with a deterministic xorshift PRNG (no
//! dependencies, no wall-clock seeding) and lexes every mutant.

use nanocost_audit::audit_source;
use nanocost_audit::lexer::{lex, TokenKind};

/// Token kinds with payloads dropped, for terse structural assertions.
fn kinds(src: &str) -> Vec<TokenKind> {
    lex(src).into_iter().map(|t| t.kind).collect()
}

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter_map(|t| match t.kind {
            TokenKind::Ident(i) => Some(i),
            _ => None,
        })
        .collect()
}

#[test]
fn raw_strings_with_hash_fences() {
    // One hash: an interior `"` does not end the literal.
    let toks = kinds(r##"let s = r#"quote " inside"#;"##);
    assert!(
        toks.iter()
            .any(|k| matches!(k, TokenKind::Str(s) if s.contains("quote \" inside"))),
        "{toks:?}"
    );
    // Two hashes: an interior `"#` does not end the literal either.
    let src = "let s = r##\"fence \"# inside\"##; fn after() {}";
    assert!(
        kinds(src)
            .iter()
            .any(|k| matches!(k, TokenKind::Str(s) if s.contains("fence \"# inside"))),
    );
    // And the lexer resynchronizes: the item after the literal is intact.
    assert!(idents(src).contains(&"after".to_string()));
}

#[test]
fn raw_string_payload_is_not_scanned_for_tokens() {
    // A raw string full of comment openers and quotes must stay one Str.
    let src = r####"let s = r###"/* // "## 'x' "###; let y = 1;"####;
    let strs = kinds(src)
        .iter()
        .filter(|k| matches!(k, TokenKind::Str(_)))
        .count();
    assert_eq!(strs, 1);
    assert!(idents(src).contains(&"y".to_string()));
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let src = "/* outer /* inner */ still comment */ fn live() {}";
    let toks = lex(src);
    assert!(
        matches!(&toks[0].kind, TokenKind::Comment(c) if c.contains("inner")),
        "{toks:?}"
    );
    assert!(idents(src).contains(&"live".to_string()));
    // An unterminated nested comment consumes to EOF without panicking.
    assert!(idents("/* a /* b */ never closed fn ghost() {}").is_empty());
}

#[test]
fn lifetimes_are_not_char_literals() {
    // `'a` (lifetime) must not swallow ` str>` the way a char scan would.
    let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
    assert_eq!(kinds(src).iter().filter(|k| matches!(k, TokenKind::Char)).count(), 0);
    assert!(idents(src).contains(&"str".to_string()));
    // Real char literals — including escaped quotes — still lex as Char.
    for src in ["let c = 'x';", "let c = '\\'';", "let c = '\\\\';", "let b = b'q';"] {
        assert_eq!(
            kinds(src).iter().filter(|k| matches!(k, TokenKind::Char)).count(),
            1,
            "{src}"
        );
    }
}

#[test]
fn shebang_line_is_skipped() {
    let src = "#!/usr/bin/env run-cargo-script\nfn main() {}";
    let toks = lex(src);
    assert!(idents(src).contains(&"main".to_string()));
    // Nothing lexed from the shebang itself: first token sits on line 2.
    assert_eq!(toks.first().map(|t| t.line), Some(2), "{toks:?}");
    // But an inner attribute `#![…]` on line 1 is NOT a shebang.
    let attr = lex("#![allow(dead_code)]\nfn main() {}");
    assert_eq!(attr.first().map(|t| t.line), Some(1));
}

#[test]
fn line_numbers_are_monotonic() {
    let src = "fn a() {}\n/* x\n y */\nfn b() {\n    let s = \"multi\n line\";\n}\n";
    let toks = lex(src);
    let mut last = 0;
    for t in &toks {
        assert!(t.line >= last, "line went backwards at {t:?}");
        last = t.line;
    }
    assert!(last >= 4, "tokens past the multiline regions: {last}");
}

/// Deterministic xorshift64* PRNG — the sweep must not depend on wall
/// clock or platform RNG.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A corpus line-up of the constructs the lexer finds hardest; mutations
/// of these exercise every resynchronization path.
const CORPUS: &[&str] = &[
    "//! module doc\n/// Eq. 3 doc\npub fn f<'a>(x: &'a str) -> f64 { x.len() as f64 * 2.5e-3 }\n",
    "fn g() { let s = r#\"raw \" body\"#; let c = '\\n'; /* b /* n */ e */ }\n",
    "#!/usr/bin/env x\nimpl T { pub fn h(&self) -> u64 { self.cache.lock().unwrap().hits } }\n",
    "macro_rules! m { () => { 0 } }\nfn i() { span!(\"a.b\"); provenance!(equation: Eq5, v = 1.0); }\n",
    "fn j(doc: &JsonValue) { let v = doc.get(\"k\").and_then(JsonValue::as_f64); }\n",
];

/// 600 seeded mutants per corpus entry: byte substitutions, insertions,
/// and deletions (including into string/comment interiors). The lexer,
/// the structural pass, and the full single-file audit must survive all
/// of them, and reported line numbers must stay monotonic.
#[test]
fn seeded_mutation_sweep_never_panics() {
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    // Bytes biased toward the lexer's trigger characters.
    const SPICE: &[u8] = b"\"'/r#!*{}()[]<>\\\n0.e_";
    for (ci, base) in CORPUS.iter().enumerate() {
        for round in 0..600 {
            let mut bytes = base.as_bytes().to_vec();
            for _ in 0..=rng.below(3) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.below(bytes.len());
                let b = SPICE[rng.below(SPICE.len())];
                match rng.below(3) {
                    0 => bytes[at] = b,
                    1 => bytes.insert(at, b),
                    _ => {
                        bytes.remove(at);
                    }
                }
            }
            // Mutations may break UTF-8; the audit API takes &str, so
            // repair lossily exactly as a file read would.
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let toks = lex(&src);
            let mut last = 0;
            for t in &toks {
                assert!(
                    t.line >= last,
                    "corpus {ci} round {round}: line regressed in {src:?}"
                );
                last = t.line;
            }
            // The whole pipeline — context, parse, symbols, dataflow,
            // every rule — must also hold up on the mutant.
            let _ = audit_source("crates/core/src/mutant.rs", "core", &src);
        }
    }
}
