//! Workspace-wide symbol table and call graph.
//!
//! Built once per audit run over every lexed file, this is the substrate
//! the inter-procedural rules stand on: R8's function summaries resolve
//! callees here, and R10's provenance reachability walks the call graph.
//!
//! Resolution is *name-based*, not type-based: a call `x.foo(…)` edges to
//! every known fn named `foo`, and `Type::new(…)` prefers fns declared in
//! an `impl Type` block. That deliberately over-connects the graph —
//! which keeps reachability checks (R10) permissive and summary lookups
//! (R8) conservative-but-useful without a type checker.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::context::FileContext;
use crate::lexer::Token;
use crate::parse::{self, Block, Expr};

/// One file's inputs to the table (borrowed from the audit pipeline).
pub struct FileData<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Owning crate (directory name under `crates/`).
    pub crate_name: &'a str,
    /// The file's token stream.
    pub tokens: &'a [Token],
    /// The structural pass over it.
    pub ctx: &'a FileContext,
}

/// One function in the workspace.
#[derive(Debug)]
pub struct FnSym {
    /// Index of the owning file in the build input.
    pub file: usize,
    /// Index into that file's `ctx.fns`.
    pub fn_idx: usize,
    /// Bare name.
    pub name: String,
    /// `Type::name` when declared in an `impl Type` block.
    pub qualified: Option<String>,
    /// Owning crate.
    pub crate_name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Declared `pub`.
    pub is_pub: bool,
    /// Returns `Result`/`Option` (the fallibility signal).
    pub ret_result: bool,
    /// Parameter binding names, in order (excluding `self`).
    pub param_names: Vec<String>,
    /// Attached doc comment.
    pub doc: String,
    /// Parsed body, when the fn has one.
    pub body: Option<Block>,
}

/// The workspace symbol table plus its name-resolved call graph.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every non-test function with its parsed body.
    pub fns: Vec<FnSym>,
    /// Call-graph adjacency: `calls[i]` are the fn indices `fns[i]` may
    /// invoke (by name resolution).
    pub calls: Vec<Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
    by_qualified: HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table and call graph from every file's context.
    /// Test functions are excluded: they are neither analyzed as library
    /// code nor valid resolution targets for it.
    pub fn build(files: &[FileData<'_>]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (file_idx, fd) in files.iter().enumerate() {
            for (fn_idx, info) in fd.ctx.fns.iter().enumerate() {
                if info.in_test || info.name.is_empty() {
                    continue;
                }
                let body = info.body.map(|span| parse::parse_body(fd.tokens, span));
                let qualified = info.impl_type.as_ref().map(|t| format!("{t}::{}", info.name));
                let idx = table.fns.len();
                table.by_name.entry(info.name.clone()).or_default().push(idx);
                if let Some(q) = &qualified {
                    table.by_qualified.entry(q.clone()).or_default().push(idx);
                }
                table.fns.push(FnSym {
                    file: file_idx,
                    fn_idx,
                    name: info.name.clone(),
                    qualified,
                    crate_name: fd.crate_name.to_string(),
                    line: info.line,
                    is_pub: info.is_pub,
                    ret_result: info.ret_result,
                    param_names: info.params.iter().map(|p| p.name.clone()).collect(),
                    doc: info.doc.clone(),
                    body,
                });
            }
        }
        table.calls = table
            .fns
            .iter()
            .map(|f| f.body.as_ref().map(|b| table.callees_of(b)).unwrap_or_default())
            .collect();
        table
    }

    /// Resolves a call path to candidate fn indices. Multi-segment paths
    /// try the `Type::name` qualification first; anything else falls back
    /// to the bare name.
    pub fn resolve_path(&self, path: &[String]) -> &[usize] {
        if path.len() >= 2 {
            let q = format!("{}::{}", path[path.len() - 2], path[path.len() - 1]);
            if let Some(v) = self.by_qualified.get(&q) {
                return v;
            }
        }
        path.last()
            .and_then(|n| self.by_name.get(n))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Resolves a bare (method) name.
    pub fn resolve_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Strict resolution for dataflow summaries: a multi-segment path
    /// must match a known `Type::name` qualification (no bare-name
    /// fallback — `Config::new` must not borrow `Dollars::new`'s
    /// summary); a single segment resolves by name.
    pub fn resolve_call(&self, path: &[String]) -> &[usize] {
        if path.len() >= 2 {
            let q = format!("{}::{}", path[path.len() - 2], path[path.len() - 1]);
            return self.by_qualified.get(&q).map(Vec::as_slice).unwrap_or(&[]);
        }
        path.last()
            .and_then(|n| self.by_name.get(n))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every callee index a body may invoke: plain calls, method calls,
    /// and function references passed as values (`JsonValue::as_f64`).
    fn callees_of(&self, body: &Block) -> Vec<usize> {
        let mut out: HashSet<usize> = HashSet::new();
        parse::walk_block(body, &mut |e| match e {
            Expr::Call { path, .. } => out.extend(self.resolve_path(path).iter().copied()),
            Expr::Method { name, .. } => out.extend(self.resolve_name(name).iter().copied()),
            Expr::Path(path, _) => out.extend(self.resolve_path(path).iter().copied()),
            _ => {}
        });
        let mut v: Vec<usize> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// The set of fns reachable from `start` (inclusive) over the call
    /// graph.
    pub fn reachable(&self, start: usize) -> HashSet<usize> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        if start < self.fns.len() {
            seen.insert(start);
            queue.push_back(start);
        }
        while let Some(i) = queue.pop_front() {
            for &j in self.calls.get(i).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(j) {
                    queue.push_back(j);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;

    struct Owned {
        path: String,
        crate_name: String,
        tokens: Vec<Token>,
        ctx: FileContext,
    }

    fn prep(files: &[(&str, &str, &str)]) -> Vec<Owned> {
        files
            .iter()
            .map(|(path, krate, src)| {
                let tokens = lex(src);
                let ctx = context::analyze(&tokens);
                Owned {
                    path: (*path).to_string(),
                    crate_name: (*krate).to_string(),
                    tokens,
                    ctx,
                }
            })
            .collect()
    }

    fn build(owned: &[Owned]) -> SymbolTable {
        let data: Vec<FileData<'_>> = owned
            .iter()
            .map(|o| FileData {
                path: &o.path,
                crate_name: &o.crate_name,
                tokens: &o.tokens,
                ctx: &o.ctx,
            })
            .collect();
        SymbolTable::build(&data)
    }

    #[test]
    fn cross_file_calls_resolve() {
        let owned = prep(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "pub fn caller() -> f64 { helper(1.0) }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "pub fn helper(x: f64) -> f64 { x }\n",
            ),
        ]);
        let t = build(&owned);
        assert_eq!(t.fns.len(), 2);
        let caller = t.fns.iter().position(|f| f.name == "caller").unwrap();
        let helper = t.fns.iter().position(|f| f.name == "helper").unwrap();
        assert_eq!(t.calls[caller], vec![helper]);
        assert!(t.reachable(caller).contains(&helper));
    }

    #[test]
    fn qualified_resolution_prefers_impl_type() {
        let owned = prep(&[(
            "crates/u/src/lib.rs",
            "u",
            "impl Dollars { pub fn new(v: f64) -> Dollars { Dollars(v) } }\n\
             impl Cache { pub fn new() -> Cache { Cache }\n\
                 fn go(&self) { Dollars::new(1.0); } }\n",
        )]);
        let t = build(&owned);
        let path = vec!["Dollars".to_string(), "new".to_string()];
        let resolved = t.resolve_path(&path);
        assert_eq!(resolved.len(), 1);
        assert_eq!(t.fns[resolved[0]].qualified.as_deref(), Some("Dollars::new"));
    }

    #[test]
    fn test_fns_are_excluded() {
        let owned = prep(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\n",
        )]);
        let t = build(&owned);
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "live");
    }

    #[test]
    fn method_calls_and_fn_refs_edge() {
        let owned = prep(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub fn as_f64() -> f64 { 0.0 }\n\
             pub fn go(doc: D) { doc.get(\"k\").and_then(Self::as_f64); }\n\
             impl M { fn mask_set_cost(&self) { emitit(); } }\n\
             pub fn emitit() {}\n\
             pub fn top(m: M) { m.mask_set_cost(); }\n",
        )]);
        let t = build(&owned);
        let go = t.fns.iter().position(|f| f.name == "go").unwrap();
        let src = t.fns.iter().position(|f| f.name == "as_f64").unwrap();
        assert!(t.calls[go].contains(&src), "fn ref passed as value edges");
        let top = t.fns.iter().position(|f| f.name == "top").unwrap();
        let emit = t.fns.iter().position(|f| f.name == "emitit").unwrap();
        assert!(t.reachable(top).contains(&emit), "method call edges transitively");
    }
}
