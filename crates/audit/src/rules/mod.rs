//! The audit rules.
//!
//! This module holds the per-file structural rules R1–R7: each is a pure
//! function over one file's token stream plus its structural
//! [`FileContext`](crate::context::FileContext). The workspace-scoped
//! dataflow rules live in submodules — [`taint`] (R8), [`locks`] (R9),
//! [`provenance`] (R10) — and run over the cross-file
//! [`SymbolTable`](crate::symbols::SymbolTable) instead. Suppression
//! pragmas are applied by the caller in `lib.rs` so the rules stay simple.

pub mod locks;
pub mod provenance;
pub mod taint;

use crate::context::FileContext;
use crate::diagnostics::{Diagnostic, RuleId};
use crate::lexer::{Token, TokenKind};

/// Which crates carry the paper's cost model (R3/R4 scope).
const MODEL_CRATES: &[&str] = &["core", "yield-model", "flow"];

/// Which crates must cite the paper in every public fn doc (R5 scope).
const DOC_CITED_CRATES: &[&str] = &["core", "yield-model"];

/// File-name stems exempt from R3: they exist to hold named constants.
const R3_EXEMPT_STEMS: &[&str] = &["const", "calib", "table", "scenario", "data"];

/// Float literal values R3 never flags: structural values that carry no
/// calibration meaning (identity/half/doubling/percent base) plus
/// comparison epsilons at or below 1e-6.
const R3_TRIVIAL: &[f64] = &[0.0, 0.5, 1.0, 2.0, 100.0];

/// Paper-symbol parameter names that have a `nanocost-units` newtype (R4).
/// Maps the raw-`f64` parameter name to the type that should replace it.
const R4_SYMBOLS: &[(&str, &str)] = &[
    ("sd", "DecompressionIndex"),
    ("s_d", "DecompressionIndex"),
    ("decompression", "DecompressionIndex"),
    ("lambda", "FeatureSize"),
    ("feature_size", "FeatureSize"),
    ("yield_", "Yield"),
    ("y0", "Yield"),
    ("cost", "Dollars"),
    ("price", "Dollars"),
    ("capex", "Dollars"),
    ("budget", "Dollars"),
    ("area", "Area"),
    ("wafers", "WaferCount"),
    ("transistors", "TransistorCount"),
    ("utilization", "Utilization"),
    ("density", "DesignDensity"),
];

/// Crates whose library code prints by design and is exempt from R6: the
/// bench harness's whole purpose is writing results to stdout, and the
/// audit reporter itself writes diagnostics to the console.
const R6_EXEMPT_CRATES: &[&str] = &["bench", "audit"];

/// Trace macros whose first argument names a span/event/metric (R7).
/// Stable, literal names keep flamegraph stacks and provenance
/// fingerprint keys comparable across runs and releases.
const R7_MACROS: &[&str] = &["span", "event", "counter", "gauge", "metric_histogram"];

/// Keywords whose presence in a doc comment counts as a paper citation (R5).
/// Matched on word boundaries after lowercasing.
const R5_KEYWORDS: &[&str] = &[
    "eq", "equation", "fig", "figure", "table", "sec", "section", "maly", "dac", "itrs",
    "appendix", "paper", "chapter",
];

/// Everything the rules need to know about the file being audited.
pub struct FileInput<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Crate directory name under `crates/` (e.g. `"yield-model"`),
    /// or `""` for files outside `crates/`.
    pub crate_name: &'a str,
    /// Lexed tokens.
    pub tokens: &'a [Token],
    /// Structural context over the tokens.
    pub ctx: &'a FileContext,
}

/// Is this path binary (CLI) code, exempt from the library-code rules?
pub(crate) fn is_bin_path(path: &str) -> bool {
    path.contains("/bin/") || path.ends_with("/main.rs")
}

impl FileInput<'_> {
    fn is_bin(&self) -> bool {
        is_bin_path(self.path)
    }

    fn is_model_crate(&self) -> bool {
        MODEL_CRATES.contains(&self.crate_name)
    }

    fn diag(&self, line: u32, rule: RuleId, message: String) -> Diagnostic {
        Diagnostic { file: self.path.to_string(), line, rule, severity: rule.severity(), message }
    }
}

/// Runs every rule over one file.
pub fn run_all(input: &FileInput<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rule_r1(input, &mut out);
    rule_r2(input, &mut out);
    rule_r3(input, &mut out);
    rule_r4(input, &mut out);
    rule_r5(input, &mut out);
    rule_r6(input, &mut out);
    rule_r7(input, &mut out);
    out
}

/// Index of the next non-trivia token after `i`, if any.
fn next_code(tokens: &[Token], i: usize) -> Option<usize> {
    tokens
        .iter()
        .enumerate()
        .skip(i + 1)
        .find(|(_, t)| !t.is_trivia())
        .map(|(k, _)| k)
}

/// Index of the previous non-trivia token before `i`, if any.
fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    tokens[..i].iter().rposition(|t| !t.is_trivia())
}

/// R1: no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in library code (test regions and binaries exempt).
fn rule_r1(input: &FileInput<'_>, out: &mut Vec<Diagnostic>) {
    if input.is_bin() {
        return;
    }
    let toks = input.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else { continue };
        if input.ctx.in_test(i) {
            continue;
        }
        match name.as_str() {
            "unwrap" | "expect" => {
                // Must be a method call: `.name(`.
                let dotted = prev_code(toks, i).map(|p| toks[p].is_punct(".")).unwrap_or(false);
                let called = next_code(toks, i).map(|n| toks[n].is_punct("(")).unwrap_or(false);
                if dotted && called {
                    out.push(input.diag(
                        tok.line,
                        RuleId::R1,
                        format!("`.{name}()` in library code; propagate the error or prove it impossible"),
                    ));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                let bang = next_code(toks, i).map(|n| toks[n].is_punct("!")).unwrap_or(false);
                // `debug_assert`-family and `assert` are allowed; only the
                // bare abort macros are flagged.
                if bang {
                    out.push(input.diag(
                        tok.line,
                        RuleId::R1,
                        format!("`{name}!` in library code; return an error instead of aborting"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// R2: no direct `==`/`!=` with floating-point operands.
///
/// An operand is "floating-point" when the adjacent token is a float
/// literal, or the comparison is against an `f64::`/`f32::` associated
/// constant (`f64::NAN`, `f64::INFINITY`, …).
fn rule_r2(input: &FileInput<'_>, out: &mut Vec<Diagnostic>) {
    let toks = input.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let TokenKind::Punct(op) = &tok.kind else { continue };
        if op != "==" && op != "!=" {
            continue;
        }
        if input.ctx.in_test(i) {
            continue;
        }
        let prev_float = prev_code(toks, i)
            .map(|p| matches!(toks[p].kind, TokenKind::Float(_)))
            .unwrap_or(false);
        let next = next_code(toks, i);
        let next_float =
            next.map(|n| matches!(toks[n].kind, TokenKind::Float(_))).unwrap_or(false);
        // `x == f64::NAN`-style path on the right.
        let next_f64_path = next
            .map(|n| {
                (toks[n].is_ident("f64") || toks[n].is_ident("f32"))
                    && next_code(toks, n).map(|m| toks[m].is_punct("::")).unwrap_or(false)
            })
            .unwrap_or(false);
        if prev_float || next_float || next_f64_path {
            out.push(input.diag(
                tok.line,
                RuleId::R2,
                format!("direct `{op}` against a floating-point value; compare with an explicit tolerance"),
            ));
        }
    }
}

/// Parses the numeric value of a float-literal token (`1_000.5f64` → 1000.5).
fn float_value(text: &str) -> Option<f64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let cleaned = cleaned.trim_end_matches("f64").trim_end_matches("f32");
    cleaned.parse().ok()
}

/// R3: no bare float literals inside model-crate function bodies.
///
/// Exemptions: `const`/`static` items, test code, files whose name marks
/// them as constant/calibration tables, trivially-structural values
/// (0, 0.5, 1, 2, 100) and epsilons ≤ 1e-6.
fn rule_r3(input: &FileInput<'_>, out: &mut Vec<Diagnostic>) {
    if !input.is_model_crate() {
        return;
    }
    let stem = input.path.rsplit('/').next().unwrap_or("");
    if R3_EXEMPT_STEMS.iter().any(|s| stem.starts_with(s)) {
        return;
    }
    for (i, tok) in input.tokens.iter().enumerate() {
        let TokenKind::Float(text) = &tok.kind else { continue };
        if input.ctx.in_test(i) || input.ctx.in_const(i) || !input.ctx.in_fn_body(i) {
            continue;
        }
        if let Some(v) = float_value(text) {
            if R3_TRIVIAL.contains(&v) || v.abs() <= 1e-6 {
                continue;
            }
        }
        out.push(input.diag(
            tok.line,
            RuleId::R3,
            format!("bare numeric literal `{text}` in a model function; hoist it into a named const with a paper reference"),
        ));
    }
}

/// R4: public model-crate fns must not take raw `f64` for a quantity that
/// has a `nanocost-units` newtype.
fn rule_r4(input: &FileInput<'_>, out: &mut Vec<Diagnostic>) {
    if !input.is_model_crate() || input.is_bin() {
        return;
    }
    for f in &input.ctx.fns {
        if !f.is_pub || f.in_test {
            continue;
        }
        for p in &f.params {
            if !p.raw_f64 {
                continue;
            }
            let lower = p.name.to_ascii_lowercase();
            let hit = R4_SYMBOLS
                .iter()
                .find(|(sym, _)| lower == *sym || lower.trim_end_matches('_') == *sym);
            if let Some((_, newtype)) = hit {
                out.push(input.diag(
                    p.line,
                    RuleId::R4,
                    format!(
                        "`fn {}` takes `{}: f64`; use the `nanocost_units::{newtype}` newtype",
                        f.name, p.name
                    ),
                ));
            }
        }
    }
}

/// Does `doc` cite the paper? Word-boundary keyword match, plus `§`.
fn cites_paper(doc: &str) -> bool {
    if doc.contains('§') {
        return true;
    }
    let lower = doc.to_ascii_lowercase();
    let mut word = String::new();
    let mut words = Vec::new();
    for c in lower.chars() {
        if c.is_ascii_alphanumeric() {
            word.push(c);
        } else if !word.is_empty() {
            words.push(std::mem::take(&mut word));
        }
    }
    if !word.is_empty() {
        words.push(word);
    }
    words.iter().any(|w| R5_KEYWORDS.contains(&w.as_str()))
}

/// R5: every public fn in the cited crates carries a doc comment that
/// references the paper equation/figure/table/section it implements.
fn rule_r5(input: &FileInput<'_>, out: &mut Vec<Diagnostic>) {
    if !DOC_CITED_CRATES.contains(&input.crate_name) || input.is_bin() {
        return;
    }
    for f in &input.ctx.fns {
        if !f.is_pub || f.in_test || f.body.is_none() {
            continue;
        }
        if f.doc.trim().is_empty() {
            out.push(input.diag(
                f.line,
                RuleId::R5,
                format!("public `fn {}` has no doc comment; cite the paper equation/figure/table it implements", f.name),
            ));
        } else if !cites_paper(&f.doc) {
            out.push(input.diag(
                f.line,
                RuleId::R5,
                format!("doc comment on public `fn {}` does not reference a paper equation/figure/table/section", f.name),
            ));
        }
    }
}

/// R6: no `println!`/`eprintln!`/`print!`/`eprint!` in library code.
///
/// Model output belongs in return values or on the `nanocost-trace`
/// channel, where it is structured and machine-diffable; ad-hoc console
/// writes hide results from the exporters. Binaries and test regions are
/// exempt; the designed-to-print crates in [`R6_EXEMPT_CRATES`] are
/// skipped, and deliberate exceptions (e.g. a trace exporter's own
/// stderr fallback) carry an `allow(R6, ...)` pragma.
fn rule_r6(input: &FileInput<'_>, out: &mut Vec<Diagnostic>) {
    if input.is_bin() || R6_EXEMPT_CRATES.contains(&input.crate_name) {
        return;
    }
    let toks = input.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else { continue };
        if !matches!(name.as_str(), "println" | "eprintln" | "print" | "eprint") {
            continue;
        }
        if input.ctx.in_test(i) {
            continue;
        }
        let bang = next_code(toks, i).map(|n| toks[n].is_punct("!")).unwrap_or(false);
        if bang {
            out.push(input.diag(
                tok.line,
                RuleId::R6,
                format!("`{name}!` in library code; route output through nanocost-trace or return it to the caller"),
            ));
        }
    }
}

/// Is `s` a stable trace name: lowercase `snake_case`, optionally
/// dot-separated (`mc.wafers`, `figure4.run`)?
fn valid_trace_name(s: &str) -> bool {
    let starts_lower = s.chars().next().is_some_and(|c| c.is_ascii_lowercase());
    starts_lower
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
}

/// R7: `span!`/`event!`/`counter!`/`gauge!`/`metric_histogram!` names in
/// library code must be static lowercase `snake_case` string literals.
///
/// A computed or mixed-case name makes flamegraph stacks and metric keys
/// unstable run-to-run, which silently breaks `bench_diff` and the
/// fingerprint gate. Binaries and test regions are exempt; macro
/// definitions that forward `$name` are skipped (the call site is the
/// thing audited).
fn rule_r7(input: &FileInput<'_>, out: &mut Vec<Diagnostic>) {
    if input.is_bin() {
        return;
    }
    let toks = input.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else { continue };
        if !R7_MACROS.contains(&name.as_str()) {
            continue;
        }
        if input.ctx.in_test(i) {
            continue;
        }
        // Require the full `name!(` shape so plain fns named `event` or
        // `macro_rules!` definitions (`macro_rules ! span {`) pass by.
        let Some(bang) = next_code(toks, i) else { continue };
        if !toks[bang].is_punct("!") {
            continue;
        }
        let Some(open) = next_code(toks, bang) else { continue };
        if !toks[open].is_punct("(") {
            continue;
        }
        let Some(first) = next_code(toks, open) else { continue };
        match &toks[first].kind {
            // `$crate::span!($name, …)` inside a macro definition: the
            // name is supplied by the call site, which gets its own scan.
            TokenKind::Punct(p) if p == "$" => {}
            TokenKind::Str(content) if valid_trace_name(content) => {}
            TokenKind::Str(content) => {
                out.push(input.diag(
                    tok.line,
                    RuleId::R7,
                    format!(
                        "`{name}!` name \"{content}\" is not lowercase snake_case; unstable names break flamegraph and fingerprint keys"
                    ),
                ));
            }
            _ => {
                out.push(input.diag(
                    tok.line,
                    RuleId::R7,
                    format!(
                        "`{name}!` name must be a static string literal, not a computed expression"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::analyze;
    use crate::lexer::lex;

    fn audit(path: &str, crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let tokens = lex(src);
        let ctx = analyze(&tokens);
        run_all(&FileInput { path, crate_name, tokens: &tokens, ctx: &ctx })
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<RuleId> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn r1_flags_unwrap_and_panic_outside_tests() {
        let src = "fn f() { x.unwrap(); panic!(\"no\"); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let diags = audit("crates/core/src/a.rs", "core", src);
        let r1: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::R1).collect();
        assert_eq!(r1.len(), 2);
        assert_eq!(r1[0].line, 1);
    }

    #[test]
    fn r1_ignores_unwrap_or_variants_and_fields() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_default(); s.expect_count; }\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R1));
    }

    #[test]
    fn r1_skips_binaries() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(audit("crates/core/src/bin/tool.rs", "core", src).is_empty());
    }

    #[test]
    fn r2_flags_float_literal_comparison() {
        let diags = audit("crates/fab/src/a.rs", "fab", "fn f(x: f64) -> bool { x == 0.1 }\n");
        assert!(rules_of(&diags).contains(&RuleId::R2));
        let diags = audit("crates/fab/src/a.rs", "fab", "fn f(x: f64) -> bool { x != f64::NAN }\n");
        assert!(rules_of(&diags).contains(&RuleId::R2));
    }

    #[test]
    fn r2_allows_integer_comparison() {
        let diags = audit("crates/fab/src/a.rs", "fab", "fn f(x: u32) -> bool { x == 10 }\n");
        assert!(!rules_of(&diags).contains(&RuleId::R2));
    }

    #[test]
    fn r3_flags_bare_floats_in_model_fns_only() {
        let src = "const K: f64 = 0.3;\nfn f() -> f64 { 0.37 * K }\n";
        let diags = audit("crates/yield-model/src/models.rs", "yield-model", src);
        let r3: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::R3).collect();
        assert_eq!(r3.len(), 1);
        assert_eq!(r3[0].line, 2);
        // Same source in a non-model crate: clean.
        assert!(audit("crates/fab/src/x.rs", "fab", src).iter().all(|d| d.rule != RuleId::R3));
    }

    #[test]
    fn r3_exempts_trivial_values_and_calibration_files() {
        let src = "fn f(x: f64) -> f64 { (x * 0.5 + 1.0) * 2.0 / 100.0 + 1e-9 }\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R3));
        let src = "fn f() -> f64 { 0.123 }\n";
        assert!(audit("crates/flow/src/calibrate.rs", "flow", src)
            .iter()
            .all(|d| d.rule != RuleId::R3));
    }

    #[test]
    fn r4_flags_symbol_named_raw_f64_params() {
        let src = "pub fn chip_cost(lambda: f64, n: u64) -> f64 { 0.0 }\n";
        let diags = audit("crates/core/src/a.rs", "core", src);
        let r4: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::R4).collect();
        assert_eq!(r4.len(), 1);
        assert!(r4[0].message.contains("FeatureSize"));
    }

    #[test]
    fn r4_ignores_private_fns_and_unmapped_names() {
        let src = "fn helper(lambda: f64) {}\npub fn g(ratio: f64) {}\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R4));
    }

    #[test]
    fn r5_requires_paper_citation_in_doc() {
        let src = "/// Computes stuff.\npub fn a() {}\npub fn b() {}\n/// Implements eq. (7) of the paper.\npub fn c() {}\n";
        let diags = audit("crates/core/src/a.rs", "core", src);
        let r5: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::R5).collect();
        assert_eq!(r5.len(), 2);
        assert_eq!((r5[0].line, r5[1].line), (2, 3));
    }

    #[test]
    fn r5_word_boundary_matching() {
        assert!(cites_paper("See Figure 4."));
        assert!(cites_paper("Table A1 row."));
        assert!(cites_paper("per §3.2"));
        assert!(!cites_paper("frequent sequence"));
        assert!(!cites_paper("unstable sectioning-free"));
        assert!(cites_paper("ITRS roadmap"));
    }

    #[test]
    fn r6_flags_console_macros_in_library_code() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        let diags = audit("crates/core/src/a.rs", "core", src);
        let r6: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::R6).collect();
        assert_eq!(r6.len(), 2);
        assert_eq!(r6[0].line, 1);
    }

    #[test]
    fn r6_exempts_bins_tests_and_printing_crates() {
        let src = "fn main() { println!(\"ok\"); }\n";
        assert!(audit("crates/core/src/bin/tool.rs", "core", src).is_empty());
        let src = "#[cfg(test)]\nmod t { fn g() { println!(\"dbg\"); } }\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R6));
        let src = "fn report() { println!(\"median\"); }\n";
        assert!(audit("crates/bench/src/harness.rs", "bench", src)
            .iter()
            .all(|d| d.rule != RuleId::R6));
    }

    #[test]
    fn r6_ignores_non_macro_idents_named_print() {
        let src = "fn f() { let print = 1; self.println(); }\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R6));
    }

    #[test]
    fn r5_skips_trait_method_declarations() {
        let src = "pub trait T { fn m(&self); }\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R5));
    }

    #[test]
    fn r7_flags_bad_and_dynamic_trace_names() {
        let src = "fn f() { span!(\"MonteCarlo.Run\"); event!(name); counter!(\"mc.wafers\", 1u64); }\n";
        let diags = audit("crates/core/src/a.rs", "core", src);
        let r7: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::R7).collect();
        assert_eq!(r7.len(), 2, "{r7:?}");
        assert!(r7[0].message.contains("MonteCarlo.Run"));
        assert!(r7[1].message.contains("static string literal"));
    }

    #[test]
    fn r7_accepts_snake_case_and_dotted_names() {
        let src = "fn f() { span!(\"figure4.run\"); gauge!(\"mc.batch_size\", 4.0); \
                   metric_histogram!(\"wafer_cost_usd\", 1.0); }\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R7));
    }

    #[test]
    fn r7_skips_bins_tests_and_macro_forwarding() {
        let src = "fn main() { span!(NAME); }\n";
        assert!(audit("crates/core/src/bin/tool.rs", "core", src).is_empty());
        let src = "#[cfg(test)]\nmod t { fn g() { event!(\"X\"); } }\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R7));
        // `$crate::counter!($name, 1u64)` inside trace's own macro_rules.
        let src = "macro_rules! hit { ($name:expr) => { $crate::counter!($name, 1u64) }; }\n";
        assert!(audit("crates/trace/src/metrics.rs", "trace", src)
            .iter()
            .all(|d| d.rule != RuleId::R7));
    }

    #[test]
    fn r7_ignores_plain_idents_named_like_macros() {
        let src = "fn f() { let span = 1; event(span); gauge.set(2.0); }\n";
        assert!(audit("crates/core/src/a.rs", "core", src).iter().all(|d| d.rule != RuleId::R7));
    }

    #[test]
    fn r7_name_charset() {
        assert!(valid_trace_name("figure4.run"));
        assert!(valid_trace_name("mc.batch_size"));
        assert!(!valid_trace_name(""));
        assert!(!valid_trace_name("4figure"));
        assert!(!valid_trace_name("Figure.run"));
        assert!(!valid_trace_name("has space"));
        assert!(!valid_trace_name("has-dash"));
    }
}
