//! R10 — provenance completeness.
//!
//! The paper's equations are load-bearing: every `core` model fn whose
//! doc *leads* with an equation citation ("Eq. 4: …", "Eq.-5 mask-set
//! cost …") promises that evaluating it emits matching
//! `provenance!(equation: EqN, …)` records. R10 checks the promise both
//! ways:
//!
//! * **forward** — a public `core` fn whose doc's first line cites
//!   Eq. N must transitively reach an `EqN` emit over the call graph
//!   (the emit may live in `fab`/`yield-model`; the cache's replay
//!   wrappers reach the underlying emitters).
//! * **reverse** — a `core` fn whose own body emits `EqN` must mention
//!   Eq. N somewhere in its doc, so the instrumentation is documented
//!   where it happens.
//!
//! Mentions of "Eq." without a digit ("Eq.-provenance stream") are not
//! citations.

use std::collections::HashSet;

use crate::diagnostics::{Diagnostic, RuleId};
use crate::parse::{self, Block, Expr};
use crate::symbols::{FileData, SymbolTable};

/// The crate R10 holds to the citation contract.
const EQ_CRATE: &str = "core";

/// Runs the provenance-completeness check.
pub fn rule_r10(files: &[FileData<'_>], table: &SymbolTable) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Emits per fn, for every fn in the workspace (reachability may
    // cross into fab / yield-model).
    let emits: Vec<HashSet<u8>> = table
        .fns
        .iter()
        .map(|f| f.body.as_ref().map(emitted_eqs).unwrap_or_default())
        .collect();
    for (i, f) in table.fns.iter().enumerate() {
        if f.crate_name != EQ_CRATE {
            continue;
        }
        let path = files[f.file].path;
        // Forward: leading citation ⇒ reachable emit.
        if f.is_pub && f.body.is_some() {
            let cited = leading_citations(&f.doc);
            if !cited.is_empty() {
                let reachable = table.reachable(i);
                let reached: HashSet<u8> =
                    reachable.iter().flat_map(|&j| emits[j].iter().copied()).collect();
                for n in cited {
                    if !reached.contains(&n) {
                        out.push(diag(
                            path,
                            f.line,
                            format!(
                                "`{}` cites Eq. {n} but no `provenance!(equation: Eq{n}, …)` \
                                 emit is reachable from it",
                                f.name
                            ),
                        ));
                    }
                }
            }
        }
        // Reverse: own-body emit ⇒ doc citation.
        let all_cited = citations(&f.doc);
        for &n in &emits[i] {
            if !all_cited.contains(&n) {
                out.push(diag(
                    path,
                    f.line,
                    format!(
                        "`{}` emits Eq. {n} provenance but its doc never cites Eq. {n}",
                        f.name
                    ),
                ));
            }
        }
    }
    out
}

fn diag(path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        file: path.to_string(),
        line,
        rule: RuleId::R10,
        severity: RuleId::R10.severity(),
        message,
    }
}

/// Equation numbers a fn body emits: `provenance!` macro invocations
/// whose interior names `EqN`, plus `emit(…)` calls passing an `EqN`.
fn emitted_eqs(body: &Block) -> HashSet<u8> {
    let mut out = HashSet::new();
    parse::walk_block(body, &mut |e| match e {
        Expr::Macro { name, idents, .. } if name == "provenance" => {
            for id in idents {
                if let Some(n) = eq_ident(id) {
                    out.insert(n);
                }
            }
        }
        Expr::Call { path, args, .. } if path.last().is_some_and(|n| n == "emit") => {
            for a in args {
                collect_eq_idents(a, &mut out);
            }
        }
        Expr::Method { name, args, .. } if name == "emit" => {
            for a in args {
                collect_eq_idents(a, &mut out);
            }
        }
        _ => {}
    });
    out
}

fn collect_eq_idents(e: &Expr, out: &mut HashSet<u8>) {
    parse::walk_expr(e, &mut |x| match x {
        Expr::Var(n, _) => {
            if let Some(v) = eq_ident(n) {
                out.insert(v);
            }
        }
        Expr::Path(p, _) => {
            if let Some(v) = p.last().and_then(|n| eq_ident(n)) {
                out.insert(v);
            }
        }
        _ => {}
    });
}

/// `Eq1`–`Eq7` → the digit.
fn eq_ident(s: &str) -> Option<u8> {
    let rest = s.strip_prefix("Eq")?;
    if rest.len() == 1 {
        let d = rest.bytes().next()?;
        if (b'1'..=b'7').contains(&d) {
            return Some(d - b'0');
        }
    }
    None
}

/// Equation numbers cited anywhere in a doc comment: an `eq` word
/// boundary followed (over `.`/`-`/`s`/`(`/space) by a digit 1–7.
fn citations(doc: &str) -> HashSet<u8> {
    let mut out = HashSet::new();
    let lower = doc.to_lowercase();
    let bytes = lower.as_bytes();
    let mut i = 0;
    while let Some(at) = lower[i..].find("eq") {
        let start = i + at;
        i = start + 2;
        // Word boundary on the left: "freq" is not a citation.
        if start > 0 && bytes[start - 1].is_ascii_alphanumeric() {
            continue;
        }
        let mut j = i;
        // Optional "uation"/"uations"/"s" suffix, then separators.
        for suffix in ["uations", "uation", "s"] {
            if lower[j..].starts_with(suffix) {
                j += suffix.len();
                break;
            }
        }
        while j < bytes.len() && matches!(bytes[j], b'.' | b'-' | b'(' | b' ') {
            j += 1;
        }
        if j < bytes.len() && (b'1'..=b'7').contains(&bytes[j]) {
            // Single-digit equations only; "Eq. 42" is not in the paper.
            let next_is_digit = bytes.get(j + 1).is_some_and(u8::is_ascii_digit);
            if !next_is_digit {
                out.insert(bytes[j] - b'0');
            }
        }
    }
    out
}

/// Citations on the doc's *first line*, only when the line leads with
/// one — the convention that marks a fn as an equation implementation
/// rather than merely mentioning one.
fn leading_citations(doc: &str) -> HashSet<u8> {
    let first = doc.lines().next().unwrap_or("").trim();
    if !first.to_lowercase().starts_with("eq") {
        return HashSet::new();
    }
    citations(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::{lex, Token};
    use crate::symbols::SymbolTable;

    #[test]
    fn citation_extraction() {
        assert_eq!(citations("Eq. 5: spreads fixed costs"), HashSet::from([5]));
        assert_eq!(citations("Eq.-4 transistor cost"), HashSet::from([4]));
        assert_eq!(citations("implements equations 3 and also eq (7)"), HashSet::from([3, 7]));
        assert!(citations("the Eq.-provenance stream").is_empty());
        assert!(citations("frequency eq8 eq 42").is_empty());
    }

    #[test]
    fn leading_citation_requires_the_first_line_to_lead() {
        assert_eq!(leading_citations("Eq. 4 end to end: breakdown"), HashSet::from([4]));
        assert!(leading_citations("Computes stuff per Eq. 4").is_empty());
        assert!(leading_citations("Replays the Eq.-provenance stream").is_empty());
    }

    struct Owned {
        path: String,
        crate_name: String,
        tokens: Vec<Token>,
        ctx: crate::context::FileContext,
    }

    fn prep(files: &[(&str, &str, &str)]) -> Vec<Owned> {
        files
            .iter()
            .map(|(path, krate, src)| {
                let tokens = lex(src);
                let ctx = context::analyze(&tokens);
                Owned {
                    path: (*path).to_string(),
                    crate_name: (*krate).to_string(),
                    tokens,
                    ctx,
                }
            })
            .collect()
    }

    fn run(owned: &[Owned]) -> Vec<Diagnostic> {
        let data: Vec<FileData<'_>> = owned
            .iter()
            .map(|o| FileData {
                path: &o.path,
                crate_name: &o.crate_name,
                tokens: &o.tokens,
                ctx: &o.ctx,
            })
            .collect();
        let table = SymbolTable::build(&data);
        rule_r10(&data, &table)
    }

    #[test]
    fn cited_fn_reaching_emit_transitively_is_clean() {
        let owned = prep(&[
            (
                "crates/core/src/cache.rs",
                "core",
                "/// Eq.-5 mask-set cost through the cache.\n\
                 pub fn mask_set_cost() -> f64 { inner_cost() }\n",
            ),
            (
                "crates/fab/src/mask.rs",
                "fab",
                "/// Eq. 5 emitter.\n\
                 pub fn inner_cost() -> f64 {\n\
                     provenance!(equation: Eq5, out: 1.0);\n\
                     1.0\n\
                 }\n",
            ),
        ]);
        assert!(run(&owned).is_empty());
    }

    #[test]
    fn cited_fn_without_reachable_emit_fires() {
        let owned = prep(&[(
            "crates/core/src/total.rs",
            "core",
            "/// Eq. 5: spreads fixed costs.\n\
             pub fn amortized() -> f64 { 1.0 }\n",
        )]);
        let d = run(&owned);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("cites Eq. 5"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn emitting_fn_without_citation_fires() {
        let owned = prep(&[(
            "crates/core/src/total.rs",
            "core",
            "/// Computes a number.\n\
             pub fn amortized() -> f64 {\n\
                 provenance!(equation: Eq5, out: 1.0);\n\
                 1.0\n\
             }\n",
        )]);
        let d = run(&owned);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("never cites Eq. 5"));
    }

    #[test]
    fn non_core_crates_are_out_of_scope() {
        let owned = prep(&[(
            "crates/fab/src/mask.rs",
            "fab",
            "/// Undocumented emitter.\n\
             pub fn inner() { provenance!(equation: Eq5, out: 1.0); }\n",
        )]);
        assert!(run(&owned).is_empty());
    }

    #[test]
    fn wrong_equation_emitted_fires_forward() {
        let owned = prep(&[(
            "crates/core/src/total.rs",
            "core",
            "/// Eq. 4: breakdown.\n\
             /// Also emits Eq. 5 records for the mask branch.\n\
             pub fn breakdown() -> f64 {\n\
                 provenance!(equation: Eq5, out: 1.0);\n\
                 1.0\n\
             }\n",
        )]);
        let d = run(&owned);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("cites Eq. 4"), "{d:?}");
    }
}
