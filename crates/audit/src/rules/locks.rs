//! R9 — lock discipline.
//!
//! Three invariants over every library fn, checked on the parsed bodies:
//!
//! 1. **No poison panics**: `.lock().unwrap()` / `.lock().expect(…)`
//!    turn a poisoned mutex into a crash loop; library code must use
//!    `unwrap_or_else(PoisonError::into_inner)` or surface the `Err`.
//! 2. **Consistent global ordering**: if one fn acquires lock `a` then
//!    `b` while another acquires `b` then `a`, the workspace has a
//!    deadlock waiting for the right interleaving. Both sites are
//!    reported.
//! 3. **No I/O under a lock**: socket/file writes, reads, accepts, and
//!    channel sends while a guard is live stall every other thread on
//!    the peer's timetable. Calls *through* the guarded resource itself
//!    (`inner.out.write_all(…)` where `inner` is the guard) are the
//!    point of holding the lock and are exempt, as are bounded
//!    `recv_timeout` polls.
//!
//! Locks are identified by the last field segment of the receiver chain
//! (`self.cache.lock()` → `cache`); a bare `self.lock()` uses the
//! `impl` type's name. The helper form `lock(&self.endpoints)` resolves
//! through its argument.

use std::collections::HashMap;

use crate::diagnostics::{Diagnostic, RuleId};
use crate::parse::{Arm, Block, Expr, Stmt};
use crate::symbols::{FileData, SymbolTable};

/// Method names that are I/O when called under a live guard.
const IO_METHODS: &[&str] = &[
    "send",
    "try_send",
    "write",
    "write_all",
    "write_fmt",
    "flush",
    "read",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "accept",
    "connect",
];

/// Runs the lock-discipline scan over every library fn.
pub fn rule_r9(files: &[FileData<'_>], table: &SymbolTable) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // (first, second) -> acquisition sites of `second` under `first`.
    let mut orders: HashMap<(String, String), Vec<(String, u32)>> = HashMap::new();
    for f in &table.fns {
        let path = files[f.file].path;
        if super::is_bin_path(path) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let impl_type = files[f.file].ctx.fns[f.fn_idx].impl_type.clone();
        let mut scan = LockScan {
            impl_type,
            live: Vec::new(),
            stmt_locks: Vec::new(),
            poison: Vec::new(),
            io: Vec::new(),
            pairs: Vec::new(),
        };
        scan.block(body);
        for (line, msg) in scan.poison {
            out.push(diag(path, line, format!("in `{}`: {msg}", f.name)));
        }
        for (line, msg) in scan.io {
            out.push(diag(path, line, format!("in `{}`: {msg}", f.name)));
        }
        for (first, second, line) in scan.pairs {
            orders.entry((first, second)).or_default().push((path.to_string(), line));
        }
    }
    // Inconsistent global ordering: both (a,b) and (b,a) observed.
    for ((a, b), sites) in &orders {
        if a < b && orders.contains_key(&(b.clone(), a.clone())) {
            let reversed = &orders[&(b.clone(), a.clone())];
            for (file, line) in sites.iter().chain(reversed) {
                out.push(diag(
                    file,
                    *line,
                    format!(
                        "locks `{a}` and `{b}` are acquired in inconsistent order \
                         across the workspace (deadlock risk); pick one global order"
                    ),
                ));
            }
        }
    }
    out
}

fn diag(path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        file: path.to_string(),
        line,
        rule: RuleId::R9,
        severity: RuleId::R9.severity(),
        message,
    }
}

/// One live, bound guard.
struct Guard {
    /// The `let` binding name.
    name: String,
    /// The lock's identity.
    id: String,
}

struct LockScan {
    impl_type: Option<String>,
    live: Vec<Guard>,
    /// Acquisitions seen while scanning the current statement
    /// (unbound temporaries).
    stmt_locks: Vec<String>,
    poison: Vec<(u32, String)>,
    io: Vec<(u32, String)>,
    /// (first held, then acquired, line of the second acquisition).
    pairs: Vec<(String, String, u32)>,
}

impl LockScan {
    fn block(&mut self, b: &Block) {
        let scope = self.live.len();
        for s in &b.stmts {
            self.stmt_locks.clear();
            match s {
                Stmt::Let { names, init, .. } => {
                    if let Some(e) = init {
                        self.expr(e);
                        if let Some(id) = self.lock_id_of(e) {
                            if let [name] = names.as_slice() {
                                self.live.push(Guard { name: name.clone(), id });
                            }
                        }
                    }
                }
                Stmt::Assign { value, .. } => self.expr(value),
                Stmt::Expr { value, .. } => {
                    // `drop(g)` releases a bound guard early.
                    if let Expr::Call { path, args, .. } = value {
                        if path.last().is_some_and(|n| n == "drop") {
                            if let [Expr::Var(name, _)] = args.as_slice() {
                                self.live.retain(|g| &g.name != name);
                                continue;
                            }
                        }
                    }
                    self.expr(value);
                }
                Stmt::Return { value, .. } => {
                    if let Some(e) = value {
                        self.expr(e);
                    }
                }
                Stmt::For { iter, body, .. } => {
                    self.expr(iter);
                    self.block(body);
                }
                Stmt::Loop { body } => self.block(body),
                Stmt::Block(inner) => self.block(inner),
                Stmt::Opaque => {}
            }
        }
        self.live.truncate(scope);
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Method { recv, name, args, line } => {
                if matches!(name.as_str(), "unwrap" | "expect") && is_lock_acq(recv) {
                    self.poison.push((
                        *line,
                        "lock acquired with `.unwrap()`/`.expect()` — a poisoned mutex \
                         becomes a crash loop; use `unwrap_or_else(PoisonError::into_inner)` \
                         or surface the `Err`"
                            .to_string(),
                    ));
                }
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                if name == "lock" {
                    let id = self.chain_id(recv);
                    self.acquire(id, *line);
                } else if IO_METHODS.contains(&name.as_str()) {
                    self.io_call(recv, name, *line);
                }
            }
            Expr::Call { path, args, line } => {
                for a in args {
                    self.expr(a);
                }
                if path.last().is_some_and(|n| n == "lock") {
                    if let [arg] = args.as_slice() {
                        let id = self.chain_id(arg);
                        self.acquire(id, *line);
                    }
                }
            }
            Expr::Field { recv, .. } => self.expr(recv),
            Expr::Index { recv, index, .. } => {
                self.expr(recv);
                self.expr(index);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Try { inner, .. } => self.expr(inner),
            Expr::Struct { fields, .. } => {
                for (_, v) in fields {
                    self.expr(v);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for i in items {
                    self.expr(i);
                }
            }
            Expr::Closure { body, .. } => self.expr(body),
            Expr::If { cond, then, else_, .. } => {
                self.expr(cond);
                self.block(then);
                if let Some(b) = else_ {
                    self.block(b);
                }
            }
            Expr::Match { scrutinee, arms, .. } => {
                self.expr(scrutinee);
                for Arm { guard, body, .. } in arms {
                    if let Some(g) = guard {
                        self.expr(g);
                    }
                    self.expr(body);
                }
            }
            Expr::BlockExpr(b) => self.block(b),
            Expr::Macro { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Lit(_) | Expr::Var(..) | Expr::Path(..) | Expr::Opaque(_) => {}
        }
    }

    fn acquire(&mut self, id: String, line: u32) {
        for g in &self.live {
            if g.id != id {
                self.pairs.push((g.id.clone(), id.clone(), line));
            }
        }
        for t in &self.stmt_locks {
            if *t != id {
                self.pairs.push((t.clone(), id.clone(), line));
            }
        }
        self.stmt_locks.push(id);
    }

    fn io_call(&mut self, recv: &Expr, name: &str, line: u32) {
        if self.live.is_empty() && self.stmt_locks.is_empty() {
            return;
        }
        // I/O *through* the guarded resource is the point of the lock.
        if let Some(root) = recv.root_var() {
            if self.live.iter().any(|g| g.name == root) {
                return;
            }
        }
        let held = self
            .live
            .last()
            .map(|g| g.id.clone())
            .or_else(|| self.stmt_locks.last().cloned())
            .unwrap_or_default();
        self.io.push((
            line,
            format!(
                "I/O call `{name}` while holding lock `{held}` — \
                 release the guard before blocking on a peer"
            ),
        ));
    }

    /// Is this `let` initializer a lock acquisition (possibly wrapped in
    /// `unwrap`/`expect`/`unwrap_or_else`/`map_err`/`?`)? Returns the
    /// lock's identity when so — the binding becomes a live guard.
    fn lock_id_of(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Method { recv, name, .. } if name == "lock" => Some(self.chain_id(recv)),
            Expr::Call { path, args, .. }
                if path.last().is_some_and(|n| n == "lock") && args.len() == 1 =>
            {
                Some(self.chain_id(&args[0]))
            }
            Expr::Method { recv, name, .. }
                if matches!(
                    name.as_str(),
                    "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or" | "map_err"
                ) =>
            {
                self.lock_id_of(recv)
            }
            Expr::Try { inner, .. } => self.lock_id_of(inner),
            _ => None,
        }
    }

    /// The lock identity of a receiver/argument chain: its last field
    /// segment, or the variable itself, with `self` resolved to the
    /// `impl` type.
    fn chain_id(&self, e: &Expr) -> String {
        match e {
            Expr::Field { name, .. } => name.clone(),
            Expr::Var(n, _) if n == "self" => {
                self.impl_type.clone().unwrap_or_else(|| n.clone())
            }
            Expr::Var(n, _) => n.clone(),
            Expr::Index { recv, .. }
            | Expr::Method { recv, .. }
            | Expr::Try { inner: recv, .. } => self.chain_id(recv),
            Expr::Call { path, .. } | Expr::Path(path, _) => {
                path.last().cloned().unwrap_or_else(|| "lock".into())
            }
            _ => "lock".into(),
        }
    }
}

/// Is this expression a lock acquisition (method or helper form)?
fn is_lock_acq(e: &Expr) -> bool {
    match e {
        Expr::Method { name, .. } => name == "lock",
        Expr::Call { path, args, .. } => {
            path.last().is_some_and(|n| n == "lock") && args.len() == 1
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::{lex, Token};
    use crate::symbols::SymbolTable;

    struct Owned {
        path: String,
        crate_name: String,
        tokens: Vec<Token>,
        ctx: crate::context::FileContext,
    }

    fn prep(files: &[(&str, &str)]) -> Vec<Owned> {
        files
            .iter()
            .map(|(path, src)| {
                let tokens = lex(src);
                let ctx = context::analyze(&tokens);
                Owned {
                    path: (*path).to_string(),
                    crate_name: "serve".to_string(),
                    tokens,
                    ctx,
                }
            })
            .collect()
    }

    fn run(owned: &[Owned]) -> Vec<Diagnostic> {
        let data: Vec<FileData<'_>> = owned
            .iter()
            .map(|o| FileData {
                path: &o.path,
                crate_name: &o.crate_name,
                tokens: &o.tokens,
                ctx: &o.ctx,
            })
            .collect();
        let table = SymbolTable::build(&data);
        rule_r9(&data, &table)
    }

    #[test]
    fn lock_unwrap_is_poison_panic() {
        let owned = prep(&[(
            "crates/serve/src/state.rs",
            "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }\n",
        )]);
        let d = run(&owned);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("poisoned"));
    }

    #[test]
    fn into_inner_recovery_is_clean() {
        let owned = prep(&[(
            "crates/serve/src/state.rs",
            "fn f(m: &Mutex<u32>) {\n\
                 let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
             }\n",
        )]);
        assert!(run(&owned).is_empty());
    }

    #[test]
    fn inconsistent_order_fires_at_both_sites() {
        let owned = prep(&[(
            "crates/serve/src/state.rs",
            "impl S {\n\
                 fn ab(&self) {\n\
                     let a = lock(&self.alpha);\n\
                     let b = lock(&self.beta);\n\
                 }\n\
                 fn ba(&self) {\n\
                     let b = lock(&self.beta);\n\
                     let a = lock(&self.alpha);\n\
                 }\n\
             }\n",
        )]);
        let d = run(&owned);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.message.contains("inconsistent order")));
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        assert!(lines.contains(&4) && lines.contains(&8), "{lines:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let owned = prep(&[(
            "crates/serve/src/state.rs",
            "impl S {\n\
                 fn ab(&self) {\n\
                     let a = lock(&self.alpha);\n\
                     let b = lock(&self.beta);\n\
                 }\n\
                 fn ab2(&self) {\n\
                     let a = lock(&self.alpha);\n\
                     let b = lock(&self.beta);\n\
                 }\n\
             }\n",
        )]);
        assert!(run(&owned).is_empty());
    }

    #[test]
    fn scoped_guard_does_not_nest() {
        let owned = prep(&[(
            "crates/serve/src/state.rs",
            "impl S {\n\
                 fn f(&self) {\n\
                     { let a = lock(&self.alpha); a.get(); }\n\
                     let b = lock(&self.beta);\n\
                 }\n\
                 fn g(&self) {\n\
                     { let b = lock(&self.beta); b.get(); }\n\
                     let a = lock(&self.alpha);\n\
                 }\n\
             }\n",
        )]);
        assert!(run(&owned).is_empty(), "scoped guards release before the next lock");
    }

    #[test]
    fn io_under_lock_fires() {
        let owned = prep(&[(
            "crates/serve/src/server.rs",
            "fn f(m: &Mutex<u32>, stream: &mut TcpStream) {\n\
                 let g = lock(m);\n\
                 stream.write_all(b\"x\");\n\
             }\n",
        )]);
        let d = run(&owned);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("write_all"));
    }

    #[test]
    fn io_through_the_guard_is_exempt() {
        let owned = prep(&[(
            "crates/trace/src/subscriber.rs",
            "fn f(m: &Mutex<Out>) {\n\
                 let inner = lock(m);\n\
                 inner.out.write_all(b\"x\");\n\
             }\n",
        )]);
        assert!(run(&owned).is_empty());
    }

    #[test]
    fn drop_releases_early() {
        let owned = prep(&[(
            "crates/serve/src/server.rs",
            "fn f(m: &Mutex<u32>, stream: &mut TcpStream) {\n\
                 let g = lock(m);\n\
                 drop(g);\n\
                 stream.write_all(b\"x\");\n\
             }\n",
        )]);
        assert!(run(&owned).is_empty());
    }

    #[test]
    fn recv_timeout_under_lock_is_allowed() {
        let owned = prep(&[(
            "crates/serve/src/server.rs",
            "fn f(rx: &Mutex<Receiver<J>>) {\n\
                 let next = {\n\
                     let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                     guard.recv_timeout(POLL)\n\
                 };\n\
             }\n",
        )]);
        assert!(run(&owned).is_empty());
    }
}
