//! R8 — untrusted values must be validated before they reach the model.
//!
//! The sources, sanitizers, and sinks live in [`crate::dataflow`]; this
//! module is the thin harness that runs the engine over every
//! non-binary, non-test function in the workspace and shapes its
//! findings into diagnostics.

use crate::dataflow::{self, Summary};
use crate::diagnostics::{Diagnostic, RuleId};
use crate::symbols::{FileData, SymbolTable};

/// Runs the taint engine over every library fn; one diagnostic per sink
/// hit.
pub fn rule_r8(
    files: &[FileData<'_>],
    table: &SymbolTable,
    summaries: &[Summary],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &table.fns {
        let path = files[f.file].path;
        if super::is_bin_path(path) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        for finding in dataflow::check_fn(table, summaries, &f.crate_name, &f.param_names, body)
        {
            out.push(Diagnostic {
                file: path.to_string(),
                line: finding.line,
                rule: RuleId::R8,
                severity: RuleId::R8.severity(),
                message: format!("in `{}`: {}", f.name, finding.message),
            });
        }
    }
    out
}
