//! Workspace discovery: which `.rs` files get audited.
//!
//! The scan set is `crates/*/src/**/*.rs` plus a root `src/` if one exists.
//! `target/`, fixtures, and anything outside those roots are never touched.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file selected for auditing.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with forward slashes (diagnostic key).
    pub rel: String,
    /// Crate directory name under `crates/`, or `""` for root `src/`.
    pub crate_name: String,
}

/// Finds the workspace root: the nearest ancestor of `start` containing a
/// `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every auditable source file under `root`, sorted by relative
/// path for deterministic reports.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("audit root {} is not a directory", root.display()),
        ));
    }
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("audit root {} has no Cargo.toml", root.display()),
        ));
    }
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let src = crate_dir.join("src");
            if src.is_dir() {
                walk_rs(&src, root, &name, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, root, "", &mut out)?;
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Recursively gathers `.rs` files under `dir`.
fn walk_rs(dir: &Path, root: &Path, crate_name: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, crate_name, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile { abs: path, rel, crate_name: crate_name.to_string() });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root should exist above the crate");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn collects_sorted_rs_files_with_crate_names() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = collect_sources(&root).expect("scan succeeds");
        assert!(files.iter().any(|f| f.rel == "crates/audit/src/lexer.rs"));
        assert!(files.iter().all(|f| f.rel.ends_with(".rs")));
        assert!(files.windows(2).all(|w| w[0].rel < w[1].rel));
        let lexer = files.iter().find(|f| f.rel.ends_with("audit/src/lexer.rs")).expect("lexer listed");
        assert_eq!(lexer.crate_name, "audit");
        // Fixtures are never part of the scan set.
        assert!(files.iter().all(|f| !f.rel.contains("fixtures/")));
    }
}
