//! `nanocost-audit` — an in-tree static-analysis pass that enforces the
//! cost-model's correctness invariants.
//!
//! The pass lexes every `crates/*/src/**/*.rs` file with its own lightweight
//! Rust lexer (no dependencies), runs the per-file structural rules, then
//! builds a workspace-wide symbol table + call graph and runs the dataflow
//! rules over it:
//!
//! | rule | severity | invariant |
//! |------|----------|-----------|
//! | R1   | error    | no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code |
//! | R2   | error    | no direct `==`/`!=` comparison with floating-point operands |
//! | R3   | warning  | no bare numeric literals in model functions outside `const`/calibration code |
//! | R4   | warning  | public model functions take `nanocost-units` newtypes, not raw `f64` |
//! | R5   | warning  | every public model function cites the paper equation/figure/table it implements |
//! | R6   | warning  | no `println!`/`eprintln!`/`print!`/`eprint!` in library code; output goes through `nanocost-trace` or return values |
//! | R7   | warning  | `span!`/`event!`/metric-macro names in library code are static lowercase `snake_case` string literals |
//! | R8   | error    | untrusted values (JSON accessors, `std::env`, file reads) are validated before reaching unit constructors, model arithmetic, indexing, or allocation sizing |
//! | R9   | error    | lock discipline: no poison panics, consistent global acquisition order, no I/O under a guard |
//! | R10  | warning  | `core` fns whose docs lead with an equation citation reach matching `provenance!` emits, and emitting fns cite what they emit |
//!
//! Findings can be suppressed inline with a reasoned pragma
//! (`// nanocost-audit: allow(R3, reason = "…")`); a malformed pragma is
//! itself an error under the meta-rule `P0`, and a pragma rule that masked
//! no finding is reported stale under `P1` (an error with
//! `--strict-pragmas`). See the crate's `src/pragma.rs` for the grammar and
//! `README.md` § "Static analysis & lint policy" for the policy rationale.

pub mod context;
pub mod dataflow;
pub mod diagnostics;
pub mod lexer;
pub mod parse;
pub mod pragma;
pub mod rules;
pub mod symbols;
pub mod walk;

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;

use diagnostics::{sort_diagnostics, Diagnostic, RuleId, Severity};
use symbols::{FileData, SymbolTable};

/// Knobs for an audit run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuditOptions {
    /// Escalate stale-pragma findings (`P1`) from warning to error.
    pub strict_pragmas: bool,
}

/// One file's source, ready to audit.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Crate directory name under `crates/`.
    pub crate_name: String,
    /// File contents.
    pub source: String,
}

/// Audits a set of files as one workspace: per-file structural rules,
/// then the symbol-table dataflow rules (R8–R10), then suppression
/// accounting (`P0` malformed, `P1` stale). Returns diagnostics sorted
/// by file, line, rule.
pub fn audit_files(files: &[SourceFile], options: AuditOptions) -> Vec<Diagnostic> {
    // Phase 0: lex + structural context + pragmas, per file.
    let lexed: Vec<(Vec<lexer::Token>, context::FileContext)> = files
        .iter()
        .map(|f| {
            let tokens = lexer::lex(&f.source);
            let ctx = context::analyze(&tokens);
            (tokens, ctx)
        })
        .collect();
    let mut suppressions: Vec<pragma::Suppressions> =
        lexed.iter().map(|(tokens, _)| pragma::collect(tokens)).collect();
    let by_path: HashMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.rel.as_str(), i)).collect();

    // Phase 1: per-file structural rules.
    let mut raw: Vec<Diagnostic> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let (tokens, ctx) = &lexed[i];
        let input =
            rules::FileInput { path: &f.rel, crate_name: &f.crate_name, tokens, ctx };
        raw.extend(rules::run_all(&input));
    }

    // Phase 2: workspace dataflow rules over the symbol table.
    let data: Vec<FileData<'_>> = files
        .iter()
        .zip(&lexed)
        .map(|(f, (tokens, ctx))| FileData {
            path: &f.rel,
            crate_name: &f.crate_name,
            tokens,
            ctx,
        })
        .collect();
    let table = SymbolTable::build(&data);
    let summaries = dataflow::summarize(&table);
    raw.extend(rules::taint::rule_r8(&data, &table, &summaries));
    raw.extend(rules::locks::rule_r9(&data, &table));
    raw.extend(rules::provenance::rule_r10(&data, &table));

    // Phase 3: suppression with usage accounting.
    let mut diags: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            let Some(&i) = by_path.get(d.file.as_str()) else { return true };
            !suppressions[i].suppress(d.rule, d.line)
        })
        .collect();

    // Phase 4: pragma hygiene — P0 malformed, P1 stale.
    for (i, f) in files.iter().enumerate() {
        for (line, why) in &suppressions[i].malformed {
            diags.push(Diagnostic {
                file: f.rel.clone(),
                line: *line,
                rule: RuleId::P0,
                severity: RuleId::P0.severity(),
                message: format!("malformed nanocost-audit pragma: {why}"),
            });
        }
        for (line, stale_rules) in suppressions[i].stale() {
            let names: Vec<String> = stale_rules.iter().map(|r| r.to_string()).collect();
            let severity = if options.strict_pragmas {
                Severity::Error
            } else {
                RuleId::P1.severity()
            };
            diags.push(Diagnostic {
                file: f.rel.clone(),
                line,
                rule: RuleId::P1,
                severity,
                message: format!(
                    "stale suppression: {} matched no finding; remove the waiver",
                    names.join(", ")
                ),
            });
        }
    }
    sort_diagnostics(&mut diags);
    diags
}

/// Audits one file's source text in isolation (no cross-file resolution
/// beyond the file itself). Suppression pragmas are honored.
pub fn audit_source(rel_path: &str, crate_name: &str, source: &str) -> Vec<Diagnostic> {
    audit_files(
        &[SourceFile {
            rel: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            source: source.to_string(),
        }],
        AuditOptions::default(),
    )
}

/// Audits the whole workspace rooted at `root`. Returns diagnostics sorted
/// by file, line, rule.
pub fn audit_workspace(root: &Path, options: AuditOptions) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for file in walk::collect_sources(root)? {
        let source = fs::read_to_string(&file.abs)?;
        files.push(SourceFile { rel: file.rel, crate_name: file.crate_name, source });
    }
    Ok(audit_files(&files, options))
}

/// Outcome classification for exit-code purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No findings at all, or only warnings without `--deny`.
    Pass,
    /// Warnings present and `--deny` given.
    DeniedWarnings,
    /// At least one error-severity finding.
    Errors,
}

/// Decides the run verdict from the diagnostics and the `--deny` flag.
pub fn verdict(diags: &[Diagnostic], deny: bool) -> Verdict {
    if diags.iter().any(|d| d.severity == Severity::Error) {
        Verdict::Errors
    } else if deny && !diags.is_empty() {
        Verdict::DeniedWarnings
    } else {
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_findings_are_dropped() {
        let src = "fn f() { x.unwrap(); // nanocost-audit: allow(R1, reason = \"len checked\")\n}\n";
        assert!(audit_source("crates/fab/src/a.rs", "fab", src).is_empty());
    }

    #[test]
    fn unsuppressed_findings_survive() {
        let src = "fn f() { x.unwrap(); }\n";
        let diags = audit_source("crates/fab/src/a.rs", "fab", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::R1);
    }

    #[test]
    fn malformed_pragma_is_a_p0_error() {
        let src = "fn f() { // nanocost-audit: allow(R1)\n}\n";
        let diags = audit_source("crates/fab/src/a.rs", "fab", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::P0);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn stale_pragma_is_a_p1_warning() {
        let src = "fn f() { g(); // nanocost-audit: allow(R1, reason = \"was needed once\")\n}\n";
        let diags = audit_source("crates/fab/src/a.rs", "fab", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::P1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("R1"));
    }

    #[test]
    fn strict_pragmas_escalates_p1_to_error() {
        let src = "fn f() { g(); // nanocost-audit: allow(R1, reason = \"was needed once\")\n}\n";
        let files = [SourceFile {
            rel: "crates/fab/src/a.rs".into(),
            crate_name: "fab".into(),
            source: src.into(),
        }];
        let diags = audit_files(&files, AuditOptions { strict_pragmas: true });
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::P1);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn used_pragma_is_not_stale() {
        let src = "fn f() { x.unwrap(); // nanocost-audit: allow(R1, reason = \"shim\")\n}\n";
        assert!(audit_source("crates/fab/src/a.rs", "fab", src).is_empty());
    }

    #[test]
    fn cross_file_taint_is_reported() {
        let files = [
            SourceFile {
                rel: "crates/units/src/lib.rs".into(),
                crate_name: "units".into(),
                source: "impl Dollars { pub fn new(v: f64) -> Dollars { Dollars(v) } }\n".into(),
            },
            SourceFile {
                rel: "crates/serve/src/http.rs".into(),
                crate_name: "serve".into(),
                source: "fn handle(doc: &JsonValue) -> Dollars {\n\
                             let raw = doc.get(\"p\").and_then(JsonValue::as_f64).unwrap_or(0.0);\n\
                             Dollars::new(raw)\n\
                         }\n"
                    .into(),
            },
        ];
        let diags = audit_files(&files, AuditOptions::default());
        assert!(
            diags.iter().any(|d| d.rule == RuleId::R8 && d.file.contains("http.rs")),
            "{diags:?}"
        );
    }

    #[test]
    fn verdict_logic() {
        let warn = Diagnostic {
            file: "a.rs".into(),
            line: 1,
            rule: RuleId::R3,
            severity: Severity::Warning,
            message: String::new(),
        };
        let err = Diagnostic { rule: RuleId::R1, severity: Severity::Error, ..warn.clone() };
        assert_eq!(verdict(&[], true), Verdict::Pass);
        assert_eq!(verdict(&[warn.clone()], false), Verdict::Pass);
        assert_eq!(verdict(&[warn.clone()], true), Verdict::DeniedWarnings);
        assert_eq!(verdict(&[warn, err], false), Verdict::Errors);
    }
}
