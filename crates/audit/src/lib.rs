//! `nanocost-audit` — an in-tree static-analysis pass that enforces the
//! cost-model's correctness invariants.
//!
//! The pass lexes every `crates/*/src/**/*.rs` file with its own lightweight
//! Rust lexer (no dependencies) and checks six rules:
//!
//! | rule | severity | invariant |
//! |------|----------|-----------|
//! | R1   | error    | no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code |
//! | R2   | error    | no direct `==`/`!=` comparison with floating-point operands |
//! | R3   | warning  | no bare numeric literals in model functions outside `const`/calibration code |
//! | R4   | warning  | public model functions take `nanocost-units` newtypes, not raw `f64` |
//! | R5   | warning  | every public model function cites the paper equation/figure/table it implements |
//! | R6   | warning  | no `println!`/`eprintln!`/`print!`/`eprint!` in library code; output goes through `nanocost-trace` or return values |
//! | R7   | warning  | `span!`/`event!`/metric-macro names in library code are static lowercase `snake_case` string literals |
//!
//! Findings can be suppressed inline with a reasoned pragma
//! (`// nanocost-audit: allow(R3, reason = "…")`); a malformed pragma is
//! itself an error under the meta-rule `P0`. See the crate's `src/pragma.rs`
//! for the grammar and `README.md` § "Static analysis & lint policy" for
//! the policy rationale.

pub mod context;
pub mod diagnostics;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use diagnostics::{sort_diagnostics, Diagnostic, RuleId, Severity};

/// Audits one file's source text (already read) under its workspace-relative
/// path and crate name. Suppression pragmas are honored here.
pub fn audit_source(rel_path: &str, crate_name: &str, source: &str) -> Vec<Diagnostic> {
    let tokens = lexer::lex(source);
    let ctx = context::analyze(&tokens);
    let suppressions = pragma::collect(&tokens);
    let input = rules::FileInput { path: rel_path, crate_name, tokens: &tokens, ctx: &ctx };
    let mut diags: Vec<Diagnostic> = rules::run_all(&input)
        .into_iter()
        .filter(|d| !suppressions.allows(d.rule, d.line))
        .collect();
    for (line, why) in &suppressions.malformed {
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line: *line,
            rule: RuleId::P0,
            severity: RuleId::P0.severity(),
            message: format!("malformed nanocost-audit pragma: {why}"),
        });
    }
    diags
}

/// Audits the whole workspace rooted at `root`. Returns diagnostics sorted
/// by file, line, rule.
pub fn audit_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for file in walk::collect_sources(root)? {
        let source = fs::read_to_string(&file.abs)?;
        diags.extend(audit_source(&file.rel, &file.crate_name, &source));
    }
    sort_diagnostics(&mut diags);
    Ok(diags)
}

/// Outcome classification for exit-code purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No findings at all, or only warnings without `--deny`.
    Pass,
    /// Warnings present and `--deny` given.
    DeniedWarnings,
    /// At least one error-severity finding.
    Errors,
}

/// Decides the run verdict from the diagnostics and the `--deny` flag.
pub fn verdict(diags: &[Diagnostic], deny: bool) -> Verdict {
    if diags.iter().any(|d| d.severity == Severity::Error) {
        Verdict::Errors
    } else if deny && !diags.is_empty() {
        Verdict::DeniedWarnings
    } else {
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_findings_are_dropped() {
        let src = "fn f() { x.unwrap(); // nanocost-audit: allow(R1, reason = \"len checked\")\n}\n";
        assert!(audit_source("crates/fab/src/a.rs", "fab", src).is_empty());
    }

    #[test]
    fn unsuppressed_findings_survive() {
        let src = "fn f() { x.unwrap(); }\n";
        let diags = audit_source("crates/fab/src/a.rs", "fab", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::R1);
    }

    #[test]
    fn malformed_pragma_is_a_p0_error() {
        let src = "fn f() { // nanocost-audit: allow(R1)\n}\n";
        let diags = audit_source("crates/fab/src/a.rs", "fab", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::P0);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn verdict_logic() {
        let warn = Diagnostic {
            file: "a.rs".into(),
            line: 1,
            rule: RuleId::R3,
            severity: Severity::Warning,
            message: String::new(),
        };
        let err = Diagnostic { rule: RuleId::R1, severity: Severity::Error, ..warn.clone() };
        assert_eq!(verdict(&[], true), Verdict::Pass);
        assert_eq!(verdict(&[warn.clone()], false), Verdict::Pass);
        assert_eq!(verdict(&[warn.clone()], true), Verdict::DeniedWarnings);
        assert_eq!(verdict(&[warn, err], false), Verdict::Errors);
    }
}
