//! Command-line front-end for the `nanocost-audit` static-analysis pass.
//!
//! ```text
//! nanocost-audit [--root DIR] [--format text|json] [--deny]
//!                [--strict-pragmas] [--list-rules] [--explain RULE]
//! ```
//!
//! Exit codes: 0 clean (warnings allowed unless `--deny`), 1 findings failed
//! the run, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use nanocost_audit::diagnostics::{render_json_report, Severity, EXPLANATIONS};
use nanocost_audit::{audit_workspace, verdict, walk, AuditOptions, Verdict};

/// Parsed command-line options.
struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny: bool,
    strict_pragmas: bool,
    list_rules: bool,
    explain: Option<String>,
    help: bool,
}

const USAGE: &str = "usage: nanocost-audit [--root DIR] [--format text|json] [--deny] \
                     [--strict-pragmas] [--list-rules] [--explain RULE]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        deny: false,
        strict_pragmas: false,
        list_rules: false,
        explain: None,
        help: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                other => {
                    return Err(format!(
                        "--format must be `text` or `json`, got `{}`",
                        other.unwrap_or("<none>")
                    ))
                }
            },
            "--deny" => opts.deny = true,
            "--strict-pragmas" => opts.strict_pragmas = true,
            "--list-rules" => opts.list_rules = true,
            "--explain" => {
                let rule = it.next().ok_or("--explain requires a rule id (e.g. R8)")?;
                opts.explain = Some(rule.clone());
            }
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Prints the full explanation card for one rule (R1–R10, P0, P1).
fn explain(rule: &str) -> Result<(), String> {
    let wanted = rule.to_ascii_uppercase();
    let entry = EXPLANATIONS
        .iter()
        .find(|e| e.rule.to_string() == wanted)
        .ok_or_else(|| format!("unknown rule `{rule}`; try --list-rules"))?;
    println!("{} ({}): {}", entry.rule, entry.rule.severity(), entry.summary);
    println!();
    println!("why: {}", entry.rationale);
    println!();
    println!("example:");
    for line in entry.example.lines() {
        println!("    {line}");
    }
    println!();
    println!("fix: {}", entry.fix);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if let Some(rule) = &opts.explain {
        return match explain(rule) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        };
    }

    if opts.list_rules {
        for e in EXPLANATIONS {
            println!("{} ({}): {}", e.rule, e.rule.severity(), e.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("nanocost-audit: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "nanocost-audit: no workspace Cargo.toml found above {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let options = AuditOptions { strict_pragmas: opts.strict_pragmas };
    let diags = match audit_workspace(&root, options) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("nanocost-audit: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        print!("{}", render_json_report(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render_text());
        }
        let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
        let warnings = diags.len() - errors;
        println!(
            "nanocost-audit: {} error{}, {} warning{}",
            errors,
            if errors == 1 { "" } else { "s" },
            warnings,
            if warnings == 1 { "" } else { "s" },
        );
    }

    match verdict(&diags, opts.deny) {
        Verdict::Pass => ExitCode::SUCCESS,
        Verdict::DeniedWarnings | Verdict::Errors => ExitCode::FAILURE,
    }
}
