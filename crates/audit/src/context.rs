//! A structural pass over the token stream.
//!
//! The audit rules need a little more than raw tokens: which regions are
//! test code (`#[cfg(test)]` modules, `#[test]` functions), which token
//! spans belong to `const`/`static` items, and where each `fn` item sits
//! (name, visibility, parameters, attached doc comment, body span). This
//! module computes exactly that, with a brace-matching scan — no full
//! parser, but faithful enough for the workspace's idiomatic Rust.

use crate::lexer::{Token, TokenKind};

/// One parameter of a function item.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (first identifier of the pattern).
    pub name: String,
    /// Line the parameter starts on.
    pub line: u32,
    /// True when the declared type is exactly the scalar `f64`
    /// (references/slices/generics of `f64` are not "raw").
    pub raw_f64: bool,
}

/// One `fn` item found in the file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub tok: usize,
    /// Declared with `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Concatenated doc-comment text attached to the item.
    pub doc: String,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Token-index span of the body `{ … }`, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// True when the fn lives in test code.
    pub in_test: bool,
    /// Self type of the enclosing `impl` block, if any (`impl Foo` or
    /// `impl Trait for Foo` both record `Foo`).
    pub impl_type: Option<String>,
    /// True when the declared return type mentions `Result` or `Option`
    /// (the fallibility signal the taint pass classifies validators by).
    pub ret_result: bool,
}

/// Structural facts about one lexed file.
#[derive(Debug, Default)]
pub struct FileContext {
    /// Token-index spans of test regions (`#[cfg(test)]` mods/impls, `#[test]` fns).
    pub test_spans: Vec<(usize, usize)>,
    /// Token-index spans of `const`/`static` items.
    pub const_spans: Vec<(usize, usize)>,
    /// Every `fn` item, including test fns (flagged).
    pub fns: Vec<FnInfo>,
    /// `impl` blocks: body token span plus the self-type name.
    pub impl_spans: Vec<(usize, usize, String)>,
}

impl FileContext {
    /// Is token `idx` inside test code?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Is token `idx` inside a `const`/`static` item?
    pub fn in_const(&self, idx: usize) -> bool {
        self.const_spans.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Is token `idx` inside any function body?
    pub fn in_fn_body(&self, idx: usize) -> bool {
        self.fns
            .iter()
            .any(|f| matches!(f.body, Some((a, b)) if idx > a && idx < b))
    }
}

/// Index of the token matching the opening brace at `open`, or the last
/// token if unbalanced.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Next non-trivia token index at or after `i`.
fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if !tokens[i].is_trivia() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Previous non-trivia token index strictly before `i`.
fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&k| !tokens[k].is_trivia())
}

/// Is the `impl` at token `i` an item (an impl block), as opposed to an
/// `impl Trait` type position inside a signature?
fn impl_is_item(tokens: &[Token], i: usize) -> bool {
    match prev_code(tokens, i) {
        None => true,
        Some(k) => match &tokens[k].kind {
            TokenKind::Punct(p) => matches!(p.as_str(), "}" | "{" | ";" | "]"),
            TokenKind::Ident(id) => matches!(id.as_str(), "unsafe" | "pub"),
            _ => false,
        },
    }
}

/// Extracts the self-type name of an impl block starting at token `i`
/// (the `impl` keyword) and the token span of its `{ … }` body.
/// `impl Trait for Foo` records `Foo`; generics are skipped.
fn impl_header(tokens: &[Token], i: usize) -> Option<(usize, usize, String)> {
    let mut angle = 0i32;
    let mut names: Vec<String> = Vec::new();
    let mut k = i + 1;
    while k < tokens.len() {
        match &tokens[k].kind {
            TokenKind::Punct(p) if p == "<" => angle += 1,
            TokenKind::Punct(p) if p == ">" => angle -= 1,
            TokenKind::Punct(p) if p == "->" => {}
            TokenKind::Punct(p) if p == "{" && angle <= 0 => {
                let name = names.last().cloned().unwrap_or_default();
                return Some((k, matching_brace(tokens, k), name));
            }
            TokenKind::Punct(p) if p == ";" && angle <= 0 => return None,
            TokenKind::Ident(id) if id == "for" && angle <= 0 => names.clear(),
            TokenKind::Ident(id) if id == "where" && angle <= 0 => {
                // Type names are settled before the where clause; scan on
                // for the body brace only.
                let name = names.last().cloned().unwrap_or_default();
                let mut m = k;
                while m < tokens.len() && !tokens[m].is_punct("{") {
                    if tokens[m].is_punct(";") {
                        return None;
                    }
                    m += 1;
                }
                if m < tokens.len() {
                    return Some((m, matching_brace(tokens, m), name));
                }
                return None;
            }
            TokenKind::Ident(id) if angle <= 0 => names.push(id.clone()),
            _ => {}
        }
        k += 1;
    }
    None
}

/// Builds the structural context for a lexed file.
pub fn analyze(tokens: &[Token]) -> FileContext {
    let mut ctx = FileContext::default();
    let mut pending_doc: Vec<String> = Vec::new();
    let mut pending_test = false;
    let mut pending_pub = false;
    let mut i = 0usize;

    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::DocComment(text) => {
                pending_doc.push(text.clone());
                i += 1;
            }
            // Inner docs describe the enclosing module; they neither
            // attach to nor separate the next item's outer doc.
            TokenKind::InnerDoc(_) | TokenKind::Comment(_) => i += 1,
            TokenKind::Punct(p) if p == "#" => {
                // Attribute: `#[ … ]` or `#![ … ]`.
                let mut j = i + 1;
                if let Some(k) = next_code(tokens, j) {
                    if tokens[k].is_punct("!") {
                        j = k + 1;
                    }
                }
                if let Some(open) = next_code(tokens, j).filter(|&k| tokens[k].is_punct("[")) {
                    let mut depth = 0usize;
                    let mut end = open;
                    let mut saw_test = false;
                    let mut saw_not = false;
                    for (k, t) in tokens.iter().enumerate().skip(open) {
                        match &t.kind {
                            TokenKind::Punct(p) if p == "[" => depth += 1,
                            TokenKind::Punct(p) if p == "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    end = k;
                                    break;
                                }
                            }
                            TokenKind::Ident(id) if id == "test" => saw_test = true,
                            TokenKind::Ident(id) if id == "not" => saw_not = true,
                            _ => {}
                        }
                    }
                    if saw_test && !saw_not {
                        pending_test = true;
                    }
                    i = end + 1;
                } else {
                    i += 1;
                }
            }
            TokenKind::Ident(id) if id == "pub" => {
                pending_pub = true;
                // Skip `pub(crate)` / `pub(in …)` qualifiers.
                if let Some(open) = next_code(tokens, i + 1).filter(|&k| tokens[k].is_punct("(")) {
                    let mut depth = 0usize;
                    let mut k = open;
                    while k < tokens.len() {
                        if tokens[k].is_punct("(") {
                            depth += 1;
                        } else if tokens[k].is_punct(")") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    i = k + 1;
                } else {
                    i += 1;
                }
            }
            TokenKind::Ident(id) if id == "fn" => {
                let fn_line = tokens[i].line;
                let name = next_code(tokens, i + 1)
                    .and_then(|k| match &tokens[k].kind {
                        TokenKind::Ident(n) => Some(n.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                // Find the parameter list, skipping generics.
                let mut k = i + 1;
                let mut angle = 0i32;
                let mut params_span: Option<(usize, usize)> = None;
                while k < tokens.len() {
                    match &tokens[k].kind {
                        TokenKind::Punct(p) if p == "<" => angle += 1,
                        TokenKind::Punct(p) if p == ">" => angle -= 1,
                        TokenKind::Punct(p) if p == "(" && angle <= 0 => {
                            let mut depth = 0usize;
                            let mut close = k;
                            for (m, t) in tokens.iter().enumerate().skip(k) {
                                if t.is_punct("(") {
                                    depth += 1;
                                } else if t.is_punct(")") {
                                    depth -= 1;
                                    if depth == 0 {
                                        close = m;
                                        break;
                                    }
                                }
                            }
                            params_span = Some((k, close));
                            break;
                        }
                        TokenKind::Punct(p) if p == "{" || p == ";" => break,
                        _ => {}
                    }
                    k += 1;
                }
                // An unclosed `(` leaves `b == a`; clamp so malformed
                // input degrades to "no params" instead of panicking.
                let params = params_span
                    .map(|(a, b)| parse_params(&tokens[(a + 1).min(b)..b]))
                    .unwrap_or_default();
                // Find the body `{` (or `;` for a declaration) after params.
                let search_from = params_span.map(|(_, b)| b + 1).unwrap_or(i + 1);
                let mut body = None;
                let mut m = search_from;
                while m < tokens.len() {
                    if tokens[m].is_punct("{") {
                        body = Some((m, matching_brace(tokens, m)));
                        break;
                    }
                    if tokens[m].is_punct(";") {
                        break;
                    }
                    m += 1;
                }
                let in_test = pending_test || ctx.in_test(i);
                if pending_test {
                    if let Some((a, b)) = body {
                        ctx.test_spans.push((a, b));
                    }
                }
                // Return type: tokens between the param list and the body
                // brace (or `;`); `Result`/`Option` anywhere in it marks
                // the fn fallible.
                let ret_end = body.map(|(a, _)| a).unwrap_or(m);
                let ret_result = tokens[search_from.min(ret_end)..ret_end]
                    .iter()
                    .any(|t| t.is_ident("Result") || t.is_ident("Option"));
                let impl_type = ctx
                    .impl_spans
                    .iter()
                    .rev()
                    .find(|&&(a, b, _)| i > a && i < b)
                    .map(|(_, _, n)| n.clone())
                    .filter(|n| !n.is_empty());
                ctx.fns.push(FnInfo {
                    name,
                    line: fn_line,
                    tok: i,
                    is_pub: pending_pub,
                    doc: pending_doc.join("\n"),
                    params,
                    body,
                    in_test,
                    impl_type,
                    ret_result,
                });
                pending_doc.clear();
                pending_test = false;
                pending_pub = false;
                i += 1;
            }
            TokenKind::Ident(id) if id == "impl" && impl_is_item(tokens, i) => {
                if let Some((open, close, name)) = impl_header(tokens, i) {
                    ctx.impl_spans.push((open, close, name));
                    if pending_test {
                        ctx.test_spans.push((open, close));
                    }
                }
                pending_doc.clear();
                pending_test = false;
                pending_pub = false;
                i += 1;
            }
            TokenKind::Ident(id) if id == "mod" || id == "impl" || id == "trait" => {
                if pending_test {
                    // Mark the whole `{ … }` block as test code.
                    let mut k = i + 1;
                    while k < tokens.len() && !tokens[k].is_punct("{") && !tokens[k].is_punct(";") {
                        k += 1;
                    }
                    if k < tokens.len() && tokens[k].is_punct("{") {
                        ctx.test_spans.push((k, matching_brace(tokens, k)));
                    }
                }
                pending_doc.clear();
                pending_test = false;
                pending_pub = false;
                i += 1;
            }
            TokenKind::Ident(id) if id == "const" || id == "static" => {
                // `const fn` is a function modifier, not an item.
                let is_fn = next_code(tokens, i + 1)
                    .map(|k| tokens[k].is_ident("fn") || tokens[k].is_ident("unsafe"))
                    .unwrap_or(false);
                if is_fn {
                    i += 1;
                    continue;
                }
                // Item: spans to the first `;` outside nesting.
                let start = i;
                let mut depth = 0i64;
                let mut k = i + 1;
                while k < tokens.len() {
                    match &tokens[k].kind {
                        TokenKind::Punct(p) if p == "{" || p == "(" || p == "[" => depth += 1,
                        TokenKind::Punct(p) if p == "}" || p == ")" || p == "]" => depth -= 1,
                        TokenKind::Punct(p) if p == ";" && depth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                ctx.const_spans.push((start, k));
                pending_doc.clear();
                pending_test = false;
                pending_pub = false;
                i = k + 1;
            }
            TokenKind::Punct(p) if p == ";" || p == "}" => {
                pending_doc.clear();
                pending_test = false;
                pending_pub = false;
                i += 1;
            }
            TokenKind::Ident(id)
                if matches!(id.as_str(), "struct" | "enum" | "use" | "type" | "let") =>
            {
                pending_doc.clear();
                // `pending_test` on a struct/enum applies to no region we track;
                // `pending_pub` is consumed by the item.
                pending_test = false;
                pending_pub = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    ctx
}

/// Splits a parameter token slice on top-level commas and extracts
/// name + raw-f64-ness per parameter.
fn parse_params(tokens: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    let mut parts: Vec<&[Token]> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct(p) if p == "(" || p == "[" || p == "<" || p == "{" => depth += 1,
            TokenKind::Punct(p) if p == ")" || p == "]" || p == ">" || p == "}" => depth -= 1,
            TokenKind::Punct(p) if p == "," && depth <= 0 => {
                parts.push(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < tokens.len() {
        parts.push(&tokens[start..]);
    }
    for part in parts {
        let code: Vec<&Token> = part.iter().filter(|t| !t.is_trivia()).collect();
        if code.is_empty() {
            continue;
        }
        // Name: first identifier that is not a pattern keyword.
        let name = code
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::Ident(id) if id != "mut" && id != "ref" => Some(id.clone()),
                _ => None,
            })
            .unwrap_or_default();
        if name == "self" {
            continue;
        }
        // Type: everything after the first top-level `:`.
        let colon = code.iter().position(|t| t.is_punct(":"));
        let raw_f64 = colon
            .map(|c| {
                let ty: Vec<&&Token> = code[c + 1..].iter().collect();
                ty.len() == 1 && ty[0].is_ident("f64")
            })
            .unwrap_or(false);
        params.push(Param { name, line: code[0].line, raw_f64 });
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of(src: &str) -> FileContext {
        analyze(&lex(src))
    }

    #[test]
    fn finds_pub_fn_with_doc_and_params() {
        let src = "/// Implements eq. (3).\npub fn cost(lambda: f64, sd: &f64, xs: &[f64]) -> f64 { 0.0 }\n";
        let ctx = ctx_of(src);
        assert_eq!(ctx.fns.len(), 1);
        let f = &ctx.fns[0];
        assert_eq!(f.name, "cost");
        assert!(f.is_pub);
        assert!(f.doc.contains("eq. (3)"));
        assert_eq!(f.params.len(), 3);
        assert!(f.params[0].raw_f64);
        assert!(!f.params[1].raw_f64, "&f64 is not raw");
        assert!(!f.params[2].raw_f64, "&[f64] is not raw");
    }

    #[test]
    fn cfg_test_mod_is_a_test_span() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n";
        let ctx = ctx_of(src);
        let toks = lex(src);
        let unwrap_idx = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(ctx.in_test(unwrap_idx));
        assert_eq!(ctx.fns.len(), 2);
        assert!(!ctx.fns[0].in_test);
        assert!(ctx.fns[1].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nmod live { fn f() {} }\n";
        let ctx = ctx_of(src);
        assert!(!ctx.fns[0].in_test);
    }

    #[test]
    fn test_attribute_marks_fn_body() {
        let src = "#[test]\nfn check() { v.unwrap(); }\n";
        let ctx = ctx_of(src);
        let toks = lex(src);
        let unwrap_idx = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(ctx.in_test(unwrap_idx));
    }

    #[test]
    fn const_items_are_spanned() {
        let src = "const K: f64 = 0.123;\nfn f() { let x = 0.456; }\n";
        let ctx = ctx_of(src);
        let toks = lex(src);
        let k123 = toks
            .iter()
            .position(|t| matches!(&t.kind, TokenKind::Float(s) if s == "0.123"))
            .unwrap();
        let k456 = toks
            .iter()
            .position(|t| matches!(&t.kind, TokenKind::Float(s) if s == "0.456"))
            .unwrap();
        assert!(ctx.in_const(k123));
        assert!(!ctx.in_const(k456));
        assert!(ctx.in_fn_body(k456));
    }

    #[test]
    fn const_fn_is_a_function_not_a_const_item() {
        let ctx = ctx_of("pub const fn half(x: f64) -> f64 { x * 0.5 }\n");
        assert_eq!(ctx.fns.len(), 1);
        assert!(ctx.fns[0].is_pub);
        assert!(ctx.const_spans.is_empty());
    }

    #[test]
    fn generic_fn_params_are_found() {
        let ctx = ctx_of("pub fn eval<F: Fn(f64) -> f64>(f: F, x0: f64) {}\n");
        assert_eq!(ctx.fns[0].params.len(), 2);
        assert_eq!(ctx.fns[0].params[1].name, "x0");
        assert!(ctx.fns[0].params[1].raw_f64);
        assert!(!ctx.fns[0].params[0].raw_f64);
    }

    #[test]
    fn methods_skip_self_param() {
        let ctx = ctx_of("impl T { pub fn go(&mut self, p: f64) {} }\n");
        assert_eq!(ctx.fns[0].params.len(), 1);
        assert_eq!(ctx.fns[0].params[0].name, "p");
    }

    #[test]
    fn impl_blocks_record_self_type() {
        let src = "impl Dollars { pub fn new(v: f64) -> Dollars { Dollars(v) } }\n\
                   impl std::fmt::Display for Dollars { fn fmt(&self) {} }\n";
        let ctx = ctx_of(src);
        assert_eq!(ctx.impl_spans.len(), 2);
        assert_eq!(ctx.impl_spans[0].2, "Dollars");
        assert_eq!(ctx.impl_spans[1].2, "Dollars", "impl Trait for T records T");
        assert_eq!(ctx.fns[0].impl_type.as_deref(), Some("Dollars"));
        assert_eq!(ctx.fns[1].impl_type.as_deref(), Some("Dollars"));
    }

    #[test]
    fn impl_trait_in_signature_is_not_an_impl_block() {
        let ctx = ctx_of("pub fn eval(f: impl Fn(f64) -> f64) -> f64 { f(0.0) }\n");
        assert!(ctx.impl_spans.is_empty());
        assert_eq!(ctx.fns.len(), 1);
        assert!(ctx.fns[0].impl_type.is_none());
    }

    #[test]
    fn return_type_fallibility_is_detected() {
        let src = "fn a() -> Result<f64, E> { Ok(0.0) }\n\
                   fn b() -> f64 { 0.0 }\n\
                   fn c(x: Result<u8, E>) -> f64 { 0.0 }\n";
        let ctx = ctx_of(src);
        assert!(ctx.fns[0].ret_result);
        assert!(!ctx.fns[1].ret_result);
        assert!(!ctx.fns[2].ret_result, "Result in params is not a fallible return");
    }
}
