//! A tolerant expression/statement parser over the lexer's token stream.
//!
//! The dataflow rules (R8 taint, R9 lock discipline, R10 provenance)
//! need more shape than a flat token stream: who calls what with which
//! arguments, where values are bound and rebound, which guards dominate
//! a use. This module parses each `fn` body (the token span recorded by
//! [`crate::context::FnInfo::body`]) into a small statement/expression
//! tree.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never loop.** Every construct the parser does not
//!    understand degrades to [`Expr::Opaque`] and the cursor always
//!    advances. The audit must survive any input the lexer survives.
//! 2. **Taint-faithful, not grammar-faithful.** Reference/deref/negation
//!    are transparent (they do not change what value flows); type
//!    ascriptions, generics and turbofish are skipped entirely. The tree
//!    is *not* a Rust AST — it is the projection of one that dataflow
//!    needs.
//! 3. Dependency-free, like the rest of the crate.

use crate::lexer::{Token, TokenKind};

/// A parsed `{ … }` body: statements in order. The final statement may
/// be a tail expression (see [`Stmt::Expr`]).
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
// Fields are documented on their variants; per-field docs would repeat
// the variant doc verbatim.
#[allow(missing_docs)]
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let pat = init;` — `names` are the pattern's binding identifiers.
    /// `else_diverges` marks `let … else { … }` (the else block must
    /// diverge, so bindings are refined afterwards).
    Let { names: Vec<String>, init: Option<Expr>, line: u32, else_diverges: bool },
    /// `lhs = value;` (or compound `lhs op= value`, with `value` already
    /// wrapped as a binary over the old value). `root` is the base
    /// variable of the assignment target, when identifiable.
    Assign { root: Option<String>, value: Expr, line: u32 },
    /// An expression statement; `tail` when it is the block's tail
    /// expression (no trailing semicolon — the block's value).
    Expr { value: Expr, tail: bool },
    /// `return e;` / bare `return;`.
    Return { value: Option<Expr>, line: u32 },
    /// `for pat in iter { … }` and `while let pat = iter { … }`:
    /// `bindings` take the taint of `iter`.
    For { bindings: Vec<String>, iter: Expr, body: Block, line: u32 },
    /// `loop { … }` / `while cond { … }` (the condition, if any, is a
    /// preceding [`Stmt::Expr`]).
    Loop { body: Block },
    /// A bare nested `{ … }` block.
    Block(Block),
    /// A nested item or anything unparseable, skipped whole.
    Opaque,
}

/// One expression. Lines are carried on the nodes diagnostics anchor to.
// Fields are documented on their variants; per-field docs would repeat
// the variant doc verbatim.
#[allow(missing_docs)]
#[derive(Debug, Clone)]
pub enum Expr {
    /// Any literal (number, string, char, bool).
    Lit(u32),
    /// A single-segment name.
    Var(String, u32),
    /// A multi-segment path used as a value (`JsonValue::as_f64` passed
    /// as a function reference, an enum variant, a const).
    Path(Vec<String>, u32),
    /// `path(args…)`.
    Call { path: Vec<String>, args: Vec<Expr>, line: u32 },
    /// `recv.name(args…)`.
    Method { recv: Box<Expr>, name: String, args: Vec<Expr>, line: u32 },
    /// `recv.name` (also tuple indices: `t.0` has name `"0"`).
    Field { recv: Box<Expr>, name: String, line: u32 },
    /// `recv[index]`.
    Index { recv: Box<Expr>, index: Box<Expr>, line: u32 },
    /// `lhs op rhs` for every binary operator (comparisons included).
    Binary { op: String, lhs: Box<Expr>, rhs: Box<Expr>, line: u32 },
    /// `inner?`.
    Try { inner: Box<Expr>, line: u32 },
    /// `Path { field: value, … }`; functional-update base is stored
    /// under the field name `".."`.
    Struct { path: Vec<String>, fields: Vec<(String, Expr)>, line: u32 },
    /// `(a, b, …)`.
    Tuple { items: Vec<Expr>, line: u32 },
    /// `[a, b]` or `[item; size]`.
    Array { items: Vec<Expr>, size: Option<Box<Expr>>, line: u32 },
    /// `|params| body` / `move |params| body`.
    Closure { params: Vec<String>, body: Box<Expr>, line: u32 },
    /// `if cond { … } else { … }`; `bindings` are the pattern names of
    /// an `if let pat = cond` form (they take `cond`'s taint inside
    /// `then`).
    If {
        cond: Box<Expr>,
        bindings: Vec<String>,
        then: Box<Block>,
        else_: Option<Box<Block>>,
        line: u32,
    },
    /// `match scrutinee { arms… }`.
    Match { scrutinee: Box<Expr>, arms: Vec<Arm>, line: u32 },
    /// A block in expression position (also `unsafe { … }`, loops in
    /// expression position).
    BlockExpr(Box<Block>),
    /// `name!(…)`: `args` are the comma-split parts parsed best-effort,
    /// `size_arg` the `; size` part of `vec![x; size]`, `idents` every
    /// identifier appearing inside (for provenance/emit scanning).
    Macro {
        name: String,
        args: Vec<Expr>,
        size_arg: Option<Box<Expr>>,
        idents: Vec<String>,
        line: u32,
    },
    /// Anything the parser could not shape.
    Opaque(u32),
}

/// One match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Pattern binding identifiers (lowercase-initial, non-path).
    pub bindings: Vec<String>,
    /// The `if` guard, when present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

impl Expr {
    /// The line this expression anchors diagnostics to.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Lit(l) | Expr::Var(_, l) | Expr::Path(_, l) | Expr::Opaque(l) => *l,
            Expr::Call { line, .. }
            | Expr::Method { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Try { line, .. }
            | Expr::Struct { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Closure { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::Macro { line, .. } => *line,
            Expr::BlockExpr(b) => b.stmts.first().map(stmt_line).unwrap_or(0),
        }
    }

    /// The base variable of a `recv.f1.f2[…]` chain, if the chain roots
    /// in a plain variable.
    pub fn root_var(&self) -> Option<&str> {
        match self {
            Expr::Var(n, _) => Some(n),
            Expr::Field { recv, .. } | Expr::Index { recv, .. } => recv.root_var(),
            Expr::Method { recv, .. } => recv.root_var(),
            Expr::Try { inner, .. } => inner.root_var(),
            _ => None,
        }
    }
}

fn stmt_line(s: &Stmt) -> u32 {
    match s {
        Stmt::Let { line, .. }
        | Stmt::Assign { line, .. }
        | Stmt::Return { line, .. }
        | Stmt::For { line, .. } => *line,
        Stmt::Expr { value, .. } => value.line(),
        Stmt::Loop { body } | Stmt::Block(body) => body.stmts.first().map(stmt_line).unwrap_or(0),
        Stmt::Opaque => 0,
    }
}

/// Parses the body span of one fn (`span` from [`crate::context::FnInfo`],
/// i.e. the token indices of `{` and its matching `}`).
pub fn parse_body(tokens: &[Token], span: (usize, usize)) -> Block {
    let (open, close) = span;
    if open >= tokens.len() || close > tokens.len() || open + 1 > close {
        return Block::default();
    }
    let mut p = Parser { toks: tokens, pos: open + 1, end: close };
    p.block_inner()
}

/// Visits every expression in a block, depth-first, including nested
/// blocks, closures, match arms, and macro arguments.
pub fn walk_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for s in &block.stmts {
        walk_stmt(s, f);
    }
}

fn walk_stmt(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Let { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        Stmt::Assign { value, .. } => walk_expr(value, f),
        Stmt::Expr { value, .. } => walk_expr(value, f),
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                walk_expr(e, f);
            }
        }
        Stmt::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Stmt::Loop { body } | Stmt::Block(body) => walk_block(body, f),
        Stmt::Opaque => {}
    }
}

/// Visits `e` and every sub-expression, depth-first (parent first).
pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Lit(_) | Expr::Var(..) | Expr::Path(..) | Expr::Opaque(_) => {}
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Method { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_expr(recv, f),
        Expr::Index { recv, index, .. } => {
            walk_expr(recv, f);
            walk_expr(index, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Try { inner, .. } => walk_expr(inner, f),
        Expr::Struct { fields, .. } => {
            for (_, v) in fields {
                walk_expr(v, f);
            }
        }
        Expr::Tuple { items, .. } => {
            for i in items {
                walk_expr(i, f);
            }
        }
        Expr::Array { items, size, .. } => {
            for i in items {
                walk_expr(i, f);
            }
            if let Some(s) = size {
                walk_expr(s, f);
            }
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::If { cond, then, else_, .. } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(b) = else_ {
                walk_block(b, f);
            }
        }
        Expr::Match { scrutinee, arms, .. } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        Expr::BlockExpr(b) => walk_block(b, f),
        Expr::Macro { args, size_arg, .. } => {
            for a in args {
                walk_expr(a, f);
            }
            if let Some(s) = size_arg {
                walk_expr(s, f);
            }
        }
    }
}

/// Keywords that start a nested item we skip whole.
const ITEM_KEYWORDS: &[&str] =
    &["fn", "struct", "enum", "impl", "mod", "trait", "type", "use", "static", "extern", "macro_rules"];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    end: usize,
}

impl<'a> Parser<'a> {
    fn skip_trivia(&mut self) {
        while self.pos < self.end && self.toks[self.pos].is_trivia() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<&'a Token> {
        self.skip_trivia();
        if self.pos < self.end {
            Some(&self.toks[self.pos])
        } else {
            None
        }
    }

    /// The next code token after the current one (for two-token lookahead).
    fn peek2(&mut self) -> Option<&'a Token> {
        self.skip_trivia();
        let mut i = self.pos + 1;
        while i < self.end {
            if !self.toks[i].is_trivia() {
                return Some(&self.toks[i]);
            }
            i += 1;
        }
        None
    }

    fn line(&mut self) -> u32 {
        self.peek().map(|t| t.line).unwrap_or(0)
    }

    fn at_punct(&mut self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(s))
    }

    fn at_ident(&mut self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips past the delimiter that matches the one at the cursor
    /// (which must be `(`, `[`, or `{`). Returns the index just past the
    /// closing delimiter (or `end` when unbalanced).
    fn skip_balanced(&mut self) {
        let (open, close) = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Punct(p)) if p == "(" => ("(", ")"),
            Some(TokenKind::Punct(p)) if p == "[" => ("[", "]"),
            Some(TokenKind::Punct(p)) if p == "{" => ("{", "}"),
            _ => {
                self.pos += 1;
                return;
            }
        };
        let mut depth = 0usize;
        while self.pos < self.end {
            let t = &self.toks[self.pos];
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Skips a balanced `<…>` generic-argument list starting at `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while self.pos < self.end {
            match &self.toks[self.pos].kind {
                TokenKind::Punct(p) if p == "<" || p == "<<" => {
                    depth += if p == "<<" { 2 } else { 1 };
                }
                TokenKind::Punct(p) if p == ">" || p == ">>" => {
                    depth -= if p == ">>" { 2 } else { 1 };
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                TokenKind::Punct(p) if p == ";" => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    // ---- statements -------------------------------------------------

    /// Parses statements up to (not past) the enclosing `}` / span end.
    fn block_inner(&mut self) -> Block {
        let mut stmts = Vec::new();
        loop {
            self.skip_trivia();
            if self.pos >= self.end || self.at_punct("}") {
                break;
            }
            let before = self.pos;
            stmts.push(self.stmt());
            if self.pos == before {
                // Hard guarantee of progress on anything unforeseen.
                self.pos += 1;
            }
        }
        Block { stmts }
    }

    /// Parses a `{ … }` block including its braces; tolerates a missing
    /// open brace by returning an empty block.
    fn braced_block(&mut self) -> Block {
        if !self.eat_punct("{") {
            return Block::default();
        }
        let b = self.block_inner();
        self.eat_punct("}");
        b
    }

    fn stmt(&mut self) -> Stmt {
        let line = self.line();
        if self.eat_punct(";") {
            return Stmt::Opaque;
        }
        // Attributes on statements: skip `#[…]`.
        while self.at_punct("#") {
            self.pos += 1;
            self.eat_punct("!");
            if self.at_punct("[") {
                self.skip_balanced();
            }
        }
        if self.at_ident("let") {
            return self.let_stmt(line);
        }
        if self.eat_ident("return") {
            let value = if self.at_punct(";") || self.at_punct("}") || self.pos >= self.end {
                None
            } else {
                Some(self.expr(false))
            };
            self.eat_punct(";");
            return Stmt::Return { value, line };
        }
        if self.eat_ident("while") {
            if self.eat_ident("let") {
                let bindings = self.pattern_until_eq();
                self.eat_punct("=");
                let iter = self.expr(true);
                let body = self.braced_block();
                return Stmt::For { bindings, iter, body, line };
            }
            let cond = self.expr(true);
            let body = self.braced_block();
            return Stmt::Loop {
                body: Block {
                    stmts: vec![Stmt::Expr { value: cond, tail: false }, Stmt::Block(body)],
                },
            };
        }
        if self.eat_ident("loop") {
            return Stmt::Loop { body: self.braced_block() };
        }
        if self.eat_ident("for") {
            let bindings = self.pattern_until_kw("in");
            self.eat_ident("in");
            let iter = self.expr(true);
            let body = self.braced_block();
            return Stmt::For { bindings, iter, body, line };
        }
        if self.eat_ident("break") || self.eat_ident("continue") {
            // Optional label / value; parse loosely to the `;`.
            while self.pos < self.end && !self.at_punct(";") && !self.at_punct("}") {
                self.pos += 1;
            }
            self.eat_punct(";");
            return Stmt::Opaque;
        }
        if let Some(t) = self.peek() {
            if let TokenKind::Ident(id) = &t.kind {
                if ITEM_KEYWORDS.contains(&id.as_str()) && !self.item_is_expr_head(id) {
                    self.skip_item();
                    return Stmt::Opaque;
                }
                if id == "const" && self.peek2().is_some_and(|t2| !t2.is_punct("{")) {
                    // `const X: T = …;` item (a `const { … }` block is an
                    // expression).
                    self.skip_item();
                    return Stmt::Opaque;
                }
            }
        }
        if self.at_punct("{") {
            return Stmt::Block(self.braced_block());
        }
        // Expression statement, possibly an assignment.
        let value = self.expr(false);
        if self.at_punct("=") {
            self.pos += 1;
            let rhs = self.expr(false);
            self.eat_punct(";");
            return Stmt::Assign { root: value.root_var().map(str::to_string), value: rhs, line };
        }
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="] {
            if self.at_punct(op) {
                self.pos += 1;
                let rhs = self.expr(false);
                self.eat_punct(";");
                let root = value.root_var().map(str::to_string);
                let combined = Expr::Binary {
                    op: op.trim_end_matches('=').to_string(),
                    lhs: Box::new(value),
                    rhs: Box::new(rhs),
                    line,
                };
                return Stmt::Assign { root, value: combined, line };
            }
        }
        if self.eat_punct(";") {
            return Stmt::Expr { value, tail: false };
        }
        let tail = self.pos >= self.end || self.at_punct("}");
        Stmt::Expr { value, tail }
    }

    /// Is this keyword actually an expression head here (`use` never is,
    /// but `struct`-like tokens never open exprs either; only `unsafe`
    /// would be, which is not in the item list)?
    fn item_is_expr_head(&mut self, _id: &str) -> bool {
        false
    }

    /// Skips one nested item: to its `;`, or past its matching `}`.
    fn skip_item(&mut self) {
        while self.pos < self.end {
            let t = &self.toks[self.pos];
            if t.is_punct(";") {
                self.pos += 1;
                return;
            }
            if t.is_punct("{") {
                self.skip_balanced();
                return;
            }
            if t.is_punct("}") {
                return;
            }
            self.pos += 1;
        }
    }

    fn let_stmt(&mut self, line: u32) -> Stmt {
        self.eat_ident("let");
        let names = self.pattern_until_eq();
        // Optional type ascription: skip to top-level `=` or `;`.
        if self.at_punct(":") {
            self.pos += 1;
            let mut angle = 0i32;
            while self.pos < self.end {
                match &self.toks[self.pos].kind {
                    TokenKind::Punct(p) if p == "<" || p == "<<" => {
                        angle += if p == "<<" { 2 } else { 1 }
                    }
                    TokenKind::Punct(p) if p == ">" || p == ">>" => {
                        angle -= if p == ">>" { 2 } else { 1 }
                    }
                    TokenKind::Punct(p) if p == "(" || p == "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    TokenKind::Punct(p) if (p == "=" || p == ";") && angle <= 0 => break,
                    _ => {}
                }
                self.pos += 1;
            }
        }
        let mut init = None;
        let mut else_diverges = false;
        if self.eat_punct("=") {
            init = Some(self.expr(false));
            if self.eat_ident("else") {
                // `let … else { diverge }`.
                let _ = self.braced_block();
                else_diverges = true;
            }
        }
        self.eat_punct(";");
        Stmt::Let { names, init, line, else_diverges }
    }

    /// Collects pattern binding names up to a top-level `=`, `:`, or `;`.
    fn pattern_until_eq(&mut self) -> Vec<String> {
        self.pattern_until(|t| t.is_punct("=") || t.is_punct(":") || t.is_punct(";"))
    }

    /// Collects pattern binding names up to the given keyword.
    fn pattern_until_kw(&mut self, kw: &str) -> Vec<String> {
        let kw = kw.to_string();
        self.pattern_until(move |t| t.is_ident(&kw) || t.is_punct("{") || t.is_punct(";"))
    }

    fn pattern_until(&mut self, stop: impl Fn(&Token) -> bool) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i64;
        while self.pos < self.end {
            self.skip_trivia();
            if self.pos >= self.end {
                break;
            }
            let t = &self.toks[self.pos];
            if depth == 0 && stop(t) {
                break;
            }
            match &t.kind {
                TokenKind::Punct(p) if p == "(" || p == "[" || p == "<" => depth += 1,
                TokenKind::Punct(p) if p == ")" || p == "]" || p == ">" => depth -= 1,
                TokenKind::Ident(id) => {
                    let keyword = matches!(id.as_str(), "mut" | "ref" | "box" | "_");
                    let upper = id.chars().next().is_some_and(char::is_uppercase);
                    let path_seg = self.pos + 1 < self.end
                        && self.toks[self.pos + 1].is_punct("::");
                    if !keyword && !upper && !path_seg {
                        names.push(id.clone());
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        names
    }

    // ---- expressions ------------------------------------------------

    /// `no_struct`: in `if`/`while`/`match`-head position, where `X { …`
    /// opens the block rather than a struct literal.
    fn expr(&mut self, no_struct: bool) -> Expr {
        self.range_expr(no_struct)
    }

    fn range_expr(&mut self, ns: bool) -> Expr {
        // Prefix range: `..x` / `..=x` / bare `..`.
        if self.at_punct("..") || self.at_punct("..=") {
            let line = self.line();
            self.pos += 1;
            if self.range_operand_follows() {
                let rhs = self.or_expr(ns);
                return Expr::Binary {
                    op: "..".into(),
                    lhs: Box::new(Expr::Lit(line)),
                    rhs: Box::new(rhs),
                    line,
                };
            }
            return Expr::Lit(line);
        }
        let lhs = self.or_expr(ns);
        if self.at_punct("..") || self.at_punct("..=") {
            let line = self.line();
            self.pos += 1;
            let rhs = if self.range_operand_follows() {
                self.or_expr(ns)
            } else {
                Expr::Lit(line)
            };
            return Expr::Binary { op: "..".into(), lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        lhs
    }

    /// Does an operand follow the `..` at the cursor (vs. `]`, `)`, `{`…)?
    fn range_operand_follows(&mut self) -> bool {
        match self.peek().map(|t| &t.kind) {
            None => false,
            Some(TokenKind::Punct(p)) => matches!(p.as_str(), "(" | "&" | "*" | "-" | "!"),
            Some(_) => true,
        }
    }

    fn or_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.and_expr(ns);
        while self.at_punct("||") {
            let line = self.line();
            self.pos += 1;
            let rhs = self.and_expr(ns);
            lhs = Expr::Binary { op: "||".into(), lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        lhs
    }

    fn and_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.cmp_expr(ns);
        while self.at_punct("&&") {
            let line = self.line();
            self.pos += 1;
            let rhs = self.cmp_expr(ns);
            lhs = Expr::Binary { op: "&&".into(), lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        lhs
    }

    fn cmp_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.bit_expr(ns);
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Punct(p))
                    if matches!(p.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=") =>
                {
                    p.clone()
                }
                _ => break,
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.bit_expr(ns);
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        lhs
    }

    fn bit_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.add_expr(ns);
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Punct(p))
                    if matches!(p.as_str(), "|" | "^" | "&" | "<<" | ">>") =>
                {
                    p.clone()
                }
                _ => break,
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.add_expr(ns);
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        lhs
    }

    fn add_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.mul_expr(ns);
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Punct(p)) if matches!(p.as_str(), "+" | "-") => p.clone(),
                _ => break,
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.mul_expr(ns);
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        lhs
    }

    fn mul_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.cast_expr(ns);
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Punct(p)) if matches!(p.as_str(), "*" | "/" | "%") => p.clone(),
                _ => break,
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.cast_expr(ns);
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        lhs
    }

    fn cast_expr(&mut self, ns: bool) -> Expr {
        let lhs = self.unary_expr(ns);
        while self.at_ident("as") {
            self.pos += 1;
            self.skip_type();
        }
        lhs
    }

    /// Skips a type after `as` (idents, paths, generics, pointers).
    fn skip_type(&mut self) {
        loop {
            self.skip_trivia();
            if self.pos >= self.end {
                return;
            }
            match &self.toks[self.pos].kind {
                TokenKind::Ident(id)
                    if !matches!(id.as_str(), "else" | "if" | "match" | "as") =>
                {
                    self.pos += 1;
                }
                TokenKind::Punct(p) if p == "::" || p == "&" => self.pos += 1,
                TokenKind::Punct(p) if p == "<" => self.skip_angles(),
                TokenKind::Punct(p) if p == "*" => {
                    // Pointer type only when `*const`/`*mut` follows.
                    let next_is_ptr = self.pos + 1 < self.end
                        && (self.toks[self.pos + 1].is_ident("const")
                            || self.toks[self.pos + 1].is_ident("mut"));
                    if next_is_ptr {
                        self.pos += 2;
                    } else {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    fn unary_expr(&mut self, ns: bool) -> Expr {
        // `&`, `&mut`, `*`, `-`, `!` are taint-transparent.
        if self.at_punct("&") || self.at_punct("&&") {
            let double = self.at_punct("&&");
            self.pos += 1;
            self.eat_ident("mut");
            if double {
                // `&&x` lexed as one token: one more level of ref.
                return self.unary_expr(ns);
            }
            return self.unary_expr(ns);
        }
        if self.at_punct("*") || self.at_punct("-") || self.at_punct("!") {
            self.pos += 1;
            return self.unary_expr(ns);
        }
        self.postfix_expr(ns)
    }

    fn postfix_expr(&mut self, ns: bool) -> Expr {
        let mut e = self.primary_expr(ns);
        loop {
            if self.at_punct(".") {
                self.pos += 1;
                let line = self.line();
                match self.peek().map(|t| t.kind.clone()) {
                    Some(TokenKind::Int(n)) => {
                        self.pos += 1;
                        e = Expr::Field { recv: Box::new(e), name: n, line };
                    }
                    Some(TokenKind::Ident(name)) => {
                        self.pos += 1;
                        if name == "await" {
                            continue;
                        }
                        // Turbofish.
                        if self.at_punct("::") {
                            self.pos += 1;
                            if self.at_punct("<") {
                                self.skip_angles();
                            }
                        }
                        if self.at_punct("(") {
                            let args = self.call_args();
                            e = Expr::Method { recv: Box::new(e), name, args, line };
                        } else {
                            e = Expr::Field { recv: Box::new(e), name, line };
                        }
                    }
                    _ => {
                        // `.` followed by something unexpected; stop.
                        break;
                    }
                }
            } else if self.at_punct("(") {
                let line = self.line();
                let args = self.call_args();
                e = match e {
                    Expr::Var(n, l) => Expr::Call { path: vec![n], args, line: l },
                    Expr::Path(path, l) => Expr::Call { path, args, line: l },
                    other => {
                        Expr::Method { recv: Box::new(other), name: "__call".into(), args, line }
                    }
                };
            } else if self.at_punct("[") {
                let line = self.line();
                self.pos += 1;
                let idx = self.expr(false);
                self.eat_punct("]");
                e = Expr::Index { recv: Box::new(e), index: Box::new(idx), line };
            } else if self.at_punct("?") {
                let line = self.line();
                self.pos += 1;
                e = Expr::Try { inner: Box::new(e), line };
            } else {
                break;
            }
        }
        e
    }

    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        loop {
            self.skip_trivia();
            if self.pos >= self.end || self.at_punct(")") {
                break;
            }
            let before = self.pos;
            args.push(self.expr(false));
            if self.pos == before {
                self.pos += 1;
            }
            if !self.eat_punct(",") && !self.at_punct(")") {
                // Lost sync inside the arg list; bail to the close paren.
                let mut depth = 1usize;
                while self.pos < self.end {
                    let t = &self.toks[self.pos];
                    if t.is_punct("(") {
                        depth += 1;
                    } else if t.is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    self.pos += 1;
                }
                break;
            }
        }
        self.eat_punct(")");
        args
    }

    fn primary_expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.peek() else { return Expr::Opaque(line) };
        match &t.kind {
            TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) | TokenKind::Char => {
                self.pos += 1;
                Expr::Lit(line)
            }
            TokenKind::Lifetime(_) => {
                // Label (`'outer: loop`): skip it and the `:`.
                self.pos += 1;
                self.eat_punct(":");
                self.primary_expr(ns)
            }
            TokenKind::Punct(p) if p == "(" => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.pos >= self.end || self.at_punct(")") {
                        break;
                    }
                    let before = self.pos;
                    items.push(self.expr(false));
                    if self.pos == before {
                        self.pos += 1;
                    }
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.eat_punct(")");
                if items.len() == 1 {
                    items.pop().unwrap_or(Expr::Opaque(line))
                } else {
                    Expr::Tuple { items, line }
                }
            }
            TokenKind::Punct(p) if p == "[" => {
                self.pos += 1;
                let mut items = Vec::new();
                let mut size = None;
                loop {
                    self.skip_trivia();
                    if self.pos >= self.end || self.at_punct("]") {
                        break;
                    }
                    let before = self.pos;
                    items.push(self.expr(false));
                    if self.pos == before {
                        self.pos += 1;
                    }
                    if self.eat_punct(";") {
                        size = Some(Box::new(self.expr(false)));
                        break;
                    }
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.eat_punct("]");
                Expr::Array { items, size, line }
            }
            TokenKind::Punct(p) if p == "{" => Expr::BlockExpr(Box::new(self.braced_block())),
            TokenKind::Punct(p) if p == "|" || p == "||" => self.closure_expr(line),
            TokenKind::Ident(id) => {
                let id = id.clone();
                match id.as_str() {
                    "if" => self.if_expr(line),
                    "match" => self.match_expr(line),
                    "move" => {
                        self.pos += 1;
                        self.closure_expr(line)
                    }
                    "unsafe" => {
                        self.pos += 1;
                        Expr::BlockExpr(Box::new(self.braced_block()))
                    }
                    "const" if self.peek2().is_some_and(|t| t.is_punct("{")) => {
                        self.pos += 1;
                        Expr::BlockExpr(Box::new(self.braced_block()))
                    }
                    "loop" | "while" | "for" => {
                        // Loop in expression position: parse as a statement
                        // and expose the body.
                        let s = self.stmt();
                        let body = match s {
                            Stmt::Loop { body } | Stmt::For { body, .. } => body,
                            other => Block { stmts: vec![other] },
                        };
                        Expr::BlockExpr(Box::new(body))
                    }
                    "true" | "false" => {
                        self.pos += 1;
                        Expr::Lit(line)
                    }
                    "return" => {
                        // `return` in expression position (e.g. match arm).
                        self.pos += 1;
                        if !(self.at_punct(",") || self.at_punct("}") || self.at_punct(";")) {
                            let _ = self.expr(false);
                        }
                        Expr::Opaque(line)
                    }
                    _ => self.path_expr(ns, line),
                }
            }
            _ => {
                self.pos += 1;
                Expr::Opaque(line)
            }
        }
    }

    fn closure_expr(&mut self, line: u32) -> Expr {
        let mut params = Vec::new();
        if self.eat_punct("||") {
            // Zero-parameter closure.
        } else if self.eat_punct("|") {
            loop {
                self.skip_trivia();
                if self.pos >= self.end || self.at_punct("|") {
                    break;
                }
                match &self.toks[self.pos].kind {
                    TokenKind::Ident(id)
                        if !matches!(id.as_str(), "mut" | "ref" | "_") =>
                    {
                        params.push(id.clone());
                        self.pos += 1;
                        // Type annotation: skip to `,` or `|` at depth 0.
                        if self.at_punct(":") {
                            self.pos += 1;
                            let mut depth = 0i64;
                            while self.pos < self.end {
                                match &self.toks[self.pos].kind {
                                    TokenKind::Punct(p) if p == "(" || p == "[" || p == "<" => {
                                        depth += 1
                                    }
                                    TokenKind::Punct(p) if p == ")" || p == "]" || p == ">" => {
                                        depth -= 1
                                    }
                                    TokenKind::Punct(p)
                                        if (p == "," || p == "|") && depth <= 0 =>
                                    {
                                        break
                                    }
                                    _ => {}
                                }
                                self.pos += 1;
                            }
                        }
                    }
                    TokenKind::Punct(p) if p == "(" || p == "[" => self.skip_balanced(),
                    _ => self.pos += 1,
                }
                self.eat_punct(",");
            }
            self.eat_punct("|");
        }
        // Optional return type `-> T`.
        if self.at_punct("->") {
            self.pos += 1;
            self.skip_type();
        }
        let body = self.expr(false);
        Expr::Closure { params, body: Box::new(body), line }
    }

    fn if_expr(&mut self, line: u32) -> Expr {
        self.eat_ident("if");
        let mut bindings = Vec::new();
        let cond = if self.eat_ident("let") {
            bindings = self.pattern_until_eq();
            self.eat_punct("=");
            self.expr(true)
        } else {
            self.expr(true)
        };
        let then = self.braced_block();
        let else_ = if self.eat_ident("else") {
            if self.at_ident("if") {
                let nested_line = self.line();
                let nested = self.if_expr(nested_line);
                Some(Box::new(Block {
                    stmts: vec![Stmt::Expr { value: nested, tail: true }],
                }))
            } else {
                Some(Box::new(self.braced_block()))
            }
        } else {
            None
        };
        Expr::If { cond: Box::new(cond), bindings, then: Box::new(then), else_, line }
    }

    fn match_expr(&mut self, line: u32) -> Expr {
        self.eat_ident("match");
        let scrutinee = self.expr(true);
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            loop {
                self.skip_trivia();
                if self.pos >= self.end || self.at_punct("}") {
                    break;
                }
                let before = self.pos;
                // Pattern: collect bindings up to `=>`, splitting off an
                // `if` guard.
                let mut bindings = Vec::new();
                let mut guard = None;
                let mut depth = 0i64;
                while self.pos < self.end {
                    self.skip_trivia();
                    if self.pos >= self.end {
                        break;
                    }
                    let t = &self.toks[self.pos];
                    if depth == 0 && t.is_punct("=>") {
                        break;
                    }
                    if depth == 0 && t.is_ident("if") {
                        self.pos += 1;
                        guard = Some(self.guard_expr());
                        continue;
                    }
                    match &t.kind {
                        TokenKind::Punct(p) if p == "(" || p == "[" => depth += 1,
                        TokenKind::Punct(p) if p == ")" || p == "]" => depth -= 1,
                        TokenKind::Ident(id) => {
                            let keyword = matches!(id.as_str(), "mut" | "ref" | "box" | "_");
                            let upper = id.chars().next().is_some_and(char::is_uppercase);
                            let path_seg = self.pos + 1 < self.end
                                && self.toks[self.pos + 1].is_punct("::");
                            if !keyword && !upper && !path_seg {
                                bindings.push(id.clone());
                            }
                        }
                        _ => {}
                    }
                    self.pos += 1;
                }
                self.eat_punct("=>");
                let body = self.expr(false);
                self.eat_punct(",");
                arms.push(Arm { bindings, guard, body });
                if self.pos == before {
                    self.pos += 1;
                }
            }
            self.eat_punct("}");
        }
        Expr::Match { scrutinee: Box::new(scrutinee), arms, line }
    }

    /// A match-arm guard expression: like `expr(true)` but must stop at
    /// the `=>`.
    fn guard_expr(&mut self) -> Expr {
        let start = self.pos;
        let mut depth = 0i64;
        let mut end = self.pos;
        while end < self.end {
            let t = &self.toks[end];
            if t.is_trivia() {
                end += 1;
                continue;
            }
            match &t.kind {
                TokenKind::Punct(p) if p == "(" || p == "[" || p == "{" => depth += 1,
                TokenKind::Punct(p) if p == ")" || p == "]" || p == "}" => depth -= 1,
                TokenKind::Punct(p) if p == "=>" && depth <= 0 => break,
                _ => {}
            }
            end += 1;
        }
        let mut sub = Parser { toks: self.toks, pos: start, end };
        let g = sub.expr(true);
        self.pos = end;
        g
    }

    /// A path head: `a::b::c`, then a call, macro, struct literal, or a
    /// bare path/var reference.
    fn path_expr(&mut self, ns: bool, line: u32) -> Expr {
        let mut segments = Vec::new();
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::Ident(id)) => {
                    segments.push(id);
                    self.pos += 1;
                }
                _ => break,
            }
            if self.at_punct("::") {
                self.pos += 1;
                // Turbofish inside a path.
                if self.at_punct("<") {
                    self.skip_angles();
                    if self.at_punct("::") {
                        self.pos += 1;
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segments.is_empty() {
            self.pos += 1;
            return Expr::Opaque(line);
        }
        // Macro invocation.
        if self.at_punct("!") && self.peek2().is_some_and(|t| {
            t.is_punct("(") || t.is_punct("[") || t.is_punct("{")
        }) {
            self.pos += 1;
            return self.macro_call(segments, line);
        }
        // Struct literal (unless suppressed by condition position).
        if !ns && self.at_punct("{") && self.struct_literal_ahead() {
            return self.struct_literal(segments, line);
        }
        // Plain call.
        if self.at_punct("(") {
            let args = self.call_args();
            return Expr::Call { path: segments, args, line };
        }
        if segments.len() == 1 {
            let seg = segments.pop().unwrap_or_default();
            Expr::Var(seg, line)
        } else {
            Expr::Path(segments, line)
        }
    }

    /// Lookahead after `path {`: does this look like a struct literal
    /// (`{ ident:`, `{ ident,`, `{ ident }`, `{ .. }`, `{ }`)?
    fn struct_literal_ahead(&mut self) -> bool {
        self.skip_trivia();
        let mut i = self.pos + 1; // past `{`
        let mut first = None;
        while i < self.end {
            if !self.toks[i].is_trivia() {
                first = Some(i);
                break;
            }
            i += 1;
        }
        let Some(fi) = first else { return false };
        match &self.toks[fi].kind {
            TokenKind::Punct(p) if p == "}" || p == ".." => true,
            TokenKind::Ident(_) => {
                let mut j = fi + 1;
                while j < self.end && self.toks[j].is_trivia() {
                    j += 1;
                }
                j < self.end
                    && matches!(&self.toks[j].kind,
                        TokenKind::Punct(p) if p == ":" || p == "," || p == "}")
            }
            _ => false,
        }
    }

    fn struct_literal(&mut self, path: Vec<String>, line: u32) -> Expr {
        self.eat_punct("{");
        let mut fields = Vec::new();
        loop {
            self.skip_trivia();
            if self.pos >= self.end || self.at_punct("}") {
                break;
            }
            let before = self.pos;
            if self.eat_punct("..") {
                let base = self.expr(false);
                fields.push(("..".to_string(), base));
            } else if let Some(TokenKind::Ident(name)) = self.peek().map(|t| t.kind.clone()) {
                self.pos += 1;
                if self.eat_punct(":") {
                    let value = self.expr(false);
                    fields.push((name, value));
                } else {
                    let l = self.line();
                    fields.push((name.clone(), Expr::Var(name, l)));
                }
            } else {
                self.pos += 1;
            }
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.eat_punct("}");
        Expr::Struct { path, fields, line }
    }

    fn macro_call(&mut self, segments: Vec<String>, line: u32) -> Expr {
        let name = segments.last().cloned().unwrap_or_default();
        // Find the span of the delimited body.
        let start = self.pos;
        self.skip_balanced();
        let inner_start = start + 1;
        let inner_end = self.pos.saturating_sub(1).max(inner_start);
        let inner = &self.toks[inner_start.min(self.end)..inner_end.min(self.end)];
        let idents: Vec<String> = inner
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(id) => Some(id.clone()),
                _ => None,
            })
            .collect();
        // Split the interior at top-level `;` (vec![x; n]) and `,`.
        let mut args = Vec::new();
        let mut size_arg = None;
        let mut part_start = 0usize;
        let mut depth = 0i64;
        let mut semi_at = None;
        let mut commas = Vec::new();
        for (i, t) in inner.iter().enumerate() {
            match &t.kind {
                TokenKind::Punct(p) if p == "(" || p == "[" || p == "{" => depth += 1,
                TokenKind::Punct(p) if p == ")" || p == "]" || p == "}" => depth -= 1,
                TokenKind::Punct(p) if p == ";" && depth == 0 && semi_at.is_none() => {
                    semi_at = Some(i);
                }
                TokenKind::Punct(p) if p == "," && depth == 0 => commas.push(i),
                _ => {}
            }
        }
        let parse_slice = |lo: usize, hi: usize| -> Expr {
            if lo >= hi {
                return Expr::Opaque(line);
            }
            let mut sub = Parser {
                toks: inner,
                pos: lo,
                end: hi,
            };
            sub.expr(false)
        };
        if let Some(semi) = semi_at {
            args.push(parse_slice(0, semi));
            size_arg = Some(Box::new(parse_slice(semi + 1, inner.len())));
        } else {
            for &c in &commas {
                args.push(parse_slice(part_start, c));
                part_start = c + 1;
            }
            args.push(parse_slice(part_start, inner.len()));
        }
        Expr::Macro { name, args, size_arg, idents, line }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;

    /// Parses the body of the first fn in `src`.
    fn body_of(src: &str) -> Block {
        let toks = lex(src);
        let ctx = context::analyze(&toks);
        let span = ctx.fns[0].body.expect("fn has a body");
        parse_body(&toks, span)
    }

    #[test]
    fn let_call_chain_parses() {
        let b = body_of("fn f() { let v = doc.get(\"k\").and_then(JsonValue::as_f64); }\n");
        assert_eq!(b.stmts.len(), 1);
        let Stmt::Let { names, init: Some(init), .. } = &b.stmts[0] else {
            panic!("expected let: {:?}", b.stmts[0]);
        };
        assert_eq!(names, &["v"]);
        let Expr::Method { name, args, recv, .. } = init else { panic!("expected method") };
        assert_eq!(name, "and_then");
        assert!(matches!(&args[0], Expr::Path(p, _) if p == &["JsonValue", "as_f64"]));
        assert!(matches!(&**recv, Expr::Method { name, .. } if name == "get"));
    }

    #[test]
    fn if_with_comparison_and_divergent_then() {
        let b = body_of(
            "fn f(v: f64) -> Result<(), E> { if !(v.is_finite() && v >= 0.0) { return Err(e); } Ok(v) }\n",
        );
        let Stmt::Expr { value: Expr::If { cond, then, .. }, .. } = &b.stmts[0] else {
            panic!("expected if: {:?}", b.stmts[0]);
        };
        // The negation is transparent; the condition is the && tree.
        assert!(matches!(&**cond, Expr::Binary { op, .. } if op == "&&"));
        assert!(matches!(then.stmts[0], Stmt::Return { .. }));
    }

    #[test]
    fn struct_literal_vs_block() {
        let b = body_of("fn f() { let q = Query { cost: c, sd }; }\n");
        let Stmt::Let { init: Some(Expr::Struct { path, fields, .. }), .. } = &b.stmts[0] else {
            panic!("expected struct literal: {:?}", b.stmts[0]);
        };
        assert_eq!(path, &["Query"]);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1].0, "sd");
        assert!(matches!(&fields[1].1, Expr::Var(n, _) if n == "sd"));
    }

    #[test]
    fn condition_position_suppresses_struct_literal() {
        let b = body_of("fn f() { if x { g(); } }\n");
        let Stmt::Expr { value: Expr::If { cond, then, .. }, .. } = &b.stmts[0] else {
            panic!("expected if: {:?}", b.stmts[0]);
        };
        assert!(matches!(&**cond, Expr::Var(n, _) if n == "x"));
        assert_eq!(then.stmts.len(), 1);
    }

    #[test]
    fn closures_capture_params_and_body() {
        let b = body_of("fn f() { items.iter().map(|item| cost(cache, item)); }\n");
        let Stmt::Expr { value: Expr::Method { name, args, .. }, .. } = &b.stmts[0] else {
            panic!("expected method: {:?}", b.stmts[0]);
        };
        assert_eq!(name, "map");
        let Expr::Closure { params, body, .. } = &args[0] else { panic!("expected closure") };
        assert_eq!(params, &["item"]);
        assert!(matches!(&**body, Expr::Call { path, .. } if path == &["cost"]));
    }

    #[test]
    fn vec_macro_with_size() {
        let b = body_of("fn f(n: usize) { let v = vec![0.0; n * 2]; }\n");
        let Stmt::Let { init: Some(Expr::Macro { name, size_arg, .. }), .. } = &b.stmts[0] else {
            panic!("expected macro: {:?}", b.stmts[0]);
        };
        assert_eq!(name, "vec");
        assert!(matches!(size_arg.as_deref(), Some(Expr::Binary { op, .. }) if op == "*"));
    }

    #[test]
    fn match_arms_bind_and_guard() {
        let b = body_of(
            "fn f(x: Option<f64>) { match x { Some(v) if v > 0.0 => g(v), None => h(), _ => {} } }\n",
        );
        let Stmt::Expr { value: Expr::Match { arms, .. }, .. } = &b.stmts[0] else {
            panic!("expected match: {:?}", b.stmts[0]);
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].bindings, vec!["v"]);
        assert!(arms[0].guard.is_some());
        assert!(matches!(&arms[0].body, Expr::Call { path, .. } if path == &["g"]));
    }

    #[test]
    fn try_and_index_postfix() {
        let b = body_of("fn f() -> Result<(), E> { let x = items[i + 1].parse::<u64>()?; Ok(()) }\n");
        let Stmt::Let { init: Some(Expr::Try { inner, .. }), .. } = &b.stmts[0] else {
            panic!("expected try: {:?}", b.stmts[0]);
        };
        let Expr::Method { name, recv, .. } = &**inner else { panic!("expected method") };
        assert_eq!(name, "parse");
        assert!(matches!(&**recv, Expr::Index { .. }));
    }

    #[test]
    fn for_loop_binds_iter() {
        let b = body_of("fn f(xs: Vec<f64>) { for x in xs { g(x); } }\n");
        let Stmt::For { bindings, iter, body, .. } = &b.stmts[0] else {
            panic!("expected for: {:?}", b.stmts[0]);
        };
        assert_eq!(bindings, &["x"]);
        assert!(matches!(iter, Expr::Var(n, _) if n == "xs"));
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn let_else_marks_divergence() {
        let b = body_of("fn f(o: Option<u32>) { let Some(v) = o else { return; }; g(v); }\n");
        let Stmt::Let { names, else_diverges, .. } = &b.stmts[0] else {
            panic!("expected let: {:?}", b.stmts[0]);
        };
        assert_eq!(names, &["v"]);
        assert!(else_diverges);
        assert!(matches!(&b.stmts[1], Stmt::Expr { .. }));
    }

    #[test]
    fn compound_assignment_wraps_binary() {
        let b = body_of("fn f(mut acc: f64, x: f64) { acc += x * 2.0; }\n");
        let Stmt::Assign { root, value, .. } = &b.stmts[0] else {
            panic!("expected assign: {:?}", b.stmts[0]);
        };
        assert_eq!(root.as_deref(), Some("acc"));
        assert!(matches!(value, Expr::Binary { op, .. } if op == "+"));
    }

    #[test]
    fn never_panics_on_garbage() {
        // Fragments that are not valid Rust must still parse to *something*.
        for src in [
            "fn f() { ) ( ] [ ; let = = ; }\n",
            "fn f() { x.. .. ..= }\n",
            "fn f() { match { => , } }\n",
            "fn f() { |a b c| }\n",
            "fn f() { Foo { , , } }\n",
            "fn f() { a!(((( }\n",
        ] {
            let _ = body_of(src);
        }
    }

    #[test]
    fn nested_items_are_skipped_opaque() {
        let b = body_of("fn f() { struct S { a: u8 } let x = g(); }\n");
        assert!(matches!(b.stmts[0], Stmt::Opaque));
        assert!(matches!(&b.stmts[1], Stmt::Let { .. }));
    }

    #[test]
    fn tail_expression_is_flagged() {
        let b = body_of("fn f(x: f64) -> f64 { let y = x; y * 2.0 }\n");
        let Stmt::Expr { tail, .. } = &b.stmts[1] else { panic!("expected tail expr") };
        assert!(tail);
    }
}
