//! Diagnostic records and their text/JSON renderings.

use std::fmt;

/// The audit rules. Each maps to one correctness invariant of the
/// cost-model codebase (see `README.md` § Static analysis & lint policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in library code.
    R1,
    /// No direct `==`/`!=` comparison against floating-point operands.
    R2,
    /// No bare numeric literals in model functions outside `const` items and
    /// calibration modules.
    R3,
    /// Public model-crate functions must not take raw `f64` where a
    /// `nanocost-units` newtype exists for the paper symbol.
    R4,
    /// Every public model-crate function documents the paper
    /// equation/figure/table it implements.
    R5,
    /// No `println!`/`eprintln!`/`print!`/`eprint!` in library code;
    /// output flows through return values or `nanocost-trace`.
    R6,
    /// `span!`/`event!`/metric-macro names in library code must be
    /// static lowercase `snake_case` (dot-separated) string literals, so
    /// flamegraph and fingerprint keys stay stable across runs.
    R7,
    /// Meta-rule: a `nanocost-audit:` suppression pragma is malformed
    /// (unknown rule id, missing mandatory reason, or bad syntax).
    P0,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
    ];

    /// Parses `"R1"`…`"R7"` (case-insensitive). `P0` is not parseable:
    /// pragma hygiene cannot itself be suppressed by a pragma.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            _ => None,
        }
    }

    /// One-line description used by `--list-rules` and the docs.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::R1 => "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library code",
            RuleId::R2 => "no direct ==/!= comparison with floating-point operands",
            RuleId::R3 => "no bare numeric literals in model functions outside const/calibration code",
            RuleId::R4 => "public model functions must use nanocost-units newtypes, not raw f64",
            RuleId::R5 => "every public model function cites the paper equation/figure/table it implements",
            RuleId::R6 => "no println!/eprintln!/print!/eprint! in library code; use nanocost-trace or return values",
            RuleId::R7 => "span!/event!/metric names in library code must be static lowercase snake_case string literals",
            RuleId::P0 => "suppression pragma is malformed (unknown rule, missing reason, or bad syntax)",
        }
    }

    /// Default severity for this rule's findings.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::R1 | RuleId::R2 | RuleId::P0 => Severity::Error,
            RuleId::R3 | RuleId::R4 | RuleId::R5 | RuleId::R6 | RuleId::R7 => Severity::Warning,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleId::R1 => write!(f, "R1"),
            RuleId::R2 => write!(f, "R2"),
            RuleId::R3 => write!(f, "R3"),
            RuleId::R4 => write!(f, "R4"),
            RuleId::R5 => write!(f, "R5"),
            RuleId::R6 => write!(f, "R6"),
            RuleId::R7 => write!(f, "R7"),
            RuleId::P0 => write!(f, "P0"),
        }
    }
}

/// How bad a finding is. Errors always fail the run; warnings fail it only
/// under `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/traceability finding; failing only under `--deny`.
    Warning,
    /// Correctness finding; always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a rule violated at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root, with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity the rule assigns to this finding.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders `file:line: severity[rule] message`.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: {}[{}] {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }

    /// Renders one JSON object (stable key order).
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"file":{},"line":{},"rule":"{}","severity":"{}","message":{}}}"#,
            json_string(&self.file),
            self.line,
            self.rule,
            self.severity,
            json_string(&self.message)
        )
    }
}

/// Sorts diagnostics by file, line, then rule, for deterministic output.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
}

/// Renders the full report as a JSON document:
/// `{"diagnostics":[…],"counts":{"error":N,"warning":M}}`.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::render_json).collect();
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.iter().filter(|d| d.severity == Severity::Warning).count();
    format!(
        "{{\"diagnostics\":[{}],\"counts\":{{\"error\":{},\"warning\":{}}}}}\n",
        items.join(","),
        errors,
        warnings
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, rule: RuleId) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            severity: rule.severity(),
            message: format!("msg for {rule}"),
        }
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(&r.to_string()), Some(r));
        }
        assert_eq!(RuleId::parse("r3"), Some(RuleId::R3));
        assert_eq!(RuleId::parse("R9"), None);
    }

    #[test]
    fn text_rendering_has_location_rule_and_severity() {
        let d = diag("crates/core/src/a.rs", 7, RuleId::R1);
        assert_eq!(
            d.render_text(),
            "crates/core/src/a.rs:7: error[R1] msg for R1"
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let mut d = diag("a.rs", 1, RuleId::R2);
        d.message = "bad \"x\" \\ path".into();
        assert!(d.render_json().contains(r#""message":"bad \"x\" \\ path""#));
    }

    #[test]
    fn report_counts_by_severity() {
        let out = render_json_report(&[diag("a.rs", 1, RuleId::R1), diag("a.rs", 2, RuleId::R3)]);
        assert!(out.contains("\"counts\":{\"error\":1,\"warning\":1}"));
    }

    #[test]
    fn sorting_is_stable_by_location() {
        let mut ds = vec![diag("b.rs", 1, RuleId::R1), diag("a.rs", 9, RuleId::R2)];
        sort_diagnostics(&mut ds);
        assert_eq!(ds[0].file, "a.rs");
    }
}
