//! Diagnostic records, the rule registry (with rationale/example/fix
//! explanations), and the text/JSON renderings.
//!
//! [`EXPLANATIONS`] is the single source of truth for what each rule
//! means: `--list-rules`, `--explain`, and the crate documentation all
//! render from it, so the help text cannot drift from the rules.

use std::fmt;

/// The audit rules. Each maps to one correctness invariant of the
/// cost-model codebase (see `README.md` § Static analysis & lint policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in library code.
    R1,
    /// No direct `==`/`!=` comparison against floating-point operands.
    R2,
    /// No bare numeric literals in model functions outside `const` items and
    /// calibration modules.
    R3,
    /// Public model-crate functions must not take raw `f64` where a
    /// `nanocost-units` newtype exists for the paper symbol.
    R4,
    /// Every public model-crate function documents the paper
    /// equation/figure/table it implements.
    R5,
    /// No `println!`/`eprintln!`/`print!`/`eprint!` in library code;
    /// output flows through return values or `nanocost-trace`.
    R6,
    /// `span!`/`event!`/metric-macro names in library code must be
    /// static lowercase `snake_case` (dot-separated) string literals, so
    /// flamegraph and fingerprint keys stay stable across runs.
    R7,
    /// Taint: untrusted values (JSON numeric accessors, `std::env`, file
    /// reads) must pass a fallible validator before reaching an
    /// infallible constructor, model arithmetic, slice indexing, or
    /// allocation sizing.
    R8,
    /// Lock discipline: no `.lock().unwrap()`/`.lock().expect()` poison
    /// panics in library code, no inconsistent global lock-acquisition
    /// order, no guard held across I/O or channel sends.
    R9,
    /// Provenance completeness: a `core` function whose doc *leads* with
    /// an `Eq. N` citation must (transitively) emit `Eq.N` provenance,
    /// and every provenance emit site must cite its equation in its doc.
    R10,
    /// Meta-rule: a `nanocost-audit:` suppression pragma is malformed
    /// (unknown rule id, missing mandatory reason, or bad syntax).
    P0,
    /// Meta-rule: a suppression pragma that suppresses zero diagnostics
    /// is stale and must be removed (error under `--strict-pragmas`).
    P1,
}

/// One row of the rule registry: everything `--explain` prints.
pub struct Explanation {
    /// The rule this row explains.
    pub rule: RuleId,
    /// One-line description (used by `--list-rules` and [`RuleId::describe`]).
    pub summary: &'static str,
    /// Why the rule exists — the discipline argument behind it.
    pub rationale: &'static str,
    /// A minimal code shape that fires the rule.
    pub example: &'static str,
    /// The sanctioned fix.
    pub fix: &'static str,
}

/// The rule registry. Ordered as [`RuleId::ALL`] then the meta-rules;
/// a unit test pins the one-row-per-rule invariant.
pub const EXPLANATIONS: &[Explanation] = &[
    Explanation {
        rule: RuleId::R1,
        summary: "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library code",
        rationale: "A cost model embedded in a server or a larger flow must degrade into an \
                    error value, never an abort: a panic in a worker thread wedges the worker \
                    for the life of the process.",
        example: "fn f(x: Option<f64>) -> f64 { x.unwrap() }",
        fix: "Propagate with `?`/`ok_or`, or prove impossibility and carry an \
              `allow(R1, reason = ...)` pragma naming the invariant.",
    },
    Explanation {
        rule: RuleId::R2,
        summary: "no direct ==/!= comparison with floating-point operands",
        rationale: "Float equality is representation-dependent; model outputs must be compared \
                    against explicit tolerances so results stay stable across rustc versions \
                    and optimization levels.",
        example: "if cost == 0.37 { ... }",
        fix: "Compare with an explicit tolerance, e.g. `(cost - K).abs() < EPS`, or use \
              `total_cmp` for ordering.",
    },
    Explanation {
        rule: RuleId::R3,
        summary: "no bare numeric literals in model functions outside const/calibration code",
        rationale: "Every calibration constant must be named and traceable to the paper; an \
                    inline `0.37` is a silent fork of the model.",
        example: "fn yield_at(d: f64) -> f64 { (-0.37 * d).exp() }",
        fix: "Hoist the value into a `const` with a doc comment citing the paper \
              equation/table it came from.",
    },
    Explanation {
        rule: RuleId::R4,
        summary: "public model functions must use nanocost-units newtypes, not raw f64",
        rationale: "The paper's symbols (lambda, s_d, Y, ...) each have a unit-checked newtype; \
                    raw f64 parameters let callers transpose arguments silently.",
        example: "pub fn chip_cost(lambda: f64) -> f64 { ... }",
        fix: "Take the `nanocost_units` newtype (e.g. `FeatureSize`) named in the diagnostic.",
    },
    Explanation {
        rule: RuleId::R5,
        summary: "every public model function cites the paper equation/figure/table it implements",
        rationale: "Model trustworthiness rests on every output being traceable to a named \
                    equation; an uncited function is unreviewable against the source.",
        example: "/// Computes stuff.\npub fn chip_cost(...) { ... }",
        fix: "Cite the paper in the doc comment: `Implements eq. (4)`, `Figure 4`, `§3.1`, ...",
    },
    Explanation {
        rule: RuleId::R6,
        summary: "no println!/eprintln!/print!/eprint! in library code; use nanocost-trace or return values",
        rationale: "Console writes bypass the exporters: output that matters must be structured \
                    (trace records, return values) so it is machine-diffable and replayable.",
        example: "fn solve() { println!(\"converged\"); }",
        fix: "Emit an `event!`/`counter!` or return the value; bins may print freely.",
    },
    Explanation {
        rule: RuleId::R7,
        summary: "span!/event!/metric names in library code must be static lowercase snake_case string literals",
        rationale: "Computed or mixed-case trace names make flamegraph stacks and fingerprint \
                    keys unstable run-to-run, silently breaking bench_diff and the fingerprint \
                    gate.",
        example: "span!(format!(\"run-{i}\"));",
        fix: "Use a static lowercase dotted snake_case literal: `span!(\"figure4.run\")`.",
    },
    Explanation {
        rule: RuleId::R8,
        summary: "untrusted values must pass a fallible validator before infallible constructors, model arithmetic, indexing, or allocation sizing",
        rationale: "JSON admits 1e400 (which parses to +inf), env vars admit anything; an \
                    unvalidated value reaching `Dollars::new` panics a worker permanently \
                    (the PR-5 remote DoS). Validation must be a fallible step the caller \
                    cannot skip.",
        example: "let v = doc.get(\"mask_cost\").and_then(JsonValue::as_f64)?;\nlet c = Dollars::new(v);",
        fix: "Route through the fallible twin (`Dollars::try_new(v)?`) or an explicit range \
              check returning `Result` before the sink.",
    },
    Explanation {
        rule: RuleId::R9,
        summary: "lock discipline: no poison-panic lock(), consistent global lock order, no guard held across I/O or channel sends",
        rationale: "`.lock().unwrap()` turns one panicked thread into a poisoned-forever \
                    subsystem; inconsistent acquisition order deadlocks under load; a guard \
                    held across I/O stalls every other thread behind a slow peer.",
        example: "let a = self.x.lock().unwrap();\nlet b = self.y.lock(); // elsewhere: y before x",
        fix: "Recover with `unwrap_or_else(PoisonError::into_inner)`, acquire locks in one \
              global order, and drop guards before I/O (I/O on the guarded resource itself \
              is exempt).",
    },
    Explanation {
        rule: RuleId::R10,
        summary: "core fns with a leading Eq. citation must emit matching provenance, and emit sites must cite their equation",
        rationale: "The provenance stream is the mechanical audit trail tying every number to \
                    a paper equation (the fingerprint gate hashes it); a doc that claims \
                    `Eq. 4` without emitting it — or an emit without a citation — breaks the \
                    doc/trace cross-check.",
        example: "/// Eq. 4 end to end: ...\npub fn transistor_cost(...) { /* no provenance!(Eq4) */ }",
        fix: "Emit `provenance!(equation: EqN, ...)` in the function (or a callee), or \
              reword the doc so it does not lead with an equation claim.",
    },
    Explanation {
        rule: RuleId::P0,
        summary: "suppression pragma is malformed (unknown rule, missing reason, or bad syntax)",
        rationale: "A suppression without a stated reason is an unreviewable waiver; a typo'd \
                    rule id silently suppresses nothing.",
        example: "// nanocost-audit: allow(R1)",
        fix: "State the reason: `// nanocost-audit: allow(R1, reason = \"len checked above\")`.",
    },
    Explanation {
        rule: RuleId::P1,
        summary: "suppression pragma suppresses zero diagnostics (stale)",
        rationale: "A pragma that no longer masks anything is a waiver outliving the code it \
                    excused; left in place it will silently swallow the next real finding on \
                    that line.",
        example: "let v = compute(); // nanocost-audit: allow(R1, reason = \"...\") — but nothing fires here",
        fix: "Delete the pragma (or the no-longer-needed rule id from its list).",
    },
];

impl RuleId {
    /// All non-meta rules, in report order.
    pub const ALL: [RuleId; 10] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
        RuleId::R9,
        RuleId::R10,
    ];

    /// Parses `"R1"`…`"R10"` (case-insensitive). `P0`/`P1` are not
    /// parseable: pragma hygiene cannot itself be suppressed by a pragma.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            "R8" => Some(RuleId::R8),
            "R9" => Some(RuleId::R9),
            "R10" => Some(RuleId::R10),
            _ => None,
        }
    }

    /// The registry row for this rule.
    #[must_use]
    pub fn explanation(self) -> &'static Explanation {
        // The registry is pinned complete by a unit test; the linear
        // scan is over a 12-element const table.
        EXPLANATIONS
            .iter()
            .find(|e| e.rule == self)
            .unwrap_or(&EXPLANATIONS[0])
    }

    /// One-line description used by `--list-rules` and the docs.
    pub fn describe(self) -> &'static str {
        self.explanation().summary
    }

    /// Default severity for this rule's findings. `P1` escalates to
    /// error under `--strict-pragmas` (handled by the caller).
    pub fn severity(self) -> Severity {
        match self {
            RuleId::R1 | RuleId::R2 | RuleId::R8 | RuleId::R9 | RuleId::P0 => Severity::Error,
            RuleId::R3
            | RuleId::R4
            | RuleId::R5
            | RuleId::R6
            | RuleId::R7
            | RuleId::R10
            | RuleId::P1 => Severity::Warning,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleId::R1 => write!(f, "R1"),
            RuleId::R2 => write!(f, "R2"),
            RuleId::R3 => write!(f, "R3"),
            RuleId::R4 => write!(f, "R4"),
            RuleId::R5 => write!(f, "R5"),
            RuleId::R6 => write!(f, "R6"),
            RuleId::R7 => write!(f, "R7"),
            RuleId::R8 => write!(f, "R8"),
            RuleId::R9 => write!(f, "R9"),
            RuleId::R10 => write!(f, "R10"),
            RuleId::P0 => write!(f, "P0"),
            RuleId::P1 => write!(f, "P1"),
        }
    }
}

/// How bad a finding is. Errors always fail the run; warnings fail it only
/// under `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/traceability finding; failing only under `--deny`.
    Warning,
    /// Correctness finding; always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a rule violated at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root, with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity the rule assigns to this finding.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders `file:line: severity[rule] message`.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: {}[{}] {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }

    /// Renders one JSON object (stable key order).
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"file":{},"line":{},"rule":"{}","severity":"{}","message":{}}}"#,
            json_string(&self.file),
            self.line,
            self.rule,
            self.severity,
            json_string(&self.message)
        )
    }
}

/// The JSON report schema version. Bumped to 2 when the top-level
/// `"schema"` field itself was introduced (diagnostics sorted by
/// path, line, rule — byte-deterministic for diffing runs).
pub const JSON_SCHEMA_VERSION: u32 = 2;

/// Sorts diagnostics by file, line, then rule, for deterministic output.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
}

/// Renders the full report as a JSON document:
/// `{"schema":2,"diagnostics":[…],"counts":{"error":N,"warning":M}}`.
/// Output is byte-deterministic: the diagnostics array is sorted by
/// (path, line, rule) and key order is fixed.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::render_json).collect();
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.iter().filter(|d| d.severity == Severity::Warning).count();
    format!(
        "{{\"schema\":{},\"diagnostics\":[{}],\"counts\":{{\"error\":{},\"warning\":{}}}}}\n",
        JSON_SCHEMA_VERSION,
        items.join(","),
        errors,
        warnings
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, rule: RuleId) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            severity: rule.severity(),
            message: format!("msg for {rule}"),
        }
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(&r.to_string()), Some(r));
        }
        assert_eq!(RuleId::parse("r3"), Some(RuleId::R3));
        assert_eq!(RuleId::parse("r10"), Some(RuleId::R10));
        assert_eq!(RuleId::parse("R11"), None);
        assert_eq!(RuleId::parse("P0"), None, "meta-rules are not suppressible");
        assert_eq!(RuleId::parse("P1"), None, "meta-rules are not suppressible");
    }

    #[test]
    fn registry_has_exactly_one_row_per_rule_in_order() {
        let mut expected: Vec<RuleId> = RuleId::ALL.to_vec();
        expected.push(RuleId::P0);
        expected.push(RuleId::P1);
        let rows: Vec<RuleId> = EXPLANATIONS.iter().map(|e| e.rule).collect();
        assert_eq!(rows, expected, "EXPLANATIONS must cover every rule exactly once, in order");
        for e in EXPLANATIONS {
            assert!(!e.summary.is_empty() && !e.rationale.is_empty());
            assert!(!e.example.is_empty() && !e.fix.is_empty());
            assert_eq!(e.summary, e.rule.describe());
        }
    }

    #[test]
    fn text_rendering_has_location_rule_and_severity() {
        let d = diag("crates/core/src/a.rs", 7, RuleId::R1);
        assert_eq!(
            d.render_text(),
            "crates/core/src/a.rs:7: error[R1] msg for R1"
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let mut d = diag("a.rs", 1, RuleId::R2);
        d.message = "bad \"x\" \\ path".into();
        assert!(d.render_json().contains(r#""message":"bad \"x\" \\ path""#));
    }

    #[test]
    fn report_counts_by_severity_and_carries_schema() {
        let out = render_json_report(&[diag("a.rs", 1, RuleId::R1), diag("a.rs", 2, RuleId::R3)]);
        assert!(out.starts_with("{\"schema\":2,\"diagnostics\":["));
        assert!(out.contains("\"counts\":{\"error\":1,\"warning\":1}"));
    }

    #[test]
    fn sorting_is_stable_by_location() {
        let mut ds = vec![
            diag("b.rs", 1, RuleId::R1),
            diag("a.rs", 9, RuleId::R2),
            diag("a.rs", 9, RuleId::R1),
        ];
        sort_diagnostics(&mut ds);
        assert_eq!(ds[0].file, "a.rs");
        assert_eq!(ds[0].rule, RuleId::R1, "rule breaks line ties");
        assert_eq!(ds[2].file, "b.rs");
    }

    #[test]
    fn new_rule_severities() {
        assert_eq!(RuleId::R8.severity(), Severity::Error);
        assert_eq!(RuleId::R9.severity(), Severity::Error);
        assert_eq!(RuleId::R10.severity(), Severity::Warning);
        assert_eq!(RuleId::P1.severity(), Severity::Warning);
    }
}
