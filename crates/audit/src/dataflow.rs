//! The intra-procedural taint engine behind rule R8, with
//! inter-procedural function summaries.
//!
//! Model: values from **untrusted sources** (JSON numeric accessors,
//! `std::env`, file reads) are *tainted*. Taint propagates through
//! bindings, arithmetic, field/struct/tuple composition, closures, and
//! function calls (via summaries). It is cleared by **sanitizers** —
//! fallible validators (`try_*`, `parse`, fallible `nanocost-units`
//! constructors) and divergent range-check guards
//! (`if !(v.is_finite() && …) { return Err(…) }`). A tainted value
//! reaching a **sink** — an infallible units constructor, arithmetic in
//! a model-crate fn, a slice index, or an allocation size — is an R8
//! finding.
//!
//! Summaries make the analysis inter-procedural without being
//! whole-program: for every workspace fn we compute, to fixpoint,
//! whether it *returns source taint*, whether *argument taint flows to
//! its return*, and whether *argument taint reaches a sink inside it*.
//! Call sites then consult the callee's summary instead of inlining.

use std::collections::HashSet;

use crate::parse::{Arm, Block, Expr, Stmt};
use crate::symbols::SymbolTable;

/// Crates whose arithmetic is a taint sink (the model itself) — kept in
/// sync with `rules::MODEL_CRATES`.
const MODEL_CRATES: &[&str] = &["core", "yield-model", "flow"];

/// The crate holding the unit newtypes whose constructors the engine
/// classifies by fallibility.
const UNITS_CRATE: &str = "units";

/// Method names that *produce* untrusted values — the JSON numeric
/// accessors. Only counted in [`RAW_INPUT_CRATES`] (where raw request
/// bodies are handled): unit newtypes expose `as_f64()` accessors over
/// *validated* data, and those must not alarm.
const SOURCE_METHODS: &[&str] = &["as_f64", "as_u64", "as_i64"];

/// Crates that parse raw external input (JSON request bodies), where a
/// bare `.as_f64()` method call is a taint source.
const RAW_INPUT_CRATES: &[&str] = &["serve"];

/// The type whose numeric accessors are sources regardless of crate
/// (`JsonValue::as_f64` passed as a fn reference names it explicitly).
const JSON_TYPE: &str = "JsonValue";

/// Call paths (matched on their trailing segments) that produce
/// untrusted values.
const SOURCE_PATHS: &[&[&str]] = &[
    &["env", "var"],
    &["env", "var_os"],
    &["env", "args"],
    &["fs", "read"],
    &["fs", "read_to_string"],
];

/// Method/function names that always return untainted values regardless
/// of receiver taint (positions, lengths, emptiness — magnitudes the
/// attacker does not control).
const TAINT_STOPPERS: &[&str] =
    &["len", "count", "position", "rposition", "find", "rfind", "is_empty", "capacity"];

/// Method names that size an allocation from their argument.
const ALLOC_SINKS: &[&str] = &["with_capacity", "reserve", "reserve_exact"];

/// One per-fn summary, computed to fixpoint over the call graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// The fn returns source-derived taint even with clean arguments.
    pub returns_source: bool,
    /// Taint on any argument flows to the return value.
    pub flows_through: bool,
    /// The fn is a sanitizer: its result is validated (fallible `try_*`
    /// / `parse` / fallible units constructor).
    pub validator: bool,
    /// Taint on an argument reaches a sink inside the fn (description of
    /// that sink, for call-site diagnostics).
    pub param_sink: Option<String>,
}

/// One R8 finding inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaintFinding {
    /// Line of the sink expression.
    pub line: u32,
    /// What flowed where.
    pub message: String,
}

/// How many fixpoint rounds the summary computation may take. The chain
/// depth of real call graphs is far below this; the cap only bounds
/// pathological cycles.
const MAX_ROUNDS: usize = 12;

/// Computes summaries for every fn in the table, to fixpoint.
pub fn summarize(table: &SymbolTable) -> Vec<Summary> {
    let mut summaries: Vec<Summary> = table
        .fns
        .iter()
        .map(|f| Summary {
            validator: static_validator(&f.name, &f.crate_name, f.ret_result),
            ..Summary::default()
        })
        .collect();
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for (i, f) in table.fns.iter().enumerate() {
            let Some(body) = &f.body else { continue };
            let params: Vec<String> = param_names(table, i);
            // Pass 1: arguments tainted, sources disabled — measures how
            // argument taint moves (flows_through / param_sink).
            let mut eng = Engine::new(table, &summaries, Mode::ParamsOnly, &f.crate_name);
            eng.tainted.extend(params.iter().cloned());
            eng.locals.extend(params.iter().cloned());
            let ret1 = eng.eval_block(body);
            let flows = (ret1 || eng.return_tainted) && !summaries[i].validator;
            let sink = eng.param_sink.clone();
            // Pass 2: arguments clean, sources live — measures whether
            // the fn manufactures taint itself.
            let mut eng2 = Engine::new(table, &summaries, Mode::SourcesOnly, &f.crate_name);
            eng2.locals.extend(params.iter().cloned());
            let ret2 = eng2.eval_block(body);
            let produces = (ret2 || eng2.return_tainted) && !summaries[i].validator;
            let new = Summary {
                returns_source: produces,
                flows_through: flows,
                validator: summaries[i].validator,
                param_sink: sink,
            };
            if new != summaries[i] {
                summaries[i] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// Reports R8 findings for one fn body (top level: params clean, sources
/// live, sinks fire).
pub fn check_fn(
    table: &SymbolTable,
    summaries: &[Summary],
    crate_name: &str,
    params: &[String],
    body: &Block,
) -> Vec<TaintFinding> {
    let mut eng = Engine::new(table, summaries, Mode::Report, crate_name);
    eng.locals.extend(params.iter().cloned());
    eng.eval_block(body);
    let mut out: Vec<TaintFinding> = eng
        .findings
        .into_iter()
        .map(|(line, message)| TaintFinding { line, message })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Is this fn a sanitizer by declaration alone?
fn static_validator(name: &str, crate_name: &str, ret_result: bool) -> bool {
    (name.starts_with("try_") && ret_result)
        || name == "parse"
        || (crate_name == UNITS_CRATE && ret_result)
}

fn param_names(table: &SymbolTable, i: usize) -> Vec<String> {
    table.fns[i].param_names.clone()
}

enum Mode {
    /// Summary pass 1: params are tainted, sources are inert.
    ParamsOnly,
    /// Summary pass 2: params clean, sources live. Sinks are recorded
    /// but findings are discarded (the fn's own Report pass will refind
    /// them).
    SourcesOnly,
    /// Top-level reporting: sources live, sinks fire diagnostics.
    Report,
}

struct Engine<'a> {
    table: &'a SymbolTable,
    summaries: &'a [Summary],
    mode: Mode,
    crate_name: &'a str,
    tainted: HashSet<String>,
    /// Every name bound locally (params, lets, loop/match/closure
    /// bindings) — a call through one of these is a closure-variable
    /// call, not a workspace fn (`compute()` where `compute` is a
    /// parameter must not borrow some fn named `compute`'s summary).
    locals: HashSet<String>,
    findings: Vec<(u32, String)>,
    /// Any `return e` with tainted `e` was seen.
    return_tainted: bool,
    /// In summary mode: a description of a sink argument taint reached.
    param_sink: Option<String>,
}

impl<'a> Engine<'a> {
    fn new(
        table: &'a SymbolTable,
        summaries: &'a [Summary],
        mode: Mode,
        crate_name: &'a str,
    ) -> Self {
        Engine {
            table,
            summaries,
            mode,
            crate_name,
            tainted: HashSet::new(),
            locals: HashSet::new(),
            findings: Vec::new(),
            return_tainted: false,
            param_sink: None,
        }
    }

    fn sources_live(&self) -> bool {
        !matches!(self.mode, Mode::ParamsOnly)
    }

    fn in_model_crate(&self) -> bool {
        MODEL_CRATES.contains(&self.crate_name)
    }

    fn sink(&mut self, line: u32, message: String) {
        if matches!(self.mode, Mode::Report) {
            self.findings.push((line, message));
        } else if self.param_sink.is_none() {
            self.param_sink = Some(message);
        }
    }

    fn bind(&mut self, names: &[String], tainted: bool) {
        for n in names {
            self.locals.insert(n.clone());
            if tainted {
                self.tainted.insert(n.clone());
            } else {
                self.tainted.remove(n);
            }
        }
    }

    /// Evaluates a block; returns the taint of its tail expression.
    fn eval_block(&mut self, b: &Block) -> bool {
        let mut tail = false;
        for s in &b.stmts {
            tail = false;
            match s {
                Stmt::Let { names, init, .. } => {
                    let t = init.as_ref().map(|e| self.eval(e)).unwrap_or(false);
                    self.bind(names, t);
                }
                Stmt::Assign { root, value, .. } => {
                    let t = self.eval(value);
                    if let Some(r) = root {
                        self.bind(std::slice::from_ref(r), t);
                    }
                }
                Stmt::Expr { value, tail: is_tail } => {
                    let t = self.eval(value);
                    if *is_tail {
                        tail = t;
                    }
                }
                Stmt::Return { value, .. } => {
                    if let Some(e) = value {
                        if self.eval(e) {
                            self.return_tainted = true;
                        }
                    }
                }
                Stmt::For { bindings, iter, body, .. } => {
                    let t = self.eval(iter);
                    self.bind(bindings, t);
                    // Two passes propagate loop-carried taint through
                    // accumulators; findings dedupe at the end.
                    self.eval_block(body);
                    self.eval_block(body);
                }
                Stmt::Loop { body } => {
                    self.eval_block(body);
                    self.eval_block(body);
                }
                Stmt::Block(inner) => {
                    self.eval_block(inner);
                }
                Stmt::Opaque => {}
            }
        }
        tail
    }

    fn eval(&mut self, e: &Expr) -> bool {
        match e {
            Expr::Lit(_) | Expr::Opaque(_) => false,
            Expr::Var(n, _) => self.tainted.contains(n),
            Expr::Path(path, _) => {
                // A bare reference to a source fn (`JsonValue::as_f64`
                // passed to `and_then`) taints whatever consumes it.
                self.sources_live() && self.path_is_source(path)
            }
            Expr::Call { path, args, line } => self.eval_call(path, args, *line),
            Expr::Method { recv, name, args, line } => self.eval_method(recv, name, args, *line),
            Expr::Field { recv, .. } => self.eval(recv),
            Expr::Index { recv, index, line } => {
                let it = self.eval(index);
                let rt = self.eval(recv);
                if it {
                    self.sink(*line, "tainted value used as slice/collection index".into());
                }
                rt
            }
            Expr::Binary { op, lhs, rhs, line } => {
                let lt = self.eval(lhs);
                let rt = self.eval(rhs);
                match op.as_str() {
                    "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||" => false,
                    "+" | "-" | "*" | "/" | "%" => {
                        if (lt || rt) && self.in_model_crate() {
                            self.sink(
                                *line,
                                "tainted value used in model arithmetic without validation"
                                    .into(),
                            );
                        }
                        lt || rt
                    }
                    _ => lt || rt,
                }
            }
            Expr::Try { inner, .. } => self.eval(inner),
            Expr::Struct { fields, .. } => {
                let mut t = false;
                for (_, v) in fields {
                    t |= self.eval(v);
                }
                t
            }
            Expr::Tuple { items, .. } => {
                let mut t = false;
                for i in items {
                    t |= self.eval(i);
                }
                t
            }
            Expr::Array { items, size, line } => {
                let mut t = false;
                for i in items {
                    t |= self.eval(i);
                }
                if let Some(s) = size {
                    if self.eval(s) {
                        self.sink(*line, "tainted value used as array/allocation size".into());
                    }
                }
                t
            }
            Expr::Closure { params, body, .. } => {
                // Evaluated as a value: body runs with clean params; the
                // closure's production taint is its body taint. Sinks
                // inside still fire.
                let saved: Vec<bool> =
                    params.iter().map(|p| self.tainted.contains(p)).collect();
                self.bind(params, false);
                let t = self.eval(body);
                for (p, was) in params.iter().zip(saved) {
                    if was {
                        self.tainted.insert(p.clone());
                    }
                }
                t
            }
            Expr::If { cond, bindings, then, else_, .. } => {
                let ct = self.eval(cond);
                self.bind(bindings, ct);
                let tt = self.eval_block(then);
                let et = else_.as_ref().map(|b| self.eval_block(b)).unwrap_or(false);
                // Divergent range-check guard: `if <checks on v> {
                // return/Err… }` validates v for the code after.
                if block_diverges(then) {
                    for v in checked_vars(cond) {
                        self.tainted.remove(&v);
                    }
                }
                tt || et
            }
            Expr::Match { scrutinee, arms, .. } => {
                let st = self.eval(scrutinee);
                let mut t = false;
                for Arm { bindings, guard, body } in arms {
                    self.bind(bindings, st);
                    if let Some(g) = guard {
                        self.eval(g);
                    }
                    t |= self.eval(body);
                }
                t
            }
            Expr::BlockExpr(b) => self.eval_block(b),
            Expr::Macro { name, args, size_arg, line, .. } => {
                let mut t = false;
                for a in args {
                    t |= self.eval(a);
                }
                if let Some(s) = size_arg {
                    if self.eval(s) {
                        self.sink(
                            *line,
                            format!("tainted value used as `{name}!` allocation size"),
                        );
                    }
                }
                t
            }
        }
    }

    fn eval_call(&mut self, path: &[String], args: &[Expr], line: u32) -> bool {
        let arg_taints: Vec<bool> = args.iter().map(|a| self.eval_arg(a, false)).collect();
        let any_tainted = arg_taints.iter().any(|&t| t);
        let name = path.last().map(String::as_str).unwrap_or("");

        // A call through a local binding (`compute()` where `compute` is
        // a parameter or `let`) invokes an unknown closure, not whatever
        // workspace fn happens to share the name.
        if path.len() == 1 && self.locals.contains(name) {
            return any_tainted || self.tainted.contains(name);
        }

        // Allocation sizing by free-fn/assoc-fn call (Vec::with_capacity).
        if ALLOC_SINKS.contains(&name) && any_tainted {
            self.sink(line, format!("tainted value sizes an allocation via `{name}`"));
        }

        if self.sanitizer_call(path, name) {
            return false;
        }
        if self.sources_live() && self.path_is_source(path) {
            return true;
        }

        let mut result = any_tainted;
        let candidates = self.table.resolve_call(path).to_vec();
        result |= self.consult_summaries(&candidates, name, &arg_taints, any_tainted, line);
        result
    }

    fn eval_method(&mut self, recv: &Expr, name: &str, args: &[Expr], line: u32) -> bool {
        let rt = self.eval(recv);
        // Closure args to iterator adapters see the receiver's taint on
        // their parameters (`items.iter().map(|item| …)`).
        let arg_taints: Vec<bool> = args.iter().map(|a| self.eval_arg(a, rt)).collect();
        let any_tainted = arg_taints.iter().any(|&t| t) || rt;

        if ALLOC_SINKS.contains(&name) && arg_taints.iter().any(|&t| t) {
            self.sink(line, format!("tainted value sizes an allocation via `{name}`"));
        }
        if self.sources_live()
            && SOURCE_METHODS.contains(&name)
            && RAW_INPUT_CRATES.contains(&self.crate_name)
        {
            return true;
        }
        if TAINT_STOPPERS.contains(&name) {
            return false;
        }
        if name.starts_with("try_") || name == "parse" {
            return false;
        }
        let mut result = any_tainted;
        // Method names resolve by bare name, which reaches across crates
        // far too eagerly (`.get`, `.value`, `.new` are everywhere); only
        // same-crate candidates carry their summaries into a method call.
        let candidates: Vec<usize> = self
            .table
            .resolve_name(name)
            .iter()
            .copied()
            .filter(|&c| self.table.fns[c].crate_name == self.crate_name)
            .collect();
        // A method call's "argument taint" includes the receiver (self).
        let mut full_taints = vec![rt];
        full_taints.extend(arg_taints.iter().copied());
        result |= self.consult_summaries(&candidates, name, &full_taints, any_tainted, line);
        if self.summary_validator(&candidates) {
            return false;
        }
        result
    }

    /// Evaluates one call argument; closures get `closure_param_taint`
    /// bound to their parameters.
    fn eval_arg(&mut self, a: &Expr, closure_param_taint: bool) -> bool {
        if let Expr::Closure { params, body, .. } = a {
            let saved: Vec<bool> = params.iter().map(|p| self.tainted.contains(p)).collect();
            self.bind(params, closure_param_taint);
            let t = self.eval(body);
            for (p, was) in params.iter().zip(saved) {
                if was {
                    self.tainted.insert(p.clone());
                } else {
                    self.tainted.remove(p);
                }
            }
            return t;
        }
        self.eval(a)
    }

    /// Folds callee summaries into the call result; fires call-site
    /// sinks for callees whose params reach sinks.
    fn consult_summaries(
        &mut self,
        candidates: &[usize],
        name: &str,
        arg_taints: &[bool],
        any_tainted: bool,
        line: u32,
    ) -> bool {
        let mut result = false;
        for &c in candidates {
            let s = &self.summaries[c];
            let f = &self.table.fns[c];
            // Infallible units constructor: the canonical R8 sink.
            if any_tainted
                && f.crate_name == UNITS_CRATE
                && !f.ret_result
                && ctor_like(&f.name)
            {
                let shown = f.qualified.as_deref().unwrap_or(&f.name);
                self.sink(
                    line,
                    format!(
                        "untrusted value reaches infallible constructor `{shown}` \
                         (use its fallible `try_`/validated form)"
                    ),
                );
            }
            if any_tainted {
                if let Some(sink) = &s.param_sink {
                    // Propagate the ROOT sink description through summary
                    // passes (no recursive wrapping); wrap exactly once
                    // when reporting.
                    let sink = sink.clone();
                    if matches!(self.mode, Mode::Report) {
                        self.findings.push((
                            line,
                            format!("tainted argument passed to `{name}` reaches: {sink}"),
                        ));
                    } else if self.param_sink.is_none() {
                        self.param_sink = Some(sink);
                    }
                }
            }
            if s.returns_source && self.sources_live() {
                result = true;
            }
            if s.flows_through && arg_taints.iter().any(|&t| t) {
                result = true;
            }
        }
        // A resolved validator cleans the result outright.
        if self.summary_validator(candidates) {
            return false;
        }
        result
    }

    fn summary_validator(&self, candidates: &[usize]) -> bool {
        !candidates.is_empty() && candidates.iter().all(|&c| self.summaries[c].validator)
    }

    fn sanitizer_call(&self, path: &[String], name: &str) -> bool {
        if name.starts_with("try_") || name == "parse" {
            return true;
        }
        let candidates = self.table.resolve_call(path);
        self.summary_validator(candidates)
    }

    fn path_is_source(&self, path: &[String]) -> bool {
        let name = path.last().map(String::as_str).unwrap_or("");
        if SOURCE_METHODS.contains(&name) {
            let qualified_json =
                path.len() >= 2 && path[path.len() - 2] == JSON_TYPE;
            if qualified_json || RAW_INPUT_CRATES.contains(&self.crate_name) {
                return true;
            }
        }
        for pat in SOURCE_PATHS {
            if path.len() >= pat.len() {
                let tail = &path[path.len() - pat.len()..];
                if tail.iter().map(String::as_str).eq(pat.iter().copied()) {
                    return true;
                }
            }
        }
        // Summary-derived: the path resolves only to source-returning fns.
        let candidates = self.table.resolve_call(path);
        !candidates.is_empty()
            && candidates.iter().all(|&c| self.summaries[c].returns_source)
    }
}

/// Is `new` / `from_*` / `per_*` — the constructor shapes units export?
fn ctor_like(name: &str) -> bool {
    name == "new" || name.starts_with("from_") || name.starts_with("per_")
}

/// Does this block unconditionally diverge (its last statement is a
/// `return`, or a `panic!`-family macro call)?
fn block_diverges(b: &Block) -> bool {
    match b.stmts.last() {
        Some(Stmt::Return { .. }) => true,
        Some(Stmt::Expr { value: Expr::Macro { name, .. }, .. }) => {
            matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
        }
        _ => false,
    }
}

/// Variables a guard condition checks: `Var` operands of comparison
/// operators, plus receivers of `is_*`-style predicate methods.
fn checked_vars(cond: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    collect_checked(cond, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context;
    use crate::lexer::lex;
    use crate::symbols::FileData;

    struct Owned {
        path: String,
        crate_name: String,
        tokens: Vec<crate::lexer::Token>,
        ctx: crate::context::FileContext,
    }

    fn prep(files: &[(&str, &str, &str)]) -> Vec<Owned> {
        files
            .iter()
            .map(|(path, krate, src)| {
                let tokens = lex(src);
                let ctx = context::analyze(&tokens);
                Owned {
                    path: (*path).to_string(),
                    crate_name: (*krate).to_string(),
                    tokens,
                    ctx,
                }
            })
            .collect()
    }

    fn build(owned: &[Owned]) -> SymbolTable {
        let data: Vec<FileData<'_>> = owned
            .iter()
            .map(|o| FileData {
                path: &o.path,
                crate_name: &o.crate_name,
                tokens: &o.tokens,
                ctx: &o.ctx,
            })
            .collect();
        SymbolTable::build(&data)
    }

    fn findings_in(owned: &[Owned], fn_name: &str) -> Vec<TaintFinding> {
        let table = build(owned);
        let summaries = summarize(&table);
        let i = table.fns.iter().position(|f| f.name == fn_name).unwrap();
        let crate_name = table.fns[i].crate_name.clone();
        let body = table.fns[i].body.as_ref().unwrap();
        let params = table.fns[i].param_names.clone();
        check_fn(&table, &summaries, &crate_name, &params, body)
    }

    #[test]
    fn json_accessor_to_infallible_ctor_fires() {
        let owned = prep(&[
            (
                "crates/units/src/lib.rs",
                "units",
                "impl Dollars {\n\
                     pub fn new(v: f64) -> Dollars { Dollars(v) }\n\
                     pub fn try_new(v: f64) -> Result<Dollars, E> { Ok(Dollars(v)) }\n\
                 }\n",
            ),
            (
                "crates/serve/src/http.rs",
                "serve",
                "fn handle(doc: &JsonValue) -> Dollars {\n\
                     let raw = doc.get(\"price\").and_then(JsonValue::as_f64).unwrap_or(0.0);\n\
                     Dollars::new(raw)\n\
                 }\n",
            ),
        ]);
        let f = findings_in(&owned, "handle");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Dollars::new"), "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn fallible_ctor_sanitizes() {
        let owned = prep(&[
            (
                "crates/units/src/lib.rs",
                "units",
                "impl Dollars {\n\
                     pub fn new(v: f64) -> Dollars { Dollars(v) }\n\
                     pub fn try_new(v: f64) -> Result<Dollars, E> { Ok(Dollars(v)) }\n\
                 }\n",
            ),
            (
                "crates/serve/src/http.rs",
                "serve",
                "fn handle(doc: &JsonValue) -> Result<Dollars, E> {\n\
                     let raw = doc.get(\"price\").and_then(JsonValue::as_f64).unwrap_or(0.0);\n\
                     Dollars::try_new(raw)\n\
                 }\n",
            ),
        ]);
        assert!(findings_in(&owned, "handle").is_empty());
    }

    #[test]
    fn divergent_range_guard_sanitizes() {
        let owned = prep(&[(
            "crates/serve/src/http.rs",
            "serve",
            "fn handle(doc: &JsonValue) -> Result<f64, E> {\n\
                 let v = doc.get(\"w\").and_then(JsonValue::as_f64).unwrap_or(0.0);\n\
                 if !v.is_finite() || v < 1.0 {\n\
                     return Err(E::Bad);\n\
                 }\n\
                 let idx = things[v as usize];\n\
                 Ok(idx)\n\
             }\n",
        )]);
        assert!(findings_in(&owned, "handle").is_empty());
    }

    #[test]
    fn tainted_index_fires_without_guard() {
        let owned = prep(&[(
            "crates/serve/src/http.rs",
            "serve",
            "fn handle(doc: &JsonValue) -> f64 {\n\
                 let v = doc.get(\"w\").and_then(JsonValue::as_f64).unwrap_or(0.0);\n\
                 things[v as usize]\n\
             }\n",
        )]);
        let f = findings_in(&owned, "handle");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("index"));
    }

    #[test]
    fn env_var_taints_and_alloc_sink_fires() {
        let owned = prep(&[(
            "crates/serve/src/lib.rs",
            "serve",
            "fn sized() -> Vec<u8> {\n\
                 let n = std::env::var(\"N\").unwrap_or_default();\n\
                 Vec::with_capacity(n)\n\
             }\n",
        )]);
        let f = findings_in(&owned, "sized");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("with_capacity"));
    }

    #[test]
    fn parse_sanitizes_env_input() {
        let owned = prep(&[(
            "crates/serve/src/lib.rs",
            "serve",
            "fn sized() -> Vec<u8> {\n\
                 let n: usize = std::env::var(\"N\").unwrap_or_default().parse().unwrap_or(8);\n\
                 Vec::with_capacity(n)\n\
             }\n",
        )]);
        assert!(findings_in(&owned, "sized").is_empty());
    }

    #[test]
    fn model_arithmetic_on_taint_fires_only_in_model_crates() {
        let src = "fn f(doc: &JsonValue) -> f64 {\n\
                       let v = doc.get(\"x\").and_then(JsonValue::as_f64).unwrap_or(0.0);\n\
                       v * 2.0\n\
                   }\n";
        let in_core = prep(&[("crates/core/src/lib.rs", "core", src)]);
        assert_eq!(findings_in(&in_core, "f").len(), 1);
        let in_serve = prep(&[("crates/serve/src/lib.rs", "serve", src)]);
        assert!(findings_in(&in_serve, "f").is_empty(), "serve arithmetic is not a sink");
    }

    #[test]
    fn taint_flows_through_helper_summaries() {
        let owned = prep(&[
            (
                "crates/units/src/lib.rs",
                "units",
                "impl Dollars { pub fn new(v: f64) -> Dollars { Dollars(v) } }\n",
            ),
            (
                "crates/serve/src/lib.rs",
                "serve",
                "fn fetch(doc: &JsonValue) -> f64 {\n\
                     doc.get(\"x\").and_then(JsonValue::as_f64).unwrap_or(0.0)\n\
                 }\n\
                 fn scale(x: f64) -> f64 { x + 1.0 }\n\
                 fn top(doc: &JsonValue) -> Dollars {\n\
                     let v = fetch(doc);\n\
                     Dollars::new(scale(v))\n\
                 }\n",
            ),
        ]);
        let table = build(&owned);
        let summaries = summarize(&table);
        let fetch = table.fns.iter().position(|f| f.name == "fetch").unwrap();
        let scale = table.fns.iter().position(|f| f.name == "scale").unwrap();
        assert!(summaries[fetch].returns_source, "fetch returns source taint");
        assert!(summaries[scale].flows_through, "scale passes taint through");
        let f = findings_in(&owned, "top");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Dollars::new"));
    }

    #[test]
    fn len_stops_taint() {
        let owned = prep(&[(
            "crates/serve/src/lib.rs",
            "serve",
            "fn f() -> Vec<u8> {\n\
                 let body = std::fs::read_to_string(\"x\").unwrap_or_default();\n\
                 let n = body.len();\n\
                 Vec::with_capacity(n)\n\
             }\n",
        )]);
        assert!(findings_in(&owned, "f").is_empty());
    }

    #[test]
    fn loop_carried_taint_is_found() {
        let owned = prep(&[(
            "crates/core/src/lib.rs",
            "core",
            "fn f(doc: &JsonValue) -> f64 {\n\
                 let mut acc = 0.0;\n\
                 for item in doc.items() {\n\
                     let v = item.get(\"x\").and_then(JsonValue::as_f64).unwrap_or(0.0);\n\
                     acc = acc + v;\n\
                 }\n\
                 acc * 2.0\n\
             }\n",
        )]);
        let f = findings_in(&owned, "f");
        assert!(!f.is_empty(), "accumulator taint reaches model arithmetic");
        assert!(f.iter().any(|x| x.line == 7), "{f:?}");
    }

    #[test]
    fn summary_pass_reports_param_sinks_at_call_site() {
        let owned = prep(&[
            (
                "crates/units/src/lib.rs",
                "units",
                "impl Wafers { pub fn new(v: f64) -> Wafers { Wafers(v) } }\n",
            ),
            (
                "crates/serve/src/lib.rs",
                "serve",
                "fn wrap(x: f64) -> Wafers { Wafers::new(x) }\n\
                 fn top(doc: &JsonValue) {\n\
                     let v = doc.get(\"x\").and_then(JsonValue::as_f64).unwrap_or(0.0);\n\
                     wrap(v);\n\
                 }\n",
            ),
        ]);
        let f = findings_in(&owned, "top");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("wrap"), "{f:?}");
        assert_eq!(f[0].line, 4);
    }
}

fn collect_checked(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Binary { op, lhs, rhs, .. } => {
            if matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=") {
                for side in [lhs, rhs] {
                    if let Some(v) = side.root_var() {
                        out.push(v.to_string());
                    }
                }
            }
            collect_checked(lhs, out);
            collect_checked(rhs, out);
        }
        Expr::Method { recv, name, .. } => {
            if name.starts_with("is_") || matches!(name.as_str(), "contains" | "starts_with" | "ends_with") {
                if let Some(v) = recv.root_var() {
                    out.push(v.to_string());
                }
            }
            collect_checked(recv, out);
        }
        Expr::Try { inner, .. } => collect_checked(inner, out),
        _ => {}
    }
}
