//! Inline suppression pragmas.
//!
//! Grammar (inside any comment):
//!
//! ```text
//! // nanocost-audit: allow(R1, R3, reason = "matrix inverse cannot fail here")
//! // nanocost-audit: allow-file(R3, reason = "calibration constants from Table A1")
//! ```
//!
//! An `allow` pragma that shares a line with code suppresses the named rules
//! on that line; an `allow` on its own line suppresses them on the next line
//! that carries code. `allow-file` suppresses the named rules for the whole
//! file. The `reason` is mandatory: a pragma without a stated reason (or one
//! naming an unknown rule) is itself reported under the meta-rule `P0`, and
//! suppresses nothing.
//!
//! Suppression is *accounted*: each pragma records which of its rules
//! actually masked a finding, and a rule that masked nothing is reported
//! as stale under the meta-rule `P1` (see [`Suppressions::stale`]), so a
//! waiver cannot outlive the code it excused.

use crate::diagnostics::RuleId;
use crate::lexer::{Token, TokenKind};
use std::collections::HashSet;

/// What a line-scoped or file-wide pragma applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// `allow-file(...)`: the whole file.
    File,
    /// `allow(...)`: one source line.
    Line(u32),
}

/// One well-formed pragma.
#[derive(Debug)]
struct Pragma {
    /// Line of the pragma comment itself (where `P1` reports).
    line: u32,
    /// Rules the pragma names.
    rules: Vec<RuleId>,
    /// Scope.
    target: Target,
}

/// Parsed suppression state for one file, with per-rule usage accounting.
#[derive(Debug, Default)]
pub struct Suppressions {
    pragmas: Vec<Pragma>,
    /// Per pragma: the subset of its rules that suppressed ≥1 finding.
    used: Vec<HashSet<RuleId>>,
    /// Pragmas that failed to parse: (line, explanation).
    pub malformed: Vec<(u32, String)>,
}

impl Suppressions {
    /// Is `rule` suppressed at `line`? Read-only (no usage accounting).
    pub fn allows(&self, rule: RuleId, line: u32) -> bool {
        self.pragmas.iter().any(|p| p.rules.contains(&rule) && p.covers(line))
    }

    /// Like [`Suppressions::allows`], but records the hit against every
    /// covering pragma so stale pragmas can be reported afterwards.
    pub fn suppress(&mut self, rule: RuleId, line: u32) -> bool {
        let mut hit = false;
        for (i, p) in self.pragmas.iter().enumerate() {
            if p.rules.contains(&rule) && p.covers(line) {
                self.used[i].insert(rule);
                hit = true;
            }
        }
        hit
    }

    /// Stale entries after all findings were run through
    /// [`Suppressions::suppress`]: for each pragma, the rules it names
    /// that suppressed nothing. Returned as (pragma line, stale rules);
    /// pragmas whose every rule was used do not appear.
    pub fn stale(&self) -> Vec<(u32, Vec<RuleId>)> {
        self.pragmas
            .iter()
            .zip(&self.used)
            .filter_map(|(p, used)| {
                let unused: Vec<RuleId> =
                    p.rules.iter().copied().filter(|r| !used.contains(r)).collect();
                if unused.is_empty() {
                    None
                } else {
                    Some((p.line, unused))
                }
            })
            .collect()
    }
}

impl Pragma {
    fn covers(&self, line: u32) -> bool {
        match self.target {
            Target::File => true,
            Target::Line(l) => l == line,
        }
    }
}

/// The marker every pragma starts with.
const MARKER: &str = "nanocost-audit:";

/// Extracts suppressions from a token stream.
///
/// Line attachment: a pragma comment whose line also carries a non-trivia
/// token applies to its own line; otherwise it applies to the line of the
/// next non-trivia token.
pub fn collect(tokens: &[Token]) -> Suppressions {
    let mut out = Suppressions::default();
    for (idx, tok) in tokens.iter().enumerate() {
        // Only plain comments carry pragmas: doc comments are rendered
        // documentation and may legitimately *describe* the pragma syntax.
        let text = match &tok.kind {
            TokenKind::Comment(t) => t,
            _ => continue,
        };
        let Some(at) = text.find(MARKER) else { continue };
        let body = text[at + MARKER.len()..].trim();
        match parse_pragma(body) {
            Ok((rules, file_wide)) => {
                let target = if file_wide {
                    Target::File
                } else {
                    Target::Line(target_line(tokens, idx))
                };
                out.pragmas.push(Pragma { line: tok.line, rules, target });
                out.used.push(HashSet::new());
            }
            Err(why) => out.malformed.push((tok.line, why)),
        }
    }
    out
}

/// Which line a line-scoped pragma at token `idx` applies to.
fn target_line(tokens: &[Token], idx: usize) -> u32 {
    let own = tokens[idx].line;
    let code_on_own_line = tokens[..idx]
        .iter()
        .rev()
        .take_while(|t| t.line == own)
        .any(|t| !t.is_trivia());
    if code_on_own_line {
        return own;
    }
    tokens[idx + 1..]
        .iter()
        .find(|t| !t.is_trivia())
        .map(|t| t.line)
        .unwrap_or(own)
}

/// Parses `allow(R1, R2, reason = "…")` / `allow-file(…)`.
/// Returns the rules and whether the pragma is file-wide.
fn parse_pragma(body: &str) -> Result<(Vec<RuleId>, bool), String> {
    let (file_wide, rest) = if let Some(r) = body.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!("unknown pragma `{body}`; expected allow(...) or allow-file(...)"));
    };
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        .ok_or_else(|| "pragma arguments must be parenthesized".to_string())?;

    let mut rules = Vec::new();
    let mut has_reason = false;
    for part in split_args(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(value) = part.strip_prefix("reason") {
            let value = value.trim().strip_prefix('=').map(str::trim);
            match value {
                Some(v) if v.starts_with('"') && v.ends_with('"') && v.len() >= 2 => {
                    has_reason = !v.trim_matches('"').trim().is_empty();
                }
                _ => return Err("reason must be a quoted string".into()),
            }
        } else if let Some(rule) = RuleId::parse(part) {
            rules.push(rule);
        } else {
            return Err(format!("unknown rule id `{part}`"));
        }
    }
    if rules.is_empty() {
        return Err("pragma names no rules".into());
    }
    if !has_reason {
        return Err("pragma is missing a reason = \"…\"".into());
    }
    Ok((rules, file_wide))
}

/// Splits pragma arguments on commas that are outside quoted strings.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                cur.push(c);
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        escaped = false;
        cur.push(c);
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn same_line_pragma_targets_its_line() {
        let toks = lex("let x = v.unwrap(); // nanocost-audit: allow(R1, reason = \"checked above\")\nlet y = 1;");
        let s = collect(&toks);
        assert!(s.allows(RuleId::R1, 1));
        assert!(!s.allows(RuleId::R1, 2));
    }

    #[test]
    fn own_line_pragma_targets_next_code_line() {
        let src = "// nanocost-audit: allow(R2, reason = \"exact representable\")\nif a == 0.5 {}\n";
        let s = collect(&lex(src));
        assert!(s.allows(RuleId::R2, 2));
        assert!(!s.allows(RuleId::R2, 1));
    }

    #[test]
    fn own_line_pragma_skips_comment_lines() {
        let src = "// nanocost-audit: allow(R3, reason = \"paper constant\")\n// explanatory note\nlet k = 0.7;\n";
        let s = collect(&lex(src));
        assert!(s.allows(RuleId::R3, 3));
    }

    #[test]
    fn file_pragma_covers_everything() {
        let src = "// nanocost-audit: allow-file(R3, reason = \"calibration module\")\nfn f() { 0.123; }\n";
        let s = collect(&lex(src));
        assert!(s.allows(RuleId::R3, 999));
        assert!(!s.allows(RuleId::R1, 999));
    }

    #[test]
    fn doc_comments_do_not_carry_pragmas() {
        let src = "/// nanocost-audit: allow(R1, reason = \"just documentation\")\nfn f() {}\n";
        let s = collect(&lex(src));
        assert!(!s.allows(RuleId::R1, 2));
        assert!(s.malformed.is_empty());
    }

    #[test]
    fn multiple_rules_in_one_pragma() {
        let src = "// nanocost-audit: allow(R1, R2, reason = \"test shim\")\ncall();\n";
        let s = collect(&lex(src));
        assert!(s.allows(RuleId::R1, 2) && s.allows(RuleId::R2, 2));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let s = collect(&lex("// nanocost-audit: allow(R1)\nx();\n"));
        assert!(!s.allows(RuleId::R1, 2));
        assert_eq!(s.malformed.len(), 1);
        assert!(s.malformed[0].1.contains("reason"));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let s = collect(&lex("// nanocost-audit: allow(R99, reason = \"x\")\nx();\n"));
        assert_eq!(s.malformed.len(), 1);
    }

    #[test]
    fn new_rule_ids_are_suppressible() {
        let s = collect(&lex("// nanocost-audit: allow(R8, R10, reason = \"seeded fixture\")\nx();\n"));
        assert!(s.malformed.is_empty());
        assert!(s.allows(RuleId::R8, 2));
        assert!(s.allows(RuleId::R10, 2));
    }

    #[test]
    fn comma_inside_reason_is_not_a_separator() {
        let src = "// nanocost-audit: allow(R1, reason = \"a, b, and c\")\nx();\n";
        let s = collect(&lex(src));
        assert!(s.allows(RuleId::R1, 2));
        assert!(s.malformed.is_empty());
    }

    #[test]
    fn unused_pragma_rules_are_stale() {
        let src = "x.unwrap(); // nanocost-audit: allow(R1, R2, reason = \"shim\")\n";
        let mut s = collect(&lex(src));
        assert!(s.suppress(RuleId::R1, 1));
        let stale = s.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0], (1, vec![RuleId::R2]), "R2 suppressed nothing");
    }

    #[test]
    fn fully_used_pragma_is_not_stale() {
        let src = "x.unwrap(); // nanocost-audit: allow(R1, reason = \"shim\")\n";
        let mut s = collect(&lex(src));
        assert!(s.suppress(RuleId::R1, 1));
        assert!(s.stale().is_empty());
    }

    #[test]
    fn never_hit_file_pragma_is_stale() {
        let src = "// nanocost-audit: allow-file(R6, reason = \"demo\")\nfn f() {}\n";
        let mut s = collect(&lex(src));
        assert!(!s.suppress(RuleId::R1, 2));
        assert_eq!(s.stale(), vec![(1, vec![RuleId::R6])]);
    }
}
