//! A lightweight Rust lexer.
//!
//! Tokenizes `.rs` source into the small vocabulary the audit rules need:
//! identifiers, integer/float literals, string/char literals, punctuation
//! (with the compound operators `==`, `!=`, … kept whole), and comments
//! (with doc comments distinguished, since rule R5 reads them and the
//! pragma layer reads ordinary comments).
//!
//! It is deliberately *not* a full grammar: no parse tree, just a flat token
//! stream with line numbers. That is enough to state every invariant in
//! rules R1–R5 and keeps the pass dependency-free.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `pub`, `unwrap`, …).
    Ident(String),
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime(String),
    /// An integer literal, raw text including any suffix (`42`, `0xFF_u8`).
    Int(String),
    /// A floating-point literal, raw text including any suffix
    /// (`0.25`, `1e-9`, `2.0f64`).
    Float(String),
    /// A string literal (regular, raw, or byte); carries the raw inner
    /// text (between the quotes, escapes unresolved) so rule R7 can
    /// check span/metric name charsets.
    Str(String),
    /// A character or byte literal.
    Char,
    /// Punctuation; compound operators are a single token (`==`, `->`, `..=`).
    Punct(String),
    /// A non-doc comment (`// …` or `/* … */`) with its text.
    Comment(String),
    /// An outer doc comment (`/// …`, `/** … */`) with its text; attaches
    /// to the item that follows.
    DocComment(String),
    /// An inner doc comment (`//! …`, `/*! … */`) with its text; documents
    /// the enclosing module and must never attach to the next item.
    InnerDoc(String),
}

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class and payload.
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }

    /// True if this token is the given punctuation.
    pub fn is_punct(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Punct(p) if p == s)
    }

    /// True for comment or doc-comment tokens.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Comment(_) | TokenKind::DocComment(_) | TokenKind::InnerDoc(_)
        )
    }
}

/// Compound operators, longest first so greedy matching is correct.
const COMPOUND_OPS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes Rust source into a flat token stream.
///
/// Unterminated constructs (string, block comment) consume to end of input
/// rather than erroring: the audit must keep going on odd files.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer { src: source.as_bytes(), text: source, pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        // A shebang (`#!/usr/bin/env …`) is legal on line 1 of a Rust
        // source file and is not a token; `#![…]` is an inner attribute
        // and must still lex normally.
        if self.text.starts_with("#!") && !self.text.starts_with("#![") {
            while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                self.pos += 1;
            }
        }
        while self.pos < self.src.len() {
            let start_line = self.line;
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start_line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start_line),
                b'r' if self.raw_string_ahead(0) => self.raw_string(start_line),
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.string(start_line);
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(1) => {
                    self.pos += 1;
                    self.raw_string(start_line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_or_lifetime(start_line);
                }
                b'"' => self.string(start_line),
                b'\'' => self.char_or_lifetime(start_line),
                _ if c.is_ascii_digit() => self.number(start_line),
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(start_line),
                _ => self.punct(start_line),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    /// Consumes to end of line; classifies `///` and `//!` as doc comments
    /// (`////…` is an ordinary comment, as in rustc).
    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = &self.text[start..self.pos];
        let body = text.trim_start_matches(['/', '!']).to_string();
        if text.starts_with("//!") {
            self.push(TokenKind::InnerDoc(body), line);
        } else if text.starts_with("///") && !text.starts_with("////") {
            self.push(TokenKind::DocComment(body), line);
        } else {
            self.push(TokenKind::Comment(text[2..].to_string()), line);
        }
    }

    /// Consumes a (possibly nested) block comment.
    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        let is_doc = self.text[self.pos..].starts_with("/**") && !self.text[self.pos..].starts_with("/***")
            || self.text[self.pos..].starts_with("/*!");
        let is_inner = self.text[self.pos..].starts_with("/*!");
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if self.text[self.pos..].starts_with("/*") {
                depth += 1;
                self.pos += 2;
            } else if self.text[self.pos..].starts_with("*/") {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        let text = self.text[start..self.pos]
            .trim_start_matches(['/', '*', '!'])
            .trim_end_matches(['/', '*'])
            .to_string();
        if is_inner {
            self.push(TokenKind::InnerDoc(text), line);
        } else if is_doc {
            self.push(TokenKind::DocComment(text), line);
        } else {
            self.push(TokenKind::Comment(text), line);
        }
    }

    /// Is `r"` or `r#…#"` starting at `pos + offset`?
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = self.pos + offset + 1;
        while self.src.get(i) == Some(&b'#') {
            i += 1;
        }
        self.src.get(i) == Some(&b'"')
    }

    /// Consumes `r#"…"#`-style raw strings.
    fn raw_string(&mut self, line: u32) {
        self.pos += 1; // past 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // past opening quote
        let content_start = self.pos;
        let mut content_end = self.src.len();
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let close = (1..=hashes)
                        .all(|k| self.peek(k) == Some(b'#'));
                    if close {
                        content_end = self.pos;
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        let content = self.text[content_start..content_end].to_string();
        self.push(TokenKind::Str(content), line);
    }

    /// Consumes a regular `"…"` string, honoring escapes.
    fn string(&mut self, line: u32) {
        self.pos += 1;
        let content_start = self.pos;
        let mut content_end = self.src.len();
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => self.pos += 2,
                Some(b'"') => {
                    content_end = self.pos;
                    self.pos += 1;
                    break;
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        let content = self.text[content_start..content_end.min(self.src.len())].to_string();
        self.push(TokenKind::Str(content), line);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime).
    fn char_or_lifetime(&mut self, line: u32) {
        // A lifetime is `'` + ident not followed by another `'`.
        let after = self.peek(1);
        let is_ident_start = matches!(after, Some(c) if c == b'_' || c.is_ascii_alphabetic());
        if is_ident_start {
            // Scan the identifier; if it terminates with a quote it was a
            // char literal like 'a' — otherwise a lifetime.
            let mut i = self.pos + 1;
            while matches!(self.src.get(i), Some(c) if *c == b'_' || c.is_ascii_alphanumeric()) {
                i += 1;
            }
            if self.src.get(i) != Some(&b'\'') {
                let name = self.text[self.pos + 1..i].to_string();
                self.pos = i;
                self.push(TokenKind::Lifetime(name), line);
                return;
            }
        }
        // Char literal: consume until the closing quote, honoring escapes.
        self.pos += 1;
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => self.pos += 2,
                Some(b'\'') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
            }
        }
        self.push(TokenKind::Char, line);
    }

    /// Consumes a numeric literal, deciding int vs float.
    fn number(&mut self, line: u32) {
        let start = self.pos;
        let mut is_float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        {
            self.pos += 2;
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
        } else {
            while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
                self.pos += 1;
            }
            // Fractional part — but `1..x` is int + range and `1.method()` is
            // int + field/method access.
            if self.peek(0) == Some(b'.') {
                let next = self.peek(1);
                let range = next == Some(b'.');
                let field = matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic());
                if !range && !field {
                    is_float = true;
                    self.pos += 1;
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
                        self.pos += 1;
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let mut k = 1;
                if matches!(self.peek(1), Some(b'+' | b'-')) {
                    k = 2;
                }
                if matches!(self.peek(k), Some(c) if c.is_ascii_digit()) {
                    is_float = true;
                    self.pos += k;
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
                        self.pos += 1;
                    }
                }
            }
            // Type suffix (`f64`, `u32`, `usize`, …).
            let suffix_start = self.pos;
            while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                self.pos += 1;
            }
            let suffix = &self.text[suffix_start..self.pos];
            if suffix.starts_with("f32") || suffix.starts_with("f64") {
                is_float = true;
            }
        }
        let text = self.text[start..self.pos].to_string();
        if is_float {
            self.push(TokenKind::Float(text), line);
        } else {
            self.push(TokenKind::Int(text), line);
        }
    }

    /// Consumes an identifier or keyword (including `r#ident`).
    fn ident(&mut self, line: u32) {
        let start = self.pos;
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        let name = self.text[start..self.pos].trim_start_matches("r#").to_string();
        self.push(TokenKind::Ident(name), line);
    }

    /// Consumes one punctuation token, longest compound operator first.
    fn punct(&mut self, line: u32) {
        for op in COMPOUND_OPS {
            if self.text[self.pos..].starts_with(op) {
                self.pos += op.len();
                self.push(TokenKind::Punct((*op).to_string()), line);
                return;
            }
        }
        let ch = self.text[self.pos..].chars().next().unwrap_or('\u{FFFD}');
        self.pos += ch.len_utf8();
        self.push(TokenKind::Punct(ch.to_string()), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_idents_and_puncts() {
        let ks = kinds("fn a() -> f64 { a == b }");
        assert!(ks.contains(&TokenKind::Ident("fn".into())));
        assert!(ks.contains(&TokenKind::Punct("->".into())));
        assert!(ks.contains(&TokenKind::Punct("==".into())));
    }

    #[test]
    fn distinguishes_int_from_float() {
        assert_eq!(kinds("42"), vec![TokenKind::Int("42".into())]);
        assert_eq!(kinds("42.5"), vec![TokenKind::Float("42.5".into())]);
        assert_eq!(kinds("1e-9"), vec![TokenKind::Float("1e-9".into())]);
        assert_eq!(kinds("2f64"), vec![TokenKind::Float("2f64".into())]);
        assert_eq!(kinds("0xFF"), vec![TokenKind::Int("0xFF".into())]);
        assert_eq!(
            kinds("0..10"),
            vec![
                TokenKind::Int("0".into()),
                TokenKind::Punct("..".into()),
                TokenKind::Int("10".into())
            ]
        );
    }

    #[test]
    fn range_inclusive_after_int_stays_int() {
        assert_eq!(
            kinds("0..=9"),
            vec![
                TokenKind::Int("0".into()),
                TokenKind::Punct("..=".into()),
                TokenKind::Int("9".into())
            ]
        );
    }

    #[test]
    fn distinguishes_char_from_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'a"), vec![TokenKind::Lifetime("a".into())]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Char]);
        let ks = kinds("&'static str");
        assert!(ks.contains(&TokenKind::Lifetime("static".into())));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        assert_eq!(
            kinds(r#""a == b // not a comment""#),
            vec![TokenKind::Str("a == b // not a comment".into())]
        );
        assert_eq!(
            kinds(r##"r#"raw "quote" inside"#"##),
            vec![TokenKind::Str(r#"raw "quote" inside"#.into())]
        );
        assert_eq!(kinds(r#"b"bytes""#), vec![TokenKind::Str("bytes".into())]);
    }

    #[test]
    fn string_payload_keeps_escapes_raw() {
        assert_eq!(kinds(r#""a\nb""#), vec![TokenKind::Str(r"a\nb".into())]);
        // Unterminated strings consume to end of input without panicking.
        assert_eq!(kinds("\"open"), vec![TokenKind::Str("open".into())]);
    }

    #[test]
    fn comments_are_classified() {
        assert!(matches!(&kinds("// plain")[0], TokenKind::Comment(c) if c.trim() == "plain"));
        assert!(matches!(&kinds("/// doc")[0], TokenKind::DocComment(c) if c.trim() == "doc"));
        assert!(matches!(&kinds("//! inner")[0], TokenKind::InnerDoc(_)));
        assert!(matches!(&kinds("/* block */")[0], TokenKind::Comment(_)));
        assert!(matches!(&kinds("/* outer /* nested */ rest */")[0], TokenKind::Comment(_)));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("\"two\nlines\" x");
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn underscored_numbers() {
        assert_eq!(kinds("1_000_000"), vec![TokenKind::Int("1_000_000".into())]);
        assert_eq!(kinds("1_0.5_0"), vec![TokenKind::Float("1_0.5_0".into())]);
    }

    #[test]
    fn method_call_on_int_is_not_float() {
        let ks = kinds("1.max(2)");
        assert_eq!(ks[0], TokenKind::Int("1".into()));
    }
}
