//! Satellite check for the scenario cache: a cached figure-4 sweep must
//! be provenance-indistinguishable from the uncached one.
//!
//! Both full sweeps (panels 4a and 4b, curves plus optima) run under a
//! thread-local trace collector; their Eq.-provenance fingerprints must
//! be bit-identical to each other *and* to the blessed `figure4` entry
//! in `FINGERPRINTS.json` — proving the cache's provenance replay is
//! transparent to the CI fingerprint gate.

use nanocost_bench::figures::figure4_panel_cached;
use nanocost_core::{Figure4Scenario, ScenarioCache, TotalCostModel};
use nanocost_fab::MaskCostModel;
use nanocost_sentinel::fingerprint::{
    diff_pipeline, fingerprint_jsonl, parse_fingerprint_file, PipelineFingerprint,
};
use nanocost_trace::export::{Exporter, JsonlExporter};
use nanocost_trace::{with_collector, Record};

fn to_jsonl(records: &[Record]) -> String {
    let mut exporter = JsonlExporter;
    let mut out = String::new();
    for r in records {
        out.push_str(&exporter.render(r));
        out.push('\n');
    }
    out
}

fn fingerprint_of(records: &[Record]) -> PipelineFingerprint {
    fingerprint_jsonl(&to_jsonl(records)).expect("capture must fingerprint cleanly")
}

#[test]
fn cached_and_uncached_sweeps_share_the_blessed_fingerprint() {
    let scenarios = [Figure4Scenario::paper_4a(), Figure4Scenario::paper_4b()];

    let (uncached_records, _) = with_collector(|| {
        let model = TotalCostModel::paper_figure4();
        let masks = MaskCostModel::default();
        for scenario in &scenarios {
            scenario.chart(&model, &masks).expect("uncached chart");
            for &um in &scenario.lambdas_um {
                scenario.optimum(&model, &masks, um).expect("uncached optimum");
            }
        }
    });

    let cache = ScenarioCache::paper_figure4();
    let (cached_records, _) = with_collector(|| {
        for scenario in &scenarios {
            figure4_panel_cached(&cache, scenario).expect("cached panel");
        }
    });
    assert!(
        cache.stats().hits > 0,
        "the shared cache must serve some of the sweep: {:?}",
        cache.stats()
    );

    let uncached = fingerprint_of(&uncached_records);
    let cached = fingerprint_of(&cached_records);
    let drift = diff_pipeline(&uncached, &cached);
    assert!(
        drift.is_empty(),
        "cached sweep fingerprint drifted from uncached:\n{}",
        drift.join("\n")
    );

    let blessed_text = std::fs::read_to_string("../../FINGERPRINTS.json")
        .expect("FINGERPRINTS.json at the workspace root");
    let blessed = parse_fingerprint_file(&blessed_text).expect("parsable fingerprint file");
    let figure4 = blessed
        .pipelines
        .get("figure4")
        .expect("a blessed figure4 pipeline");
    let drift = diff_pipeline(figure4, &cached);
    assert!(
        drift.is_empty(),
        "cached sweep drifted from blessed FINGERPRINTS.json:\n{}",
        drift.join("\n")
    );
}
