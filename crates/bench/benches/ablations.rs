//! Criterion bench: the extension experiments (EXT-U, EXT-TEST, EXT-VOL,
//! EXT-GEN) as end-to-end pipelines.

use std::hint::black_box;

use nanocost_bench::harness::{criterion_group, criterion_main, Criterion};
use nanocost_bench::figures::{
    generalized_vs_simple, optimum_surface_study, test_cost_study, time_to_market_study,
    utilization_study, wafer_map_study,
};

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("ablations/utilization_study", |b| {
        b.iter(|| black_box(utilization_study().expect("valid")))
    });
    c.bench_function("ablations/test_cost_study", |b| {
        b.iter(|| black_box(test_cost_study().expect("valid")))
    });
    c.bench_function("ablations/generalized_vs_simple", |b| {
        b.iter(|| black_box(generalized_vs_simple().expect("valid")))
    });
    let mut group = c.benchmark_group("ablations/optimum_surface");
    group.sample_size(10);
    group.bench_function("5x4_grid", |b| {
        b.iter(|| black_box(optimum_surface_study().expect("valid")))
    });
    group.finish();

    let mut heavy = c.benchmark_group("ablations/heavy");
    heavy.sample_size(10);
    heavy.bench_function("wafer_map_study", |b| {
        b.iter(|| black_box(wafer_map_study().expect("valid")))
    });
    heavy.bench_function("time_to_market_study", |b| {
        b.iter(|| black_box(time_to_market_study().expect("valid")))
    });
    heavy.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
