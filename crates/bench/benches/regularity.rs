//! Criterion bench: layout generation and pattern-extraction scaling
//! (EXT-REG).

use std::hint::black_box;

use nanocost_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nanocost_layout::{
    complexity, MemoryArrayGenerator, Netlist, Placer, RandomBlockGenerator, RegularityAnalysis,
};

fn bench_regularity(c: &mut Criterion) {
    let mut gen_group = c.benchmark_group("regularity/generate");
    gen_group.sample_size(20);
    gen_group.bench_function("memory_32x48", |b| {
        b.iter(|| {
            black_box(
                MemoryArrayGenerator::new(32, 48)
                    .expect("valid")
                    .generate()
                    .expect("valid"),
            )
        })
    });
    gen_group.bench_function("random_block", |b| {
        b.iter(|| {
            black_box(
                RandomBlockGenerator::new(692, 416, 9280, 7)
                    .expect("valid")
                    .generate()
                    .expect("valid"),
            )
        })
    });
    gen_group.finish();

    // Extraction cost scales with layout size: sweep array dimensions.
    let window = RegularityAnalysis::tiling_rect(14, 13).expect("valid");
    let mut scale_group = c.benchmark_group("regularity/extract");
    scale_group.sample_size(20);
    for &side in &[8usize, 16, 32] {
        let layout = MemoryArrayGenerator::new(side, side)
            .expect("valid")
            .generate()
            .expect("valid");
        scale_group.bench_with_input(
            BenchmarkId::from_parameter(side * side),
            &layout,
            |b, layout| b.iter(|| black_box(window.analyze(layout.grid()).expect("fits"))),
        );
    }
    scale_group.finish();

    let layout = MemoryArrayGenerator::new(24, 24)
        .expect("valid")
        .generate()
        .expect("valid");
    c.bench_function("regularity/rle_complexity", |b| {
        b.iter(|| black_box(complexity(layout.grid())))
    });

    let netlist = Netlist::random(120, 200, 7).expect("valid");
    let mut place_group = c.benchmark_group("regularity/placer");
    place_group.sample_size(10);
    place_group.bench_function("anneal_120_cells", |b| {
        b.iter(|| {
            black_box(
                Placer::with_die_width(600)
                    .place(&netlist)
                    .expect("valid"),
            )
        })
    });
    place_group.finish();
}

criterion_group!(benches, bench_regularity);
criterion_main!(benches);
