//! Criterion bench: raw cost-model evaluation throughput (eqs. 3, 4, 7).

use std::hint::black_box;

use nanocost_bench::harness::{criterion_group, criterion_main, Criterion};
use nanocost_core::{
    DesignPoint, GeneralizedCostModel, ManufacturingCostModel, TotalCostModel,
};
use nanocost_units::{
    DecompressionIndex, Dollars, FeatureSize, TransistorCount, WaferCount, Yield,
};

fn bench_cost_models(c: &mut Criterion) {
    let lambda = FeatureSize::from_microns(0.18).expect("valid");
    let sd = DecompressionIndex::new(300.0).expect("valid");
    let transistors = TransistorCount::from_millions(10.0);
    let volume = WaferCount::new(20_000).expect("valid");
    let y = Yield::new(0.8).expect("valid");

    let eq3 = ManufacturingCostModel::paper_anchor();
    c.bench_function("cost_model/eq3_manufacturing", |b| {
        b.iter(|| black_box(eq3.transistor_cost(black_box(lambda), black_box(sd))))
    });

    let eq4 = TotalCostModel::paper_figure4();
    c.bench_function("cost_model/eq4_total", |b| {
        b.iter(|| {
            black_box(
                eq4.transistor_cost(
                    black_box(lambda),
                    black_box(sd),
                    transistors,
                    volume,
                    y,
                    Dollars::new(200_000.0),
                )
                .expect("in domain"),
            )
        })
    });

    let eq7 = GeneralizedCostModel::nanometer_default();
    let point = DesignPoint {
        lambda,
        sd,
        transistors,
        volume,
    };
    c.bench_function("cost_model/eq7_generalized", |b| {
        b.iter(|| black_box(eq7.evaluate(black_box(point)).expect("in domain")))
    });

    c.bench_function("cost_model/eq7_optimum_search", |b| {
        b.iter(|| {
            black_box(
                nanocost_core::optimal_sd_generalized(
                    &eq7, lambda, transistors, volume, 105.0, 2_000.0,
                )
                .expect("valid bracket"),
            )
        })
    });
}

criterion_group!(benches, bench_cost_models);
criterion_main!(benches);
