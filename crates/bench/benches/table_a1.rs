//! Criterion bench: Table A1 regeneration (dataset construction, density
//! recomputation, rendering).

use std::hint::black_box;

use nanocost_bench::harness::{criterion_group, criterion_main, Criterion};
use nanocost_bench::figures::table_a1_rows;
use nanocost_bench::report::render_table_a1;

fn bench_table_a1(c: &mut Criterion) {
    c.bench_function("table_a1/build_dataset", |b| {
        b.iter(|| black_box(table_a1_rows()))
    });
    let rows = table_a1_rows();
    c.bench_function("table_a1/recompute_all_sd", |b| {
        b.iter(|| {
            let total: f64 = rows
                .iter()
                .map(|r| r.effective_sd_logic().squares())
                .sum();
            black_box(total)
        })
    });
    c.bench_function("table_a1/render", |b| {
        b.iter(|| black_box(render_table_a1(&rows)))
    });
}

criterion_group!(benches, bench_table_a1);
criterion_main!(benches);
