//! Criterion bench: one benchmark per paper figure, timing the full
//! regeneration pipeline behind each exhibit.

use std::hint::black_box;

use nanocost_bench::harness::{criterion_group, criterion_main, Criterion};
use nanocost_bench::figures::{figure1, figure2, figure3_points, figure4_panel};
use nanocost_core::Figure4Scenario;

fn bench_figures(c: &mut Criterion) {
    c.bench_function("figures/fig1_device_scatter", |b| {
        b.iter(|| black_box(figure1().expect("dataset is valid")))
    });
    c.bench_function("figures/fig2_itrs_sd", |b| {
        b.iter(|| black_box(figure2().expect("roadmap is valid")))
    });
    c.bench_function("figures/fig3_cost_contradiction", |b| {
        b.iter(|| black_box(figure3_points().expect("roadmap is valid")))
    });
    let mut g = c.benchmark_group("figures/fig4");
    g.sample_size(20);
    g.bench_function("panel_a_sweep_and_optima", |b| {
        b.iter(|| black_box(figure4_panel(&Figure4Scenario::paper_4a()).expect("valid")))
    });
    g.bench_function("panel_b_sweep_and_optima", |b| {
        b.iter(|| black_box(figure4_panel(&Figure4Scenario::paper_4b()).expect("valid")))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
