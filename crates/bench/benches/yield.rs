//! Criterion bench: yield-model evaluation throughput.

use std::hint::black_box;

use nanocost_bench::harness::{criterion_group, criterion_main, Criterion};
use nanocost_fab::WaferSpec;
use nanocost_numeric::Sampler;
use nanocost_units::{Area, DecompressionIndex, FeatureSize, TransistorCount, WaferCount};
use nanocost_yield::{
    critical_scan, optimal_spares, DefectDensity, DefectProcess, DefectSizeDistribution,
    MurphyModel, NegativeBinomialModel, PoissonModel, SeedsModel, WaferMapSimulator, YieldModel,
    YieldSurface,
};

fn bench_yield(c: &mut Criterion) {
    let area = Area::from_cm2(1.5);
    let d0 = DefectDensity::per_cm2(0.6).expect("valid");
    let models: Vec<(&str, Box<dyn YieldModel>)> = vec![
        ("poisson", Box::new(PoissonModel)),
        ("murphy", Box::new(MurphyModel)),
        ("seeds", Box::new(SeedsModel)),
        (
            "negative_binomial",
            Box::new(NegativeBinomialModel::new(2.0).expect("valid")),
        ),
    ];
    for (name, model) in &models {
        c.bench_function(&format!("yield/{name}"), |b| {
            b.iter(|| black_box(model.die_yield(black_box(area), black_box(d0))))
        });
    }

    let surface = YieldSurface::nanometer_default();
    let lambda = FeatureSize::from_microns(0.18).expect("valid");
    let sd = DecompressionIndex::new(300.0).expect("valid");
    let n = TransistorCount::from_millions(10.0);
    let v = WaferCount::new(50_000).expect("valid");
    c.bench_function("yield/composite_surface", |b| {
        b.iter(|| black_box(surface.evaluate(lambda, sd, n, v)))
    });

    let sim = WaferMapSimulator::new(WaferSpec::standard_200mm(), Area::from_cm2(1.5), 0.5)
        .expect("valid");
    let mut group = c.benchmark_group("yield/wafer_map_sim");
    group.sample_size(10);
    group.bench_function("uniform_10_wafers", |b| {
        b.iter(|| {
            let mut s = Sampler::seeded(1);
            black_box(sim.simulate(&mut s, DefectProcess::Uniform { density: d0 }, 10))
        })
    });
    group.bench_function("clustered_10_wafers", |b| {
        b.iter(|| {
            let mut s = Sampler::seeded(1);
            black_box(sim.simulate(
                &mut s,
                DefectProcess::Clustered {
                    density: d0,
                    mean_per_cluster: 8.0,
                    sigma_mm: 2.0,
                },
                10,
            ))
        })
    });
    group.finish();

    c.bench_function("yield/optimal_spares_search", |b| {
        b.iter(|| {
            black_box(optimal_spares(
                Area::from_cm2(1.0),
                Area::from_cm2(0.5),
                1.0 / 256.0,
                d0,
                32,
            ))
        })
    });

    let artwork = nanocost_layout::MemoryArrayGenerator::new(16, 16)
        .expect("valid")
        .generate()
        .expect("valid");
    let dist = DefectSizeDistribution::new(0.2).expect("valid");
    let mut scan_group = c.benchmark_group("yield/critical_scan");
    scan_group.sample_size(20);
    scan_group.bench_function("memory_16x16", |b| {
        b.iter(|| black_box(critical_scan(artwork.grid(), dist, lambda).expect("valid")))
    });
    scan_group.finish();
}

criterion_group!(benches, bench_yield);
criterion_main!(benches);
