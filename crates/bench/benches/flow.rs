//! Criterion bench: design-flow simulation throughput (EXT-ITER).

use std::hint::black_box;

use nanocost_bench::harness::{criterion_group, criterion_main, Criterion};
use nanocost_fab::ProximityModel;
use nanocost_flow::{ClosureSimulator, DelayStudy, DesignEffortModel};
use nanocost_numeric::{McConfig, Sampler};
use nanocost_units::{DecompressionIndex, FeatureSize, TransistorCount};

fn bench_flow(c: &mut Criterion) {
    let effort = DesignEffortModel::paper_defaults();
    let n = TransistorCount::from_millions(10.0);
    let sd = DecompressionIndex::new(250.0).expect("valid");
    c.bench_function("flow/eq6_closed_form", |b| {
        b.iter(|| black_box(effort.design_cost(black_box(n), black_box(sd)).expect("in domain")))
    });

    let sim = ClosureSimulator::nanometer_default();
    let lambda = FeatureSize::from_microns(0.13).expect("valid");
    let mut group = c.benchmark_group("flow/closure_monte_carlo");
    group.sample_size(20);
    for &trials in &[100usize, 1_000] {
        group.bench_function(format!("{trials}_trials"), |b| {
            b.iter(|| {
                black_box(
                    sim.mean_iterations(McConfig { seed: 1, trials }, lambda, sd, 4.0)
                        .expect("in domain"),
                )
            })
        });
    }
    group.finish();

    let study = DelayStudy::nanometer_default();
    let prox = ProximityModel::default();
    let mut delay_group = c.benchmark_group("flow/delay_study");
    delay_group.sample_size(20);
    delay_group.bench_function("2000_nets", |b| {
        b.iter(|| {
            let mut s = Sampler::seeded(77);
            black_box(study.run(&mut s, &prox, lambda).expect("valid"))
        })
    });
    delay_group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
