//! Shared figure- and table-regeneration routines for the `nanocost`
//! reproduction.
//!
//! Each function builds the artifact behind one of the paper's exhibits;
//! the `src/bin/*` regeneration binaries print them and the in-tree harness
//! benches time them, so the two can never drift apart.

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod report;

// Re-exported so `criterion_main!`'s generated `main` can install the
// trace subscriber through `$crate::` without each suite naming the dep.
pub use nanocost_trace;
