//! Builders for every table and figure of the paper, plus the extension
//! experiments committed in `DESIGN.md`.

use nanocost_core::{
    optimal_sd_generalized, optimum_surface, DensityOptimum, DesignPoint, Figure4Error,
    Figure4Scenario, GeneralizedCostModel, OptimumCell, ProfitModel, ProfitReport, ScenarioCache,
    TotalCostModel,
};
use nanocost_devices::{figure1_by_class, figure1_by_vendor, table_a1, DeviceRecord};
use nanocost_fab::{MaskCostModel, TestCostModel};
use nanocost_flow::{
    calibrate_effort_shape, CalibrationResult, ClosureSimulator, DesignTeamModel,
    RegularityEffect,
};
use nanocost_layout::{
    Layout, MemoryArrayGenerator, RandomBlockGenerator, RegularityAnalysis, RegularityReport,
    StdCellGenerator,
};
use nanocost_numeric::{Chart, McConfig, NumericError, Sampler, Series};
use nanocost_roadmap::{
    figure3, itrs_1999, ConstantCostAssumptions, Figure3Point, Scenario,
};
use nanocost_units::{
    Area, DecompressionIndex, FeatureSize, TransistorCount, UnitError, Utilization, WaferCount,
    Yield,
};
use nanocost_yield::{DefectDensity, DefectProcess, WaferMapResult, WaferMapSimulator};

/// The dataset rows with recomputed density columns — Table A1.
#[must_use]
pub fn table_a1_rows() -> Vec<DeviceRecord> {
    table_a1()
}

/// Figure 1: the published-design density scatter, by device class and by
/// vendor.
///
/// # Errors
///
/// Returns [`NumericError`] only for a corrupted dataset (test-excluded).
pub fn figure1() -> Result<(Vec<Series>, Vec<Series>), NumericError> {
    let rows = table_a1();
    Ok((figure1_by_class(&rows)?, figure1_by_vendor(&rows)?))
}

/// Figure 2: ITRS-implied `s_d` versus feature size.
///
/// # Errors
///
/// Returns [`NumericError`] only for a corrupted roadmap (test-excluded).
pub fn figure2() -> Result<Series, NumericError> {
    let pts: Vec<(f64, f64)> = itrs_1999()
        .iter()
        .map(|e| (e.feature_nm, e.implied_sd().squares()))
        .collect();
    Series::new("ITRS s_d", pts)
}

/// Figure 3: the affordability ratio per generation, under the paper's
/// optimistic anchors.
///
/// # Errors
///
/// Returns [`UnitError`] only for a corrupted roadmap (test-excluded).
pub fn figure3_points() -> Result<Vec<Figure3Point>, UnitError> {
    figure3(&itrs_1999(), &ConstantCostAssumptions::paper_1999())
}

/// Figure 3 under an erosion scenario (EXT: pessimistic variants).
///
/// # Errors
///
/// As [`figure3_points`].
pub fn figure3_scenario(scenario: Scenario) -> Result<Vec<Figure3Point>, UnitError> {
    scenario.figure3(&itrs_1999(), &ConstantCostAssumptions::paper_1999())
}

/// One Figure-4 panel: the chart and the per-node optima.
///
/// # Errors
///
/// Returns [`Figure4Error`] if the sweep violates the eq.-6 domain
/// (impossible for the embedded scenarios).
pub fn figure4_panel(
    scenario: &Figure4Scenario,
) -> Result<(Chart, Vec<(f64, DensityOptimum)>), Figure4Error> {
    // Deliberately uncached: this is the reference implementation the
    // fingerprint test compares [`figure4_panel_cached`] against, and
    // the benches pin its per-evaluation cost without cache overhead.
    let model = TotalCostModel::paper_figure4();
    let masks = MaskCostModel::default();
    let chart = scenario.chart(&model, &masks)?;
    let mut optima = Vec::new();
    for &um in &scenario.lambdas_um {
        optima.push((um, scenario.optimum(&model, &masks, um)?));
    }
    Ok((chart, optima))
}

/// As [`figure4_panel`], but evaluated through a shared [`ScenarioCache`]
/// batch: the `figure4` bin reuses one cache across both panels, so the
/// per-node mask costs (and any revisited grid points) are served from
/// the cache with their provenance replayed.
///
/// # Errors
///
/// As [`figure4_panel`].
pub fn figure4_panel_cached(
    cache: &ScenarioCache,
    scenario: &Figure4Scenario,
) -> Result<(Chart, Vec<(f64, DensityOptimum)>), Figure4Error> {
    let chart = scenario.chart_cached(cache)?;
    let mut optima = Vec::new();
    for &um in &scenario.lambdas_um {
        optima.push((um, scenario.optimum_cached(cache, um)?));
    }
    Ok((chart, optima))
}

/// EXT-U: cost per useful transistor across utilizations and volumes.
///
/// # Errors
///
/// Returns [`UnitError`] for domain violations (impossible for the fixed
/// grid used).
pub fn utilization_study() -> Result<Vec<(f64, u64, f64)>, UnitError> {
    let lambda = FeatureSize::from_microns(0.18)?;
    let transistors = TransistorCount::from_millions(10.0);
    let sd = DecompressionIndex::new(300.0)?;
    let mut out = Vec::new();
    for &u in &[1.0, 0.8, 0.5, 0.25, 0.1] {
        let model = GeneralizedCostModel::nanometer_default()
            .with_utilization(Utilization::new(u)?);
        for &v in &[5_000u64, 50_000, 500_000] {
            let r = model.evaluate(DesignPoint {
                lambda,
                sd,
                transistors,
                volume: WaferCount::new(v)?,
            })?;
            out.push((u, v, r.transistor_cost.amount()));
        }
    }
    Ok(out)
}

/// EXT-TEST: relative cost overhead of production test across design
/// sizes.
///
/// # Errors
///
/// As [`utilization_study`].
pub fn test_cost_study() -> Result<Vec<(f64, f64)>, UnitError> {
    let lambda = FeatureSize::from_microns(0.18)?;
    let sd = DecompressionIndex::new(300.0)?;
    let volume = WaferCount::new(50_000)?;
    let base = GeneralizedCostModel::nanometer_default();
    let tested = GeneralizedCostModel::nanometer_default().with_test(TestCostModel::default());
    let mut out = Vec::new();
    for &m in &[1.0, 3.0, 10.0, 30.0, 100.0] {
        let transistors = TransistorCount::from_millions(m);
        let point = DesignPoint {
            lambda,
            sd,
            transistors,
            volume,
        };
        let a = base.evaluate(point)?.transistor_cost.amount();
        let b = tested.evaluate(point)?.transistor_cost.amount();
        out.push((m, (b - a) / a));
    }
    Ok(out)
}

/// EXT-VOL: the optimum-density surface over volume × yield.
///
/// # Errors
///
/// Propagates optimizer errors (impossible for the fixed grid used).
pub fn optimum_surface_study() -> Result<Vec<OptimumCell>, nanocost_core::OptimizeError> {
    // Deliberately uncached — the reference path the cached variant is
    // checked against; see [`figure4_panel`].
    optimum_surface(
        &TotalCostModel::paper_figure4(),
        FeatureSize::from_microns(0.18)?,
        TransistorCount::from_millions(10.0),
        MaskCostModel::default().mask_set_cost(FeatureSize::from_microns(0.18)?),
        &[1_000, 5_000, 20_000, 50_000, 200_000],
        &[0.4, 0.6, 0.8, 0.9],
        105.0,
        2_500.0,
    )
}

/// As [`optimum_surface_study`], but every volume × yield optimum is
/// memoized in the given [`ScenarioCache`], so repeated studies (the
/// server's `/v1/optimum` traffic, or a re-run of the bin) replay
/// instead of re-searching.
///
/// # Errors
///
/// As [`optimum_surface_study`].
pub fn optimum_surface_study_cached(
    cache: &ScenarioCache,
) -> Result<Vec<OptimumCell>, nanocost_core::OptimizeError> {
    use nanocost_units::Yield;
    let lambda = FeatureSize::from_microns(0.18)?;
    let transistors = TransistorCount::from_millions(10.0);
    let mask_cost = cache.mask_set_cost(lambda);
    let mut out = Vec::with_capacity(20);
    for &v in &[1_000u64, 5_000, 20_000, 50_000, 200_000] {
        for &y in &[0.4, 0.6, 0.8, 0.9] {
            let optimum = cache.optimal_sd(
                lambda,
                transistors,
                WaferCount::new(v)?,
                Yield::new(y)?,
                mask_cost,
                105.0,
                2_500.0,
            )?;
            out.push(OptimumCell { volume: v, fab_yield: y, optimum });
        }
    }
    Ok(out)
}

/// The three benchmark layouts of the regularity experiment, with matched
/// parameters.
///
/// # Panics
///
/// Never panics in practice: generator parameters are constants.
#[must_use]
pub fn regularity_layouts() -> Vec<(&'static str, Layout)> {
    let memory = MemoryArrayGenerator::new(32, 48)
        .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
        .generate()
        .expect("generation cannot fail for valid constants"); // nanocost-audit: allow(R1, reason = "documented invariant: generation cannot fail for valid constants")
    let custom = RandomBlockGenerator::new(
        memory.grid().width(),
        memory.grid().height(),
        memory.transistors(),
        7,
    )
    .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    .generate()
    .expect("generation cannot fail for valid constants"); // nanocost-audit: allow(R1, reason = "documented invariant: generation cannot fail for valid constants")
    let std_cells = StdCellGenerator::new(24, 1200, 20, 0.8, 42)
        .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
        .generate()
        .expect("generation cannot fail for valid constants"); // nanocost-audit: allow(R1, reason = "documented invariant: generation cannot fail for valid constants")
    vec![("memory", memory), ("std-cell", std_cells), ("custom", custom)]
}

/// EXT-REG: pattern-extraction reports for the three benchmark layouts.
///
/// # Panics
///
/// Never panics in practice: the window is valid for all three layouts.
#[must_use]
pub fn regularity_reports() -> Vec<(&'static str, RegularityReport)> {
    let window = RegularityAnalysis::tiling_rect(14, 13).expect("constants are valid"); // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    regularity_layouts()
        .into_iter()
        .map(|(name, layout)| {
            let report = window
                .analyze(layout.grid())
                .expect("window fits all benchmark layouts"); // nanocost-audit: allow(R1, reason = "documented invariant: window fits all benchmark layouts")
            (name, report)
        })
        .collect()
}

/// EXT-REG continued: iterations and design cost per layout style.
///
/// # Errors
///
/// Returns [`UnitError`] for domain violations (impossible for the fixed
/// target used).
pub fn regularity_cost_table() -> Result<Vec<(&'static str, f64, f64)>, UnitError> {
    let sim = ClosureSimulator::nanometer_default();
    let team = DesignTeamModel::nanometer_default();
    let lambda = FeatureSize::from_microns(0.10)?;
    let sd = DecompressionIndex::new(150.0)?;
    let transistors = TransistorCount::from_millions(10.0);
    let config = McConfig { seed: 11, trials: 1_000 };
    let mut out = Vec::new();
    for (name, report) in regularity_reports() {
        let effect = RegularityEffect::from_report(&report);
        let iters = sim.mean_iterations(config, lambda, sd, effect.reuse_factor)?;
        let cost = team.project_cost(transistors, iters);
        out.push((name, iters, cost.amount()));
    }
    Ok(out)
}

/// EXT-ITER: calibrate the simulated design process against the eq.-6
/// shape.
///
/// # Errors
///
/// Returns [`nanocost_flow::CalibrateError`] for degenerate sweeps
/// (impossible for the fixed sweep used).
pub fn iteration_calibration() -> Result<CalibrationResult, nanocost_flow::CalibrateError> {
    calibrate_effort_shape(
        &ClosureSimulator::nanometer_default(),
        &DesignTeamModel::nanometer_default(),
        McConfig { seed: 42, trials: 400 },
        FeatureSize::from_microns(0.18)?,
        TransistorCount::from_millions(10.0),
        1.0,
        100.0,
        &[110.0, 130.0, 160.0, 200.0, 260.0, 340.0, 450.0, 600.0],
    )
}

/// EXT-GEN: eq. 4 (paper anchors) versus eq. 7 (substrates) across
/// volumes — the lower-bound property as data.
///
/// # Errors
///
/// Returns [`UnitError`] for domain violations (impossible for the fixed
/// grid used).
pub fn generalized_vs_simple() -> Result<Vec<(u64, f64, f64)>, UnitError> {
    use nanocost_units::{Dollars, Yield};
    let lambda = FeatureSize::from_microns(0.18)?;
    let sd = DecompressionIndex::new(300.0)?;
    let transistors = TransistorCount::from_millions(10.0);
    let eq4 = TotalCostModel::paper_figure4();
    let eq7 = GeneralizedCostModel::nanometer_default();
    let mask = Dollars::new(200_000.0);
    let mut out = Vec::new();
    for &v in &[2_000u64, 5_000, 20_000, 50_000, 200_000] {
        let volume = WaferCount::new(v)?;
        let simple = eq4
            .transistor_cost(lambda, sd, transistors, volume, Yield::new(0.8)?, mask)?
            .total()
            .amount();
        let full = eq7
            .evaluate(DesignPoint {
                lambda,
                sd,
                transistors,
                volume,
            })?
            .transistor_cost
            .amount();
        out.push((v, simple, full));
    }
    Ok(out)
}

/// The generalized-model optimum used by EXT-GEN reporting.
///
/// # Errors
///
/// Propagates optimizer errors (impossible for the fixed bracket used).
pub fn generalized_optimum(volume: u64) -> Result<DensityOptimum, nanocost_core::OptimizeError> {
    optimal_sd_generalized(
        &GeneralizedCostModel::nanometer_default(),
        FeatureSize::from_microns(0.18)?,
        TransistorCount::from_millions(10.0),
        WaferCount::new(volume)?,
        105.0,
        2_500.0,
    )
}

/// EXT-SIM: wafer-map Monte-Carlo yield vs the analytic models, for a
/// uniform and a clustered defect process at equal mean density.
///
/// # Errors
///
/// Returns [`UnitError`] for invalid configuration (impossible for the
/// constants used).
pub fn wafer_map_study() -> Result<Vec<(&'static str, WaferMapResult)>, UnitError> {
    let sim = WaferMapSimulator::new(
        nanocost_fab::WaferSpec::standard_200mm(),
        Area::from_cm2(1.5),
        0.5,
    )?;
    let density = DefectDensity::per_cm2(0.6)?;
    let mut out = Vec::new();
    let mut sampler = Sampler::seeded(404);
    out.push((
        "uniform",
        sim.simulate(&mut sampler, DefectProcess::Uniform { density }, 150),
    ));
    let mut sampler = Sampler::seeded(404);
    out.push((
        "clustered",
        sim.simulate(
            &mut sampler,
            DefectProcess::Clustered {
                density,
                mean_per_cluster: 8.0,
                sigma_mm: 2.0,
            },
            150,
        ),
    ));
    Ok(out)
}

/// EXT-TTM: profit-optimal vs cost-optimal density under fast and slow
/// markets.
///
/// # Errors
///
/// Propagates optimizer errors (impossible for the fixed bracket used).
pub fn time_to_market_study(
) -> Result<Vec<(&'static str, ProfitReport, ProfitReport)>, nanocost_core::OptimizeError> {
    let lambda = FeatureSize::from_microns(0.18)?;
    let transistors = TransistorCount::from_millions(10.0);
    let demand = 2.0e6;
    let y = Yield::new(0.8)?;
    let mut out = Vec::new();
    for (name, model) in [
        ("competitive", ProfitModel::competitive_default()),
        ("slow-market", ProfitModel::slow_market_default()),
    ] {
        let profit = model.optimal_sd(lambda, transistors, demand, y, 110.0, 1_200.0)?;
        let cost = model.optimal_sd_cost(lambda, transistors, demand, y, 110.0, 1_200.0)?;
        out.push((name, profit, cost));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builder_produces_its_artifact() {
        assert_eq!(table_a1_rows().len(), 49);
        let (by_class, by_vendor) = figure1().unwrap();
        assert!(!by_class.is_empty() && !by_vendor.is_empty());
        assert_eq!(figure2().unwrap().len(), 7);
        assert_eq!(figure3_points().unwrap().len(), 7);
        let (chart, optima) = figure4_panel(&Figure4Scenario::paper_4a()).unwrap();
        assert_eq!(chart.series().len(), 3);
        assert_eq!(optima.len(), 3);
        assert_eq!(utilization_study().unwrap().len(), 15);
        assert_eq!(test_cost_study().unwrap().len(), 5);
        assert_eq!(optimum_surface_study().unwrap().len(), 20);
        assert_eq!(regularity_reports().len(), 3);
        assert_eq!(regularity_cost_table().unwrap().len(), 3);
        assert!(iteration_calibration().unwrap().p2 > 0.0);
        assert_eq!(generalized_vs_simple().unwrap().len(), 5);
        assert!(generalized_optimum(20_000).unwrap().sd > 105.0);
    }

    #[test]
    fn extension_builders_produce_their_artifacts() {
        let maps = wafer_map_study().unwrap();
        assert_eq!(maps.len(), 2);
        assert!(maps[1].1.dispersion() > maps[0].1.dispersion());
        let ttm = time_to_market_study().unwrap();
        assert_eq!(ttm.len(), 2);
        for (_, profit, cost) in &ttm {
            assert!(profit.profit.amount() >= cost.profit.amount() - 1.0);
        }
    }
}
