//! Regenerates Figure 2: s_d implied by the ITRS-1999 MPU roadmap.
//!
//! Run with: `cargo run -p nanocost-bench --bin figure2`

use nanocost_bench::figures::figure2;
use nanocost_numeric::Chart;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("figure2.run");
    let series = figure2()?;
    println!("Figure 2 — s_d for microprocessors from ITRS-1999 data (eq. 2)");
    println!();
    println!("{:>10} {:>12}", "node [nm]", "implied s_d");
    for &(nm, sd) in series.points() {
        println!("{nm:>10.0} {sd:>12.1}");
    }
    let chart = Chart::new("Figure 2", "feature size [nm]", "s_d").with_series(series);
    println!();
    println!("{}", chart.to_ascii(64, 16));
    println!("reading: the roadmap's own density targets require s_d to *improve*");
    println!("(fall) while industry practice (Figure 1) lets it worsen.");
    Ok(())
}
