//! Regenerates Figure 4: C_tr(s_d) for the paper's two volume/yield
//! scenarios, with located optima.
//!
//! Run with: `cargo run -p nanocost-bench --bin figure4`

use nanocost_bench::figures::figure4_panel_cached;
use nanocost_core::{Figure4Scenario, ScenarioCache};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("figure4.run");
    // One cache across both panels: the per-node eq.-5 mask costs (and
    // any revisited grid points) are replayed, not recomputed, without
    // changing the figure's provenance fingerprint.
    let cache = ScenarioCache::paper_figure4();
    for scenario in [Figure4Scenario::paper_4a(), Figure4Scenario::paper_4b()] {
        let (chart, optima) = figure4_panel_cached(&cache, &scenario)?;
        println!("{}", chart.to_table());
        println!("{}", chart.to_ascii(72, 18));
        println!("optima (per node):");
        for (um, opt) in &optima {
            println!(
                "  λ = {um:.2} µm: s_d* = {:>6.0}, C_tr = {:.3e} $/transistor",
                opt.sd,
                opt.cost.amount()
            );
        }
        println!();
    }
    println!("reading: the high-volume/high-yield panel (4b) optimizes at a much");
    println!("denser layout — neither minimum die size nor maximum yield is the");
    println!("objective, minimum C_tr is (paper §3.1).");
    let stats = cache.stats();
    println!(
        "scenario cache: {} hits / {} misses ({} entries)",
        stats.hits, stats.misses, stats.entries
    );
    Ok(())
}
