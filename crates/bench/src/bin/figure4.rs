//! Regenerates Figure 4: C_tr(s_d) for the paper's two volume/yield
//! scenarios, with located optima.
//!
//! Run with: `cargo run -p nanocost-bench --bin figure4`

use nanocost_bench::figures::figure4_panel;
use nanocost_core::Figure4Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("figure4.run");
    for scenario in [Figure4Scenario::paper_4a(), Figure4Scenario::paper_4b()] {
        let (chart, optima) = figure4_panel(&scenario)?;
        println!("{}", chart.to_table());
        println!("{}", chart.to_ascii(72, 18));
        println!("optima (per node):");
        for (um, opt) in &optima {
            println!(
                "  λ = {um:.2} µm: s_d* = {:>6.0}, C_tr = {:.3e} $/transistor",
                opt.sd,
                opt.cost.amount()
            );
        }
        println!();
    }
    println!("reading: the high-volume/high-yield panel (4b) optimizes at a much");
    println!("denser layout — neither minimum die size nor maximum yield is the");
    println!("objective, minimum C_tr is (paper §3.1).");
    Ok(())
}
