//! EXT-PLACE: the placer as the paper's density knob — one netlist, many
//! die widths, measured s_d vs wirelength vs Elmore delay.
//!
//! Run with: `cargo run -p nanocost-bench --bin placement_study`

use nanocost_flow::elmore_delay;
use nanocost_layout::{Netlist, Placer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let netlist = Netlist::random(120, 200, 7)?;
    println!("EXT-PLACE — one 120-cell netlist annealed into dies of growing width");
    println!("(5 cells per row fixed; wider die = sparser placement)");
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "die [λ]", "s_d [λ²/tr]", "HPWL [λ]", "mean delay [au]"
    );
    for width in [400usize, 600, 800, 1200, 1600] {
        let placer = Placer {
            per_row: Some(5),
            ..Placer::with_die_width(width)
        };
        let placement = placer.place(&netlist)?;
        let layout = placement.to_layout(&netlist)?;
        let hpwl = placement.total_hpwl(&netlist);
        // Mean per-net Elmore delay at unit RC, in arbitrary units.
        let mean_len = hpwl / 200.0;
        let delay = elmore_delay(mean_len, 1.0e-3, 1.0e-3);
        println!(
            "{width:>10} {:>12.1} {:>12.0} {:>14.3}",
            layout.measured_sd().squares(),
            hpwl,
            delay
        );
    }
    println!();
    println!("density is an algorithmic choice: the same netlist spans a wide s_d");
    println!("range, and sparser placements pay in wirelength (hence delay, hence");
    println!("prediction difficulty) — the flip side of the paper's density/effort");
    println!("tradeoff, measured on real placements.");
    Ok(())
}
