//! EXT-REG: regularity → prediction quality → design cost (paper §3.2).
//!
//! Run with: `cargo run -p nanocost-bench --bin regularity_experiment`

use nanocost_bench::figures::{regularity_cost_table, regularity_reports};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    println!("EXT-REG — pattern extraction (14×13 λ windows) and its cost impact");
    println!();
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>10}",
        "style", "unique", "reuse", "top-10 cov.", "entropy"
    );
    for (name, report) in regularity_reports() {
        println!(
            "{name:<10} {:>8} {:>10.1} {:>11.1}% {:>9.2}b",
            report.unique_patterns(),
            report.reuse_factor(),
            report.coverage_top(10) * 100.0,
            report.entropy_bits()
        );
    }
    println!();
    println!("{:<10} {:>12} {:>14}", "style", "iterations", "design cost");
    for (name, iters, cost) in regularity_cost_table()? {
        println!("{name:<10} {iters:>12.2} {:>13.2}M", cost / 1.0e6);
    }
    println!();
    println!("highly regular structures amortize expensive characterization across");
    println!("many pattern instances — the paper's closing prescription, measured.");
    Ok(())
}
