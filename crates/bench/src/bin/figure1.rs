//! Regenerates Figure 1: design decompression index of published designs.
//!
//! Run with: `cargo run -p nanocost-bench --bin figure1`

use nanocost_bench::figures::figure1;
use nanocost_devices::{
    density_time_trend, table_a1, vendor_density_trend, vendor_mean_sd, DeviceClass, Vendor,
};
use nanocost_numeric::Chart;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("figure1.run");
    let (by_class, by_vendor) = figure1()?;
    let mut chart = Chart::new("Figure 1: s_d vs feature size", "λ [µm]", "s_d [λ²/tr]");
    for s in by_class {
        chart.push(s);
    }
    println!("{}", chart.to_table());
    println!("{}", chart.to_ascii(72, 20));

    let mut vendor_chart =
        Chart::new("Figure 1 (vendor view, CPUs only)", "λ [µm]", "s_d [λ²/tr]");
    for s in by_vendor {
        vendor_chart.push(s);
    }
    println!("{}", vendor_chart.to_ascii(72, 20));

    let rows = table_a1();
    for vendor in [Vendor::Intel, Vendor::Amd, Vendor::PowerPcAlliance] {
        let fit = vendor_density_trend(&rows, vendor)?;
        println!(
            "{vendor:<18} s_d trend vs ln(1/λ): slope {:+.1} (R² {:.2}) — {}",
            fit.slope,
            fit.r_squared,
            if fit.slope > 0.0 { "density worsening" } else { "density improving" }
        );
    }
    let time = density_time_trend(&rows, DeviceClass::Cpu)?;
    println!(
        "CPU s_d vs estimated year: {:+.1} λ²/tr per year (R² {:.2}) — the chronological Figure-1 read",
        time.slope, time.r_squared
    );
    let amd = vendor_mean_sd(&rows, Vendor::Amd, 0.25, 0.35)?;
    let intel = vendor_mean_sd(&rows, Vendor::Intel, 0.25, 0.35)?;
    println!();
    println!(
        "0.25-0.35µm era mean logic s_d: AMD {:.0} vs Intel {:.0} — the market follower ships denser, cheaper transistors",
        amd.mean, intel.mean
    );
    Ok(())
}
