//! Exports the Table A1 dataset (with recomputed densities) as CSV on
//! stdout, for analysis outside Rust.
//!
//! Run with: `cargo run -p nanocost-bench --bin export_csv > table_a1.csv`

use std::io::Write;

use nanocost_devices::{table_a1, to_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let mut stdout = std::io::stdout().lock();
    write!(stdout, "{}", to_csv(&table_a1()))?;
    Ok(())
}
