//! Exports the Table A1 dataset (with recomputed densities) as CSV on
//! stdout, for analysis outside Rust.
//!
//! Run with: `cargo run -p nanocost-bench --bin export_csv > table_a1.csv`

use nanocost_devices::{table_a1, to_csv};

fn main() {
    print!("{}", to_csv(&table_a1()));
}
