//! EXT-TTM: time-to-market pressure and the profit-optimal density —
//! reconciling the paper's Figure 1 (industry goes sparse) with its
//! Figure 4 (cost says go dense).
//!
//! Run with: `cargo run -p nanocost-bench --bin ablation_time_to_market`

use nanocost_bench::figures::time_to_market_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    println!("EXT-TTM — profit vs cost optimal s_d (0.18µm, 10M tr, 2M-unit demand)");
    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "market", "cost-opt s_d", "profit-opt s_d", "entry [wk]", "profit"
    );
    for (name, profit, cost) in time_to_market_study()? {
        println!(
            "{name:<12} {:>14.0} {:>14.0} {:>12.1} {:>12}",
            cost.sd, profit.sd, profit.time_to_market_weeks, profit.profit
        );
    }
    println!();
    println!("under fast ASP erosion the profit-optimal layout is sparser than the");
    println!("cost-optimal one: the §2.2.2 'time-to-market-driven design mentality'");
    println!("is rational economics, and exactly the gap the paper's regularity");
    println!("prescription (§3.2) aims to close by making dense design fast.");
    Ok(())
}
