//! EXT-DELAY: the physical interconnect-delay prediction study behind the
//! abstract prediction-error model (paper §2.4).
//!
//! Run with: `cargo run -p nanocost-bench --bin delay_study`

use nanocost_fab::ProximityModel;
use nanocost_flow::DelayStudy;
use nanocost_numeric::Sampler;
use nanocost_units::FeatureSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("delay_study.run");
    println!("EXT-DELAY — Elmore-delay prediction error vs process node");
    println!("(2000 random nets, HPWL pre-layout estimate, coupling from aggressors");
    println!(" inside the 1µm physical interaction radius)");
    println!();
    println!(
        "{:>8} {:>14} {:>12} {:>10} {:>10}",
        "node", "radius [λ]", "aggressors", "bias", "σ"
    );
    let study = DelayStudy::nanometer_default();
    let prox = ProximityModel::default();
    for &um in &[0.5, 0.35, 0.25, 0.18, 0.13, 0.1, 0.07] {
        let mut sampler = Sampler::seeded(77);
        let report = study.run(&mut sampler, &prox, FeatureSize::from_microns(um)?)?;
        println!(
            "{:>6.2}µm {:>14.1} {:>12.2} {:>9.2}% {:>9.2}%",
            um,
            report.neighborhood_lambdas,
            report.mean_aggressors,
            report.bias() * 100.0,
            report.sigma() * 100.0
        );
    }
    println!();
    println!("the spread σ(λ) grows as features shrink — the physical origin of the");
    println!("prediction-error model that drives failed design iterations (eq. 6).");
    Ok(())
}
