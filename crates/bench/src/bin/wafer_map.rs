//! EXT-SIM: wafer-map Monte-Carlo defect simulation vs the analytic yield
//! models.
//!
//! Run with: `cargo run -p nanocost-bench --bin wafer_map`

use nanocost_bench::figures::wafer_map_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("wafer_map.run");
    println!("EXT-SIM — 150 wafers, 1.5 cm² die, D0 = 0.6 /cm², 50% critical area");
    println!();
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12}",
        "process", "yield", "mean/die", "dispersion", "fitted α"
    );
    for (name, result) in wafer_map_study()? {
        let alpha = result
            .fitted_alpha()
            .map_or_else(|| "-".to_string(), |a| format!("{a:.2}"));
        println!(
            "{name:<10} {:>10} {:>12.3} {:>12.2} {:>12}",
            result.empirical_yield,
            result.mean_defects_per_die,
            result.dispersion(),
            alpha
        );
    }
    println!();
    println!("uniform defects reproduce the Poisson model; clustering (same mean");
    println!("density) raises yield and is captured by a negative binomial with the");
    println!("α recovered from per-die statistics — the models are earned, not assumed.");
    Ok(())
}
