//! EXT-TEST: the cost-of-test ablation (paper §2.5's invited extension).
//!
//! Run with: `cargo run -p nanocost-bench --bin ablation_test_cost`

use nanocost_bench::figures::test_cost_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    println!("EXT-TEST — eq. 7 with the TestCostModel enabled (50k wafers, 0.18µm)");
    println!();
    println!("{:>10} {:>16}", "Mtr", "test overhead");
    for (m, overhead) in test_cost_study()? {
        println!("{m:>10.0} {:>15.2}%", overhead * 100.0);
    }
    println!();
    println!("test time grows as √N_tr while silicon cost grows as N_tr, so the");
    println!("relative overhead *falls* with design size — test matters most for");
    println!("small dice.");
    Ok(())
}
