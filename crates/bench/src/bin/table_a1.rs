//! Regenerates Table A1 with recomputed density columns.
//!
//! Run with: `cargo run -p nanocost-bench --bin table_a1`

use nanocost_bench::figures::table_a1_rows;
use nanocost_bench::report::render_table_a1;

fn main() {
    let _trace = nanocost_trace::init_from_env();
    let rows = table_a1_rows();
    println!("Table A1 — published industrial designs (Maly DAC-2001), re-derived");
    println!();
    print!("{}", render_table_a1(&rows));
    println!(
        "reconstructed rows (see module docs): {:?}",
        nanocost_devices::RECONSTRUCTED_ROWS
    );
    println!(
        "internally inconsistent as printed: {:?}",
        nanocost_devices::INCONSISTENT_ROWS
    );
}
