//! Regenerates Figure 3: the constant-die-cost affordability ratio.
//!
//! Run with: `cargo run -p nanocost-bench --bin figure3`

use nanocost_bench::figures::{figure3_points, figure3_scenario};
use nanocost_bench::report::render_figure3;
use nanocost_roadmap::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("figure3.run");
    println!("Figure 3 — ratio of ITRS s_d to constant-die-cost s_d");
    println!("anchors: C_ch = $34, C_sq = 8 $/cm², Y = 0.8 (paper §2.2.3)");
    println!();
    print!("{}", render_figure3(&figure3_points()?));
    println!();
    println!("erosion scenarios (EXT): ratio at each generation");
    println!("{:>6} {:>12} {:>12} {:>12}", "year", "optimistic", "moderate", "pessimistic");
    let opt = figure3_scenario(Scenario::OPTIMISTIC)?;
    let mid = figure3_scenario(Scenario::MODERATE)?;
    let bad = figure3_scenario(Scenario::PESSIMISTIC)?;
    for i in 0..opt.len() {
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>12.2}",
            opt[i].year, opt[i].ratio, mid[i].ratio, bad[i].ratio
        );
    }
    println!();
    println!("a ratio above one is the paper's cost contradiction.");
    Ok(())
}
