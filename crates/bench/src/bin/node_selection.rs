//! EXT-NODE: which process node should a product use in the high-cost
//! era? Fixed unit demand; eq. 7 with the volume↔yield fixed point.
//!
//! Run with: `cargo run -p nanocost-bench --bin node_selection`

use nanocost_core::{node_sweep, GeneralizedCostModel};
use nanocost_units::TransistorCount;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("node_selection.run");
    let model = GeneralizedCostModel::nanometer_default();
    for (name, mtr, demand) in [
        ("niche ASIC: 2M transistors, 30k units", 2.0, 3.0e4),
        ("mid-volume product: 10M transistors, 1M units", 10.0, 1.0e6),
        ("mainstream MPU: 10M transistors, 20M units", 10.0, 2.0e7),
    ] {
        let transistors = TransistorCount::from_millions(mtr);
        println!("== {name} ==");
        println!(
            "{:>8} {:>8} {:>8} {:>10} {:>12}",
            "node", "λ [µm]", "s_d*", "wafers", "$/good die"
        );
        let choices = node_sweep(&model, transistors, demand, (0.05, 0.6), (105.0, 2_000.0))?;
        for c in &choices {
            println!(
                "{:>8} {:>8.3} {:>8.0} {:>10} {:>12}",
                c.node, c.lambda_um, c.optimal_sd, c.wafers, c.die_cost
            );
        }
        println!("  → cheapest: {}", choices[0].node);
        println!();
    }
    println!("the bleeding edge is a high-volume privilege: at 30k units the mask");
    println!("set, design effort, and immature yield cannot amortize over the");
    println!("handful of wafers an advanced node needs — the 'high-cost era' tax.");
    Ok(())
}
