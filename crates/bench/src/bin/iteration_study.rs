//! EXT-ITER: does the simulated design process have the eq.-6 shape?
//!
//! Run with: `cargo run -p nanocost-bench --bin iteration_study`

use nanocost_bench::figures::iteration_calibration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let result = iteration_calibration()?;
    println!("EXT-ITER — timing-closure Monte Carlo vs eq. 6 (paper §2.4)");
    println!();
    println!("{:>8} {:>14} {:>16}", "s_d", "iterations", "design cost [$]");
    for p in &result.points {
        println!("{:>8.0} {:>14.2} {:>16.3e}", p.sd, p.mean_iterations, p.mean_cost);
    }
    println!();
    println!(
        "power-law fit  cost ≈ c·(s_d − 100)^(−p2):  p2 = {:.2}  (paper uses 1.2),  R² = {:.3}",
        result.p2, result.r_squared
    );
    println!();
    println!("the mechanism (failed iterations from mispredicted physics) reproduces");
    println!("the functional form the paper asserted from private industry data.");
    Ok(())
}
