//! EXT-U: the utilization (u·Y) ablation — FPGA-style cost per useful
//! transistor.
//!
//! Run with: `cargo run -p nanocost-bench --bin ablation_utilization`

use nanocost_bench::figures::utilization_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    println!("EXT-U — eq. 7 with the Y → u·Y substitution (paper §2.5)");
    println!();
    println!("{:>6} {:>10} {:>16}", "u", "wafers", "$/useful tr");
    for (u, v, cost) in utilization_study()? {
        println!("{u:>6.2} {v:>10} {cost:>16.3e}");
    }
    println!();
    println!("cost scales exactly as 1/u at fixed volume: fabricated-but-unused");
    println!("transistors behave like yield loss.");
    Ok(())
}
