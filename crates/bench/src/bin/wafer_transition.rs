//! EXT-WAFER: the economics of wafer-size transitions along the roadmap —
//! why the ITRS paired nanometer nodes with 300 mm (and later 450 mm)
//! wafers.
//!
//! Run with: `cargo run -p nanocost-bench --bin wafer_transition`

use nanocost_fab::{WaferCostModel, WaferSpec};
use nanocost_roadmap::itrs_1999;
use nanocost_units::WaferCount;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let _root = nanocost_trace::span!("wafer_transition.run");
    let cost = WaferCostModel::default();
    let volume = WaferCount::new(100_000)?;
    println!("EXT-WAFER — Cm_sq by wafer generation at each roadmap node (100k wafers)");
    println!();
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "year", "node", "200mm $/cm²", "300mm $/cm²", "roadmap ⌀", "saving"
    );
    for entry in itrs_1999() {
        let lambda = entry.feature_size()?;
        let on_200 = cost.cost_per_cm2(WaferSpec::standard_200mm(), lambda, volume);
        let on_300 = cost.cost_per_cm2(WaferSpec::standard_300mm(), lambda, volume);
        let saving = 1.0 - on_300.dollars_per_cm2() / on_200.dollars_per_cm2();
        println!(
            "{:>6} {:>6.0}nm {:>12.2} {:>12.2} {:>10.0}mm {:>9.1}%",
            entry.year,
            entry.feature_nm,
            on_200.dollars_per_cm2(),
            on_300.dollars_per_cm2(),
            entry.wafer_mm,
            saving * 100.0
        );
    }
    println!();
    println!("larger wafers process more area per (slightly costlier) pass: the");
    println!("per-cm² saving is what funds the transition — and it grows with the");
    println!("node because depreciation dominates nanometer wafer cost.");
    Ok(())
}
