//! EXT-VOL: the optimum-density surface over volume × yield.
//!
//! Run with: `cargo run -p nanocost-bench --bin optimum_surface`

use nanocost_bench::figures::{generalized_optimum, optimum_surface_study_cached};
use nanocost_core::ScenarioCache;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let cache = ScenarioCache::paper_figure4();
    let cells = optimum_surface_study_cached(&cache)?;
    let volumes: Vec<u64> = {
        let mut v: Vec<u64> = cells.iter().map(|c| c.volume).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let yields: Vec<f64> = {
        let mut y: Vec<f64> = cells.iter().map(|c| c.fab_yield).collect();
        y.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        y.dedup();
        y
    };
    println!("EXT-VOL — eq. 4 optimal s_d* over volume × yield (0.18µm, 10M tr)");
    println!();
    print!("{:>10}", "N_w \\ Y");
    for y in &yields {
        print!("{y:>10.1}");
    }
    println!();
    for v in &volumes {
        print!("{v:>10}");
        for y in &yields {
            let c = cells
                .iter()
                .find(|c| c.volume == *v && (c.fab_yield - y).abs() < 1e-9)
                .expect("computed");
            print!("{:>10.0}", c.optimum.sd);
        }
        println!();
    }
    println!();
    println!("note the columns are identical: a density-independent yield cancels");
    println!("out of eq. 4's argmin. The generalized model, where Y responds to s_d,");
    println!("does move with volume:");
    for v in [5_000u64, 50_000, 500_000] {
        let opt = generalized_optimum(v)?;
        println!("  eq. 7, {v:>7} wafers: s_d* = {:>5.0}", opt.sd);
    }
    Ok(())
}
