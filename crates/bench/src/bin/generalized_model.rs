//! EXT-GEN: eq. 4's lower-bound property against the substrate-backed
//! eq. 7.
//!
//! Run with: `cargo run -p nanocost-bench --bin generalized_model`

use nanocost_bench::figures::generalized_vs_simple;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    println!("EXT-GEN — eq. 4 (paper anchors) vs eq. 7 (substrates), 0.18µm, 10M tr, s_d 300");
    println!();
    println!("{:>10} {:>14} {:>14} {:>8}", "wafers", "eq. 4 [$/tr]", "eq. 7 [$/tr]", "ratio");
    for (v, simple, full) in generalized_vs_simple()? {
        println!("{v:>10} {simple:>14.3e} {full:>14.3e} {:>8.2}", full / simple);
    }
    println!();
    println!("eq. 4 is the optimistic lower bound the paper claims (§2.5): the full");
    println!("model is costlier everywhere, most of all on young, low-volume lines.");
    Ok(())
}
