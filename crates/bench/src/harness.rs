//! A minimal, dependency-free stand-in for the Criterion benchmark API.
//!
//! The workspace must build and run with no network and no registry cache,
//! so the external `criterion` crate is gone. This module keeps the exact
//! call shape the `benches/*.rs` files already use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) and times closures with
//! `std::time::Instant`, printing a median-of-samples summary per benchmark.
//!
//! It is intentionally small: warmup, N timed samples, median + min/max.
//! The statistical machinery lives downstream: with `NANOCOST_BENCH_JSON`
//! set, every benchmark appends a format-2 record carrying the full
//! sorted per-iteration sample array (plus a once-per-run manifest
//! header), and `nanocost-sentinel`'s `bench_diff` bin turns two such
//! captures into a rank-tested regression verdict.

use std::hint::black_box as std_black_box;
use std::sync::Once;
use std::time::{Duration, Instant};

/// Default timed samples per benchmark (Criterion uses 100; 30 keeps
/// the full suite under a minute while still feeding the rank test).
const DEFAULT_SAMPLE_SIZE: usize = 30;

/// `NANOCOST_BENCH_JSON` capture format version written by this
/// harness. Format 2 added the manifest header and `samples_s`.
const BENCH_JSON_FORMAT: u32 = 2;

/// Re-export so benches can `use nanocost_bench::harness::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    /// Times a single benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Times one benchmark inside the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Times one benchmark parameterized by `input`.
    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier for parameterized benchmarks, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter value, e.g. a problem size.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl AsRef<str> for BenchmarkId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Per-benchmark timing handle, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`, auto-scaling the iteration count
    /// so each sample runs for roughly one millisecond.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Runs one benchmark: calibrate iteration count, warm up, sample, report.
fn run_one<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least ~1 ms, so short routines aren't lost in timer noise.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "bench {name:<48} median {} (min {}, max {}, {} samples x {} iters)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        samples,
        iters
    );
    nanocost_trace::event!(
        "bench.result",
        name = name,
        median_s = median,
        min_s = min,
        max_s = max,
        samples = samples,
        iters = iters,
    );
    emit_json_record(name, median, min, max, iters, &per_iter);
}

/// Appends one machine-readable result line to the file named by
/// `NANOCOST_BENCH_JSON` (no-op when the variable is unset). The first
/// record of a process is preceded by a run-manifest header (format
/// version, rustc version, opt-level, default sample size); each record
/// carries the full sorted per-iteration sample array so `bench_diff`
/// can rank-test two captures instead of comparing bare medians.
fn emit_json_record(name: &str, median: f64, min: f64, max: f64, iters: u64, per_iter: &[f64]) {
    let Some(path) = std::env::var_os("NANOCOST_BENCH_JSON") else {
        return;
    };
    static MANIFEST: Once = Once::new();
    MANIFEST.call_once(|| {
        let line = format!(
            "{{\"manifest\":{{\"format\":{BENCH_JSON_FORMAT},\"rustc\":{},\"opt_level\":\"{}\",\"sample_size\":{DEFAULT_SAMPLE_SIZE}}}}}\n",
            nanocost_trace::value::json_string(&rustc_version()),
            if cfg!(debug_assertions) { "debug" } else { "release" },
        );
        append_line(&path, &line);
    });
    let samples_s: Vec<String> = per_iter.iter().map(|s| format!("{s:e}")).collect();
    let line = format!(
        "{{\"name\":{},\"median_s\":{median:e},\"min_s\":{min:e},\"max_s\":{max:e},\"samples\":{},\"iters\":{iters},\"samples_s\":[{}]}}\n",
        nanocost_trace::value::json_string(name),
        per_iter.len(),
        samples_s.join(",")
    );
    append_line(&path, &line);
}

/// Appends one line to the capture file, warning (not failing) on error.
fn append_line(path: &std::ffi::OsStr, line: &str) {
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("bench: cannot append to {}: {e}", path.to_string_lossy());
    }
}

/// The producing toolchain's `rustc --version` line, or `unknown` when
/// rustc is not on PATH (the capture is still comparable, just less
/// traceable).
fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Formats seconds with an SI prefix suited to the magnitude.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions into
/// one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running each group.
/// The generated `main` installs the `NANOCOST_TRACE` subscriber first, so
/// bench suites stream spans/metrics like every other bin.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let _trace = $crate::nanocost_trace::init_from_env();
            $( $group(); )+
        }
    };
}

// Make the macros importable as `nanocost_bench::harness::criterion_group`,
// matching how the bench files previously imported them from `criterion`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64));
            calls += 1;
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_matches_criterion_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shape");
        g.sample_size(3);
        g.bench_function("one", |b| b.iter(|| 2 + 2));
        g.bench_with_input(BenchmarkId::from_parameter(16), &16usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(256).as_ref(), "256");
        assert_eq!(BenchmarkId::new("scan", 4).as_ref(), "scan/4");
    }
}
