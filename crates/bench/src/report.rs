//! Text rendering of the regenerated exhibits.

use nanocost_devices::DeviceRecord;
use nanocost_roadmap::Figure3Point;

/// Renders Table A1 with both the printed and recomputed `s_d` columns.
#[must_use]
pub fn render_table_a1(rows: &[DeviceRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>3} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}  {}\n",
        "#", "die cm²", "λ µm", "Mtr", "sd_mem", "sd_mem*", "sd_log", "sd_log*", "device"
    ));
    for r in rows {
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:>10.1}"),
            None => format!("{:>10}", "-"),
        };
        out.push_str(&format!(
            "{:>3} {:>8.2} {:>8.2} {:>8.2} {} {} {} {}  {}\n",
            r.id,
            r.die_cm2,
            r.feature_um,
            r.total_mtr,
            fmt_opt(r.published_sd_mem),
            fmt_opt(r.computed_sd_mem().map(|s| s.squares())),
            fmt_opt(r.published_sd_logic),
            format!("{:>10.1}", r.effective_sd_logic().squares()),
            r.label
        ));
    }
    out.push_str("\n(* = recomputed from the row's raw columns via eq. 2)\n");
    out
}

/// Renders the Figure-3 points as an aligned table.
#[must_use]
pub fn render_figure3(points: &[Figure3Point]) -> String {
    let mut out = format!(
        "{:>6} {:>8} {:>10} {:>13} {:>8}\n",
        "year", "node", "ITRS s_d", "required s_d", "ratio"
    );
    for p in points {
        out.push_str(&format!(
            "{:>6} {:>6.0}nm {:>10.1} {:>13.1} {:>8.2}\n",
            p.year, p.feature_nm, p.itrs_sd, p.required_sd, p.ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{figure3_points, table_a1_rows};

    #[test]
    fn table_render_has_one_line_per_row_plus_header_and_footer() {
        let rows = table_a1_rows();
        let text = render_table_a1(&rows);
        assert_eq!(text.lines().count(), rows.len() + 3);
        assert!(text.contains("K7"));
        assert!(text.contains("Alpha"));
    }

    #[test]
    fn figure3_render_contains_every_year() {
        let pts = figure3_points().unwrap();
        let text = render_figure3(&pts);
        for p in &pts {
            assert!(text.contains(&p.year.to_string()));
        }
    }
}
