//! The JSON endpoints: request routing, body decoding, and response
//! rendering over the scenario cache.
//!
//! Every model endpoint runs under a `serve.request` trace span inside
//! a [`nanocost_trace::with_capture`] frame with an installed
//! [`nanocost_trace::request_scope`], so every captured record (span,
//! events, and every Eq.-provenance record the evaluation or cache
//! replay emitted) carries the request's `req_id`. The capture is
//! stored under that id and replayable via `GET /v1/trace/<req-id>`
//! (`/v1/provenance/<req-id>` remains as an alias). Every request —
//! model or not — also produces one structured access-log record when
//! the server was configured with `NANOCOST_SERVE_ACCESS_LOG`.

use std::time::Instant;

use nanocost_core::{BatchRequest, CostQuery, ScenarioCache};
use nanocost_core::{DesignPoint, GeneralizedReport};
use nanocost_sentinel::json::{self, JsonValue};
use nanocost_trace::span::Span;
use nanocost_trace::value::json_string;
use nanocost_trace::{span, with_capture};
use nanocost_units::{
    DecompressionIndex, Dollars, FeatureSize, TransistorCount, UnitError, WaferCount, Yield,
};

use crate::http::{Request, Response};
use crate::state::ServerState;

/// Default `s_d` bracket for `/v1/optimum`, matching the Figure-4
/// scenarios.
pub const DEFAULT_SD_BRACKET: (f64, f64) = (110.0, 1_500.0);

/// Default trailing window for `GET /v1/profile`, in seconds.
pub const PROFILE_WINDOW_DEFAULT_S: u64 = 30;

/// An endpoint failure with the HTTP status it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (400 malformed, 422 domain violation).
    pub status: u16,
    /// Human-readable cause, returned as `{"error": …}`.
    pub message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }

    fn domain(e: &UnitError) -> Self {
        ApiError {
            status: 422,
            message: format!("domain violation: {e}"),
        }
    }
}

impl From<UnitError> for ApiError {
    fn from(e: UnitError) -> Self {
        ApiError::domain(&e)
    }
}

/// Routes one parsed request to its handler, timing it and emitting a
/// structured access-log record (when the server has an access log).
#[must_use]
pub fn handle(state: &ServerState, req: &Request) -> Response {
    let before = state.cache().stats();
    let started = Instant::now();
    let (endpoint, req_id, response) = route(state, req);
    let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let after = state.cache().stats();
    state.log_access(
        req_id.as_deref().unwrap_or("-"),
        endpoint,
        response.status,
        latency_ns,
        after.hits.saturating_sub(before.hits),
        after.misses.saturating_sub(before.misses),
    );
    response
}

/// Dispatches to the endpoint body; returns the endpoint label for the
/// access log, the request id (model endpoints only), and the response.
fn route(state: &ServerState, req: &Request) -> (&'static str, Option<String>, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/cost") => model_endpoint(state, "cost", &req.body, cost_endpoint),
        ("POST", "/v1/yield") => model_endpoint(state, "yield", &req.body, yield_endpoint),
        ("POST", "/v1/optimum") => model_endpoint(state, "optimum", &req.body, optimum_endpoint),
        ("POST", "/v1/batch") => model_endpoint(state, "batch", &req.body, batch_endpoint),
        ("GET", "/v1/metrics") => ("metrics", None, Response::json(200, state.metrics_json())),
        ("GET", "/v1/metrics/raw") => {
            ("metrics_raw", None, Response::json(200, state.metrics_raw_json()))
        }
        ("GET", "/v1/health") => {
            let (status, body) = state.health_json(nanocost_trace::epoch_nanos());
            ("health", None, Response::json(status, body))
        }
        ("GET", path) if path == "/v1/profile" || path.starts_with("/v1/profile?") => {
            ("profile", None, profile_endpoint(state, path))
        }
        ("GET", path) if path.starts_with("/v1/trace/") => {
            ("trace", None, trace_endpoint(state, path, "/v1/trace/"))
        }
        ("GET", path) if path.starts_with("/v1/provenance/") => {
            ("trace", None, trace_endpoint(state, path, "/v1/provenance/"))
        }
        (_, "/v1/cost" | "/v1/yield" | "/v1/optimum" | "/v1/batch") => {
            ("bad_method", None, Response::error(405, "use POST"))
        }
        (_, "/v1/metrics" | "/v1/metrics/raw" | "/v1/health") => {
            ("bad_method", None, Response::error(405, "use GET"))
        }
        (_, path) if path == "/v1/profile" || path.starts_with("/v1/profile?") => {
            ("bad_method", None, Response::error(405, "use GET"))
        }
        (_, path) if path.starts_with("/v1/trace/") || path.starts_with("/v1/provenance/") => {
            ("bad_method", None, Response::error(405, "use GET"))
        }
        _ => ("unknown", None, Response::error(404, "unknown endpoint")),
    }
}

/// Runs one model endpoint: decode → traced evaluation under a capture
/// frame and request scope → latency + exemplar observation → trace
/// storage.
fn model_endpoint(
    state: &ServerState,
    endpoint: &'static str,
    body: &[u8],
    run: impl FnOnce(&ScenarioCache, &JsonValue) -> Result<String, ApiError>,
) -> (&'static str, Option<String>, Response) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (endpoint, None, Response::error(400, "body is not UTF-8")),
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return (
                endpoint,
                None,
                Response::error(400, &format!("body is not JSON: {e}")),
            )
        }
    };
    let req_id = state.next_request_id();
    let started = Instant::now();
    let (records, result) = with_capture(|| {
        // Scope before span: the span drops (and its exit record is
        // emitted) while the request scope is still installed, so the
        // whole capture carries `req_id`.
        let _scope = nanocost_trace::request_scope(&req_id);
        let _span = span!("serve.request", endpoint = endpoint, req = req_id.as_str());
        // A static per-endpoint child span (`serve.endpoint.cost` etc.)
        // so the stack profiler can attribute samples to endpoints.
        let _ep = endpoint_span(endpoint);
        run(state.cache(), &doc)
    });
    let latency_us = started.elapsed().as_secs_f64() * 1e6;
    let t_ns = nanocost_trace::epoch_nanos();
    match result {
        Ok(fields) => {
            // Only successful requests store a capture, so only they
            // leave an exemplar — an exemplar must always round-trip to
            // a fetchable trace.
            state.store_trace(&req_id, &records);
            state.observe(endpoint, latency_us, Some(&req_id), t_ns);
            let body = format!("{{\"req_id\":{},{fields}}}", json_string(&req_id));
            (endpoint, Some(req_id), Response::json(200, body))
        }
        Err(e) => {
            state.observe(endpoint, latency_us, None, t_ns);
            (endpoint, Some(req_id), Response::error(e.status, &e.message))
        }
    }
}

/// The profiler's per-endpoint span. Span names must be `&'static str`
/// (the seqlock slots publish pointers, not copies), hence the match
/// instead of a formatted name.
fn endpoint_span(endpoint: &'static str) -> Span {
    match endpoint {
        "cost" => span!("serve.endpoint.cost"),
        "yield" => span!("serve.endpoint.yield"),
        "optimum" => span!("serve.endpoint.optimum"),
        "batch" => span!("serve.endpoint.batch"),
        _ => Span::inert(),
    }
}

fn trace_endpoint(state: &ServerState, path: &str, prefix: &str) -> Response {
    let id = path.trim_start_matches(prefix);
    match state.trace(id) {
        Some(text) => Response::jsonl(200, text),
        // Distinguish a capture that existed but aged out of the ring
        // (410 + machine-readable context, so loadgen can tolerate the
        // exemplar/eviction race) from an id that never existed (404).
        None if state.likely_evicted(id) => Response::json(
            410,
            format!(
                "{{\"error\":\"trace evicted from ring\",\"context\":\"serve.trace_ring.evicted\",\"req_id\":{}}}",
                json_string(id)
            ),
        ),
        None => Response::error(404, "unknown request id"),
    }
}

/// `GET /v1/profile?window_s=N`: the deterministic stack-sample report
/// over the trailing window (default 30 s, clamped to one hour).
fn profile_endpoint(state: &ServerState, path: &str) -> Response {
    let window_s = match path.split_once('?') {
        None => PROFILE_WINDOW_DEFAULT_S,
        Some((_, query)) => {
            let mut window = None;
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
                if key != "window_s" {
                    return Response::error(400, &format!("unknown query parameter `{key}`"));
                }
                match value.parse::<u64>() {
                    Ok(s) if s >= 1 => window = Some(s.min(crate::state::PROFILE_WINDOW_MAX_S)),
                    _ => {
                        return Response::error(
                            400,
                            "window_s must be a positive integer number of seconds",
                        )
                    }
                }
            }
            window.unwrap_or(PROFILE_WINDOW_DEFAULT_S)
        }
    };
    Response::json(200, state.profile_report_json(window_s))
}

// ---- body decoding helpers -------------------------------------------------

fn num(doc: &JsonValue, key: &str) -> Result<f64, ApiError> {
    doc.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ApiError::bad_request(format!("missing numeric field `{key}`")))
}

fn num_or(doc: &JsonValue, key: &str, default: f64) -> Result<f64, ApiError> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ApiError::bad_request(format!("field `{key}` must be a number"))),
    }
}

fn wafers(doc: &JsonValue, key: &str) -> Result<WaferCount, ApiError> {
    let v = num(doc, key)?;
    if !(v.is_finite() && v >= 0.0 && v.fract().abs() < f64::EPSILON) {
        return Err(ApiError::bad_request(format!(
            "field `{key}` must be a non-negative integer"
        )));
    }
    Ok(WaferCount::new(v as u64)?)
}

/// Decodes one eq.-4 query object; `mask_cost` defaults to the cached
/// eq.-5 mask-set cost for the query's node.
fn cost_query(cache: &ScenarioCache, doc: &JsonValue) -> Result<CostQuery, ApiError> {
    let lambda = FeatureSize::from_microns(num(doc, "lambda_um")?)?;
    let mask_cost = match doc.get("mask_cost") {
        None | Some(JsonValue::Null) => cache.mask_set_cost(lambda),
        // `try_new`, not `new`: JSON `1e400` parses to +inf (f64 parse
        // saturates) and must map to a 422, never a panic.
        Some(v) => Dollars::try_new(v.as_f64().ok_or_else(|| {
            ApiError::bad_request("field `mask_cost` must be a number")
        })?)?,
    };
    Ok(CostQuery {
        lambda,
        sd: DecompressionIndex::new(num(doc, "sd")?)?,
        transistors: TransistorCount::new(num(doc, "transistors")?)?,
        volume: wafers(doc, "volume")?,
        fab_yield: Yield::new(num(doc, "fab_yield")?)?,
        mask_cost,
    })
}

// ---- endpoint bodies -------------------------------------------------------

fn breakdown_fields(b: &nanocost_core::CostBreakdown) -> String {
    format!(
        "\"total\":{:e},\"manufacturing\":{:e},\"design\":{:e},\"design_per_cm2\":{:e},\"design_fraction\":{:e}",
        b.total().amount(),
        b.manufacturing.amount(),
        b.design.amount(),
        b.design_per_cm2.dollars_per_cm2(),
        b.design_fraction(),
    )
}

fn cost_endpoint(cache: &ScenarioCache, doc: &JsonValue) -> Result<String, ApiError> {
    let q = cost_query(cache, doc)?;
    let b = cache.transistor_cost(q.lambda, q.sd, q.transistors, q.volume, q.fab_yield, q.mask_cost)?;
    Ok(format!(
        "{},\"mask_cost\":{:e}",
        breakdown_fields(&b),
        q.mask_cost.amount()
    ))
}

fn report_fields(r: &GeneralizedReport) -> String {
    format!(
        "\"fab_yield\":{:e},\"effective_yield\":{:e},\"transistor_cost\":{:e},\"test_cost\":{:e},\"die_cost\":{:e},\"cm_sq\":{:e},\"cd_sq\":{:e}",
        r.fab_yield.value(),
        r.effective_yield.value(),
        r.transistor_cost.amount(),
        r.test_cost.amount(),
        r.die_cost.amount(),
        r.cm_sq.dollars_per_cm2(),
        r.cd_sq.dollars_per_cm2(),
    )
}

fn yield_endpoint(cache: &ScenarioCache, doc: &JsonValue) -> Result<String, ApiError> {
    let point = DesignPoint {
        lambda: FeatureSize::from_microns(num(doc, "lambda_um")?)?,
        sd: DecompressionIndex::new(num(doc, "sd")?)?,
        transistors: TransistorCount::new(num(doc, "transistors")?)?,
        volume: wafers(doc, "volume")?,
    };
    let r = cache.evaluate_generalized(point)?;
    Ok(report_fields(&r))
}

fn optimum_endpoint(cache: &ScenarioCache, doc: &JsonValue) -> Result<String, ApiError> {
    let lambda = FeatureSize::from_microns(num(doc, "lambda_um")?)?;
    let mask_cost = match doc.get("mask_cost") {
        None | Some(JsonValue::Null) => cache.mask_set_cost(lambda),
        Some(v) => Dollars::try_new(v.as_f64().ok_or_else(|| {
            ApiError::bad_request("field `mask_cost` must be a number")
        })?)?,
    };
    let sd_lo = num_or(doc, "sd_lo", DEFAULT_SD_BRACKET.0)?;
    let sd_hi = num_or(doc, "sd_hi", DEFAULT_SD_BRACKET.1)?;
    let optimum = cache
        .optimal_sd(
            lambda,
            TransistorCount::new(num(doc, "transistors")?)?,
            wafers(doc, "volume")?,
            Yield::new(num(doc, "fab_yield")?)?,
            mask_cost,
            sd_lo,
            sd_hi,
        )
        .map_err(|e| ApiError {
            status: 422,
            message: format!("optimizer: {e}"),
        })?;
    Ok(format!(
        "\"sd\":{:e},\"cost\":{:e},\"mask_cost\":{:e}",
        optimum.sd,
        optimum.cost.amount(),
        mask_cost.amount()
    ))
}

fn batch_endpoint(cache: &ScenarioCache, doc: &JsonValue) -> Result<String, ApiError> {
    let Some(JsonValue::Arr(items)) = doc.get("queries") else {
        return Err(ApiError::bad_request("missing array field `queries`"));
    };
    let queries = items
        .iter()
        .map(|item| cost_query(cache, item))
        .collect::<Result<Vec<_>, _>>()?;
    let response = cache.evaluate_batch(&BatchRequest { queries });
    let mut results = String::from("[");
    for (i, r) in response.results.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        match r {
            Ok(b) => {
                results.push('{');
                results.push_str(&breakdown_fields(b));
                results.push('}');
            }
            Err(e) => results.push_str(&format!(
                "{{\"error\":{}}}",
                json_string(&format!("{e}"))
            )),
        }
    }
    results.push(']');
    let s = response.stats;
    Ok(format!(
        "\"results\":{results},\"stats\":{{\"requested\":{},\"unique\":{},\"hits\":{},\"misses\":{}}}",
        s.requested, s.unique, s.hits, s.misses
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        }
    }

    fn body_str(r: &Response) -> String {
        String::from_utf8(r.body.clone()).unwrap()
    }

    const COST_BODY: &str =
        r#"{"lambda_um":0.18,"sd":300,"transistors":1e7,"volume":5000,"fab_yield":0.4}"#;

    #[test]
    fn cost_endpoint_prices_a_point() {
        let state = ServerState::new();
        let r = handle(&state, &post("/v1/cost", COST_BODY));
        assert_eq!(r.status, 200, "{}", body_str(&r));
        let body = body_str(&r);
        nanocost_trace::json::validate(&body).expect("valid JSON");
        assert!(body.contains("\"req_id\":\"r1\""));
        assert!(body.contains("\"total\":"));
    }

    #[test]
    fn yield_endpoint_reports_the_surface() {
        let state = ServerState::new();
        let r = handle(
            &state,
            &post(
                "/v1/yield",
                r#"{"lambda_um":0.13,"sd":400,"transistors":1e7,"volume":20000}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", body_str(&r));
        assert!(body_str(&r).contains("\"effective_yield\":"));
    }

    #[test]
    fn optimum_endpoint_locates_sd_star() {
        let state = ServerState::new();
        let r = handle(
            &state,
            &post(
                "/v1/optimum",
                r#"{"lambda_um":0.18,"transistors":1e7,"volume":5000,"fab_yield":0.4}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", body_str(&r));
        assert!(body_str(&r).contains("\"sd\":"));
    }

    #[test]
    fn batch_endpoint_reports_dedup_stats() {
        let state = ServerState::new();
        let q = r#"{"lambda_um":0.18,"sd":300,"transistors":1e7,"volume":5000,"fab_yield":0.4}"#;
        let body = format!("{{\"queries\":[{q},{q},{q}]}}");
        let r = handle(&state, &post("/v1/batch", &body));
        assert_eq!(r.status, 200, "{}", body_str(&r));
        let body = body_str(&r);
        nanocost_trace::json::validate(&body).expect("valid JSON");
        assert!(body.contains("\"requested\":3"));
        assert!(body.contains("\"unique\":1"));
        assert!(body.contains("\"hits\":2"));
    }

    #[test]
    fn provenance_is_replayable_per_request() {
        let state = ServerState::new();
        let r = handle(&state, &post("/v1/cost", COST_BODY));
        assert_eq!(r.status, 200);
        let r = handle(&state, &get("/v1/provenance/r1"));
        assert_eq!(r.status, 200);
        let capture = body_str(&r);
        assert!(capture.contains("\"type\":\"provenance\""), "{capture}");
        assert!(capture.contains("Eq."), "{capture}");
        for line in capture.lines() {
            nanocost_trace::json::validate(line).expect("each capture line is JSON");
        }
        let r = handle(&state, &get("/v1/provenance/r999"));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn trace_endpoint_serves_request_scoped_captures() {
        let state = ServerState::new();
        let r = handle(&state, &post("/v1/cost", COST_BODY));
        assert_eq!(r.status, 200);
        let r = handle(&state, &get("/v1/trace/r1"));
        assert_eq!(r.status, 200);
        let capture = body_str(&r);
        // Every record in the capture — the span pair, events, and all
        // provenance — must carry the request id.
        for line in capture.lines() {
            assert!(
                line.contains("\"req_id\":\"r1\""),
                "untagged capture record: {line}"
            );
        }
        assert!(capture.contains("\"type\":\"span_enter\""), "{capture}");
        assert_eq!(handle(&state, &get("/v1/trace/r999")).status, 404);
        assert_eq!(handle(&state, &post("/v1/trace/r1", "{}")).status, 405);
    }

    #[test]
    fn health_reports_ok_on_an_idle_server() {
        let state = ServerState::new();
        let r = handle(&state, &get("/v1/health"));
        assert_eq!(r.status, 200, "{}", body_str(&r));
        let body = body_str(&r);
        nanocost_trace::json::validate(&body).expect("valid JSON");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"name\":\"latency\""), "{body}");
        assert_eq!(handle(&state, &post("/v1/health", "{}")).status, 405);
    }

    #[test]
    fn raw_metrics_endpoint_serves_mergeable_state() {
        let state = ServerState::new();
        handle(&state, &post("/v1/cost", COST_BODY));
        handle(&state, &post("/v1/cost", COST_BODY));
        let r = handle(&state, &get("/v1/metrics/raw"));
        assert_eq!(r.status, 200, "{}", body_str(&r));
        let body = body_str(&r);
        nanocost_trace::json::validate(&body).expect("valid JSON");
        let snap =
            nanocost_sentinel::RawSnapshot::parse(&body).expect("federation parser accepts it");
        assert_eq!(snap.counters.get("requests_total"), Some(&2));
        assert_eq!(
            snap.endpoints.get("cost").map(nanocost_sentinel::LogHistogram::count),
            Some(2)
        );
        assert_eq!(handle(&state, &post("/v1/metrics/raw", "{}")).status, 405);
    }

    #[test]
    fn successful_requests_leave_a_p99_exemplar() {
        let state = ServerState::new();
        handle(&state, &post("/v1/cost", COST_BODY));
        handle(&state, &post("/v1/cost", COST_BODY));
        let metrics = body_str(&handle(&state, &get("/v1/metrics")));
        let marker = "\"p99_exemplar\":{\"req_id\":\"";
        let at = metrics.find(marker).expect("exemplar in metrics");
        let rest = &metrics[at + marker.len()..];
        let req_id = &rest[..rest.find('"').expect("closing quote")];
        // The exemplar's request id round-trips to a fetchable trace.
        let r = handle(&state, &get(&format!("/v1/trace/{req_id}")));
        assert_eq!(r.status, 200, "exemplar {req_id} has no stored trace");
    }

    #[test]
    fn metrics_track_endpoint_latencies() {
        let state = ServerState::new();
        handle(&state, &post("/v1/cost", COST_BODY));
        handle(&state, &post("/v1/cost", COST_BODY));
        let r = handle(&state, &get("/v1/metrics"));
        assert_eq!(r.status, 200);
        let body = body_str(&r);
        nanocost_trace::json::validate(&body).expect("valid JSON");
        assert!(body.contains("\"cost\":{\"count\":2"), "{body}");
        assert!(body.contains("\"hit_rate\":"), "{body}");
    }

    #[test]
    fn non_finite_mask_cost_is_a_422_not_a_panic() {
        // JSON `1e400` saturates to +inf under f64 parse and RFC 8259's
        // grammar admits it; it must surface as a domain error — a
        // panic here would kill a worker thread for good.
        let state = ServerState::new();
        for mask in ["1e400", "-1e400"] {
            let body = format!(
                r#"{{"lambda_um":0.18,"sd":300,"transistors":1e7,"volume":5000,"fab_yield":0.4,"mask_cost":{mask}}}"#
            );
            let r = handle(&state, &post("/v1/cost", &body));
            assert_eq!(r.status, 422, "{}", body_str(&r));
            let batch = format!("{{\"queries\":[{body}]}}");
            let r = handle(&state, &post("/v1/batch", &batch));
            assert_eq!(r.status, 422, "{}", body_str(&r));
            let opt = format!(
                r#"{{"lambda_um":0.18,"transistors":1e7,"volume":5000,"fab_yield":0.4,"mask_cost":{mask}}}"#
            );
            let r = handle(&state, &post("/v1/optimum", &opt));
            assert_eq!(r.status, 422, "{}", body_str(&r));
        }
    }

    #[test]
    fn profile_endpoint_serves_a_report_and_validates_the_window() {
        let state = ServerState::new();
        let r = handle(&state, &get("/v1/profile"));
        assert_eq!(r.status, 200, "{}", body_str(&r));
        let body = body_str(&r);
        nanocost_trace::json::validate(&body).expect("valid JSON");
        assert!(body.contains("\"samples\":0"), "idle server has an empty report: {body}");
        // A ring sample within the window shows up in the report.
        let snap = nanocost_trace::stack_registry::StackSnapshot {
            thread: 1,
            frames: vec!["serve.request", "serve.endpoint.cost"],
            depth: 2,
            req_id: Some("r1".into()),
        };
        state.profile_ring().push_batch(&[snap], nanocost_trace::epoch_nanos());
        let body = body_str(&handle(&state, &get("/v1/profile?window_s=3600")));
        assert!(body.contains("\"samples\":1"), "{body}");
        assert!(body.contains("serve.endpoint.cost"), "{body}");
        // Window validation.
        assert_eq!(handle(&state, &get("/v1/profile?window_s=0")).status, 400);
        assert_eq!(handle(&state, &get("/v1/profile?window_s=abc")).status, 400);
        assert_eq!(handle(&state, &get("/v1/profile?bogus=1")).status, 400);
        assert_eq!(handle(&state, &post("/v1/profile", "{}")).status, 405);
        assert_eq!(handle(&state, &post("/v1/profile?window_s=5", "{}")).status, 405);
    }

    #[test]
    fn evicted_traces_answer_410_with_machine_readable_context() {
        let state = ServerState::with_config(crate::state::ServerStateConfig {
            trace_ring: 1,
            ..Default::default()
        })
        .expect("valid config");
        let r = handle(&state, &post("/v1/cost", COST_BODY));
        assert_eq!(r.status, 200);
        let r = handle(&state, &post("/v1/cost", COST_BODY));
        assert_eq!(r.status, 200);
        // r1's capture was evicted by r2's: gone, not unknown.
        let r = handle(&state, &get("/v1/trace/r1"));
        assert_eq!(r.status, 410, "{}", body_str(&r));
        let body = body_str(&r);
        assert!(body.contains("\"context\":\"serve.trace_ring.evicted\""), "{body}");
        assert!(body.contains("\"req_id\":\"r1\""), "{body}");
        assert_eq!(handle(&state, &get("/v1/trace/r2")).status, 200);
        assert_eq!(handle(&state, &get("/v1/trace/r999")).status, 404, "never issued");
    }

    #[test]
    fn malformed_and_misrouted_requests_get_clean_errors() {
        let state = ServerState::new();
        assert_eq!(handle(&state, &post("/v1/cost", "not json")).status, 400);
        assert_eq!(handle(&state, &post("/v1/cost", "{}")).status, 400);
        // sd below s_d0 is an eq.-6 domain violation, not a 500.
        let r = handle(
            &state,
            &post(
                "/v1/cost",
                r#"{"lambda_um":0.18,"sd":50,"transistors":1e7,"volume":5000,"fab_yield":0.4}"#,
            ),
        );
        assert_eq!(r.status, 422, "{}", body_str(&r));
        assert_eq!(handle(&state, &get("/v1/cost")).status, 405);
        assert_eq!(handle(&state, &post("/v1/metrics", "{}")).status, 405);
        assert_eq!(handle(&state, &get("/nope")).status, 404);
    }
}
