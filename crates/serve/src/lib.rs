//! `nanocost-serve` — a zero-dependency query server over the nanocost
//! cost models.
//!
//! The paper's eqs. 1–7 are *queries* a design team asks repeatedly
//! while exploring the `(λ, s_d, N_tr, N_w, Y)` space; this crate turns
//! the reproduction into the long-running service that exploration loop
//! wants. Plain `std::net` HTTP/1.1, a fixed worker pool, and JSON
//! endpoints backed by the [`nanocost_core::ScenarioCache`]:
//!
//! | Endpoint | Method | Answers |
//! |---|---|---|
//! | `/v1/cost` | POST | eq. 4 cost breakdown at a design point |
//! | `/v1/yield` | POST | eq. 7 generalized report (yield surface) |
//! | `/v1/optimum` | POST | §3.1 cost-optimal `s_d*` |
//! | `/v1/batch` | POST | deduplicated eq.-4 grid evaluation |
//! | `/v1/metrics` | GET | latency quantiles + cache hit rates |
//! | `/v1/provenance/<req-id>` | GET | the request's Eq.-provenance capture |
//!
//! Every model request runs inside a `nanocost-trace` capture frame;
//! its records are stored by request id and replayable as JSONL that
//! passes `trace_check`. Per-endpoint latencies feed
//! `nanocost-sentinel` [`LogHistogram`](nanocost_sentinel::LogHistogram)s
//! surfaced at `/v1/metrics`. The `loadgen` bin drives concurrent
//! request mixes and emits a `NANOCOST_BENCH_JSON` capture so
//! `bench_diff` can gate server latency like any other benchmark.

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod server;
pub mod state;

pub use api::handle;
pub use http::{read_request, ParseError, Request, Response};
pub use server::{Server, ServerConfig};
pub use state::ServerState;
