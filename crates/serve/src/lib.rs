//! `nanocost-serve` — a zero-dependency query server over the nanocost
//! cost models.
//!
//! The paper's eqs. 1–7 are *queries* a design team asks repeatedly
//! while exploring the `(λ, s_d, N_tr, N_w, Y)` space; this crate turns
//! the reproduction into the long-running service that exploration loop
//! wants. Plain `std::net` HTTP/1.1, a fixed worker pool, and JSON
//! endpoints backed by the [`nanocost_core::ScenarioCache`]:
//!
//! | Endpoint | Method | Answers |
//! |---|---|---|
//! | `/v1/cost` | POST | eq. 4 cost breakdown at a design point |
//! | `/v1/yield` | POST | eq. 7 generalized report (yield surface) |
//! | `/v1/optimum` | POST | §3.1 cost-optimal `s_d*` |
//! | `/v1/batch` | POST | deduplicated eq.-4 grid evaluation |
//! | `/v1/metrics` | GET | latency quantiles + p99 exemplars + counters + cache hit rates |
//! | `/v1/metrics/raw` | GET | mergeable raw state (histogram buckets, windowed SLO counters) for federation |
//! | `/v1/health` | GET | SLO burn-rate verdict (200 ok / 503 firing) |
//! | `/v1/trace/<req-id>` | GET | the request's full trace capture (JSONL) |
//! | `/v1/provenance/<req-id>` | GET | alias of `/v1/trace/<req-id>` |
//!
//! Every model request runs inside a `nanocost-trace` capture frame
//! under an installed request scope, so every captured record carries
//! the request's `req_id`; captures are stored in a configurable ring
//! and replayable as JSONL that passes `trace_check`. Per-endpoint
//! latencies feed `nanocost-sentinel`
//! [`LogHistogram`](nanocost_sentinel::LogHistogram)s whose per-bucket
//! exemplars let `/v1/metrics` link an anonymous p99 to a fetchable
//! trace, and latency/shed events feed dual-window
//! [`SloMonitor`](nanocost_sentinel::SloMonitor)s behind `/v1/health`.
//! The `loadgen` bin drives concurrent request mixes, checks soak
//! pass/fail criteria against those SLOs, and emits a
//! `NANOCOST_BENCH_JSON` capture so `bench_diff` can gate server
//! latency like any other benchmark; `trace_tail --attach` renders the
//! live dashboard from the `/v1/metrics` scrape. In a fleet, each
//! replica is labeled via `NANOCOST_REPLICA`; `/v1/metrics/raw` then
//! publishes the replica's *mergeable* state (raw histogram buckets
//! with replica-tagged exemplars, summable windowed SLO counters) in
//! the [`nanocost_sentinel::federate`] wire format, and `fleet_report`
//! or a multi-`--attach` `trace_tail` folds N replicas into one
//! fleet-wide view.

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod server;
pub mod state;

pub use api::handle;
pub use http::{read_request, ParseError, Request, Response};
pub use server::{Server, ServerConfig};
pub use state::{render_access_record, ServerState, ServerStateConfig};
