//! The TCP accept loop and fixed-size worker pool.
//!
//! Everything is plain `std`: a non-blocking [`TcpListener`] polled
//! against a shutdown flag, a *bounded* `mpsc::sync_channel` feeding a
//! fixed pool of scoped worker threads, and per-connection read/write
//! deadlines so a stalled peer can never wedge a worker (the
//! bounded-read property the fuzz suite exercises end to end). A burst
//! of slow clients cannot grow the queue or the open-fd count without
//! bound either: connections arriving while the queue is full are shed
//! with a best-effort 503 and closed.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use nanocost_trace::stack_registry;

use crate::api;
use crate::http::{self, Response};
use crate::state::{ProfileRing, ServerState, WorkerStat};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker thread count (clamped to at least one).
    pub workers: usize,
    /// Per-connection read/write deadline.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            io_timeout: Duration::from_secs(2),
        }
    }
}

/// How long the accept loop sleeps when idle before re-checking the
/// shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long a worker blocks on the connection queue before re-checking
/// the shutdown flag.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// Per-worker depth of the bounded connection queue. With the default
/// 2s deadline a full queue drains in a few seconds, so a deeper
/// backlog would only hold file descriptors open for peers that will
/// time out anyway — shed them instead.
const QUEUE_DEPTH_PER_WORKER: usize = 8;

/// Write deadline for the best-effort 503 sent to a shed connection;
/// the accept loop must never block on a peer that refuses to read.
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(100);

/// A bound server, ready to run.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: ServerState,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener and builds fresh default [`ServerState`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        Server::bind_with_state(config, ServerState::new())
    }

    /// Binds the listener around pre-built state (the `serve` bin uses
    /// this to apply `ServerStateConfig::from_env`).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_state(config: ServerConfig, state: ServerState) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// The bound address (resolves the ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (exposed for in-process tests).
    #[must_use]
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Serves until `shutdown` becomes true: accepts connections on the
    /// main thread and dispatches them to the worker pool through a
    /// bounded queue. Connections arriving while the queue is full are
    /// shed with a 503 rather than queued. Returns once every worker
    /// has drained.
    ///
    /// # Errors
    ///
    /// Propagates a listener configuration failure; per-connection I/O
    /// errors are contained to their connection.
    pub fn run(&self, shutdown: &AtomicBool) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let workers = self.config.workers.max(1);
        let stats = self.state.install_workers(workers);
        self.start_profiler();
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers * QUEUE_DEPTH_PER_WORKER);
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for stat in &stats {
                scope.spawn(|| worker_loop(&self.state, &rx, shutdown, self.config.io_timeout, stat));
            }
            while !shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.state.note_conn_open();
                        match tx.try_send(stream) {
                            Ok(()) => self.state.note_queue_push(),
                            // Queue saturated (slowloris burst or plain
                            // overload): shed instead of queueing,
                            // keeping backlog and open-fd count bounded.
                            Err(mpsc::TrySendError::Full(stream)) => {
                                reject_busy(&self.state, stream);
                            }
                            // Workers only exit on shutdown.
                            Err(mpsc::TrySendError::Disconnected(stream)) => {
                                drop(stream);
                                self.state.note_conn_close();
                                break;
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            drop(tx);
        });
        Ok(())
    }

    /// Starts the continuous stack profiler (when configured on) and
    /// wires its sample stream into this server's profile ring. The
    /// sink holds a `Weak` so a dropped server (tests bind many) never
    /// keeps its ring alive, and the process-wide sampler keeps running
    /// for whichever servers remain.
    fn start_profiler(&self) {
        let hz = self.state.profile_hz();
        if hz == 0 {
            return;
        }
        let ring: Weak<ProfileRing> = Arc::downgrade(self.state.profile_ring());
        stack_registry::add_sink(Box::new(move |snaps, t_ns| {
            if let Some(ring) = ring.upgrade() {
                ring.push_batch(snaps, t_ns);
            }
        }));
        // Idempotent across servers: the first caller's rate wins.
        let _ = stack_registry::start_sampler(hz);
    }
}

/// Sheds one connection when the worker queue is full: a best-effort
/// 503 under a short write deadline, then close. Each shed feeds the
/// shed-rate SLO objective.
fn reject_busy(state: &ServerState, mut stream: TcpStream) {
    state.note_shed(nanocost_trace::epoch_nanos());
    let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
    let _ = Response::error(503, "connection queue full").write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    // A shed connection was counted open by the accept loop.
    state.note_conn_close();
}

fn worker_loop(
    state: &ServerState,
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    shutdown: &AtomicBool,
    io_timeout: Duration,
    stat: &WorkerStat,
) {
    loop {
        let wait_started = Instant::now();
        let next = {
            let guard = rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv_timeout(WORKER_POLL)
        };
        let waited = u64::try_from(wait_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stat.idle_ns.fetch_add(waited, Ordering::Relaxed);
        match next {
            Ok(stream) => {
                state.note_queue_pop();
                let busy_started = Instant::now();
                handle_connection(state, stream, io_timeout);
                let busy = u64::try_from(busy_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                stat.busy_ns.fetch_add(busy, Ordering::Relaxed);
                stat.served.fetch_add(1, Ordering::Relaxed);
                state.note_conn_close();
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection: parse, route, respond, close. Parse failures
/// become their mapped 4xx response; a peer that stalls past the
/// deadline gets a 408 (or a silent close if it stopped reading too).
fn handle_connection(state: &ServerState, mut stream: TcpStream, io_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let response = match http::read_request(&mut stream) {
        Ok(request) => api::handle(state, &request),
        Err(e) => Response::error(e.status(), &e.to_string()),
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
