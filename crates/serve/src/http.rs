//! A bounded HTTP/1.1 request parser and response writer over plain
//! `std::io` streams.
//!
//! The parser is deliberately small and hostile-input-proof: every
//! dimension of a request (head size, header count, body size) is
//! bounded by a constant, reads are incremental so split TCP segments
//! reassemble correctly, and every malformed input maps to a typed
//! [`ParseError`] — never a panic. The property fuzz suite in
//! `tests/http_fuzz.rs` drives arbitrary byte streams, split reads,
//! oversized heads, and truncated bodies through [`read_request`].

use std::io::Read;

/// Upper bound on the request line plus header block, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on the number of request headers.
pub const MAX_HEADERS: usize = 64;

/// Upper bound on a request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Read chunk size; small enough that bounds are enforced promptly.
const CHUNK: usize = 2048;

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target path, as sent (no normalization).
    pub path: String,
    /// Protocol version token (`HTTP/1.1`).
    pub version: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value matching `name`, ASCII-case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed (or the stream ended) before a full request
    /// arrived.
    UnexpectedEof,
    /// The request line + headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// More than [`MAX_HEADERS`] headers.
    TooManyHeaders,
    /// The request line is not `METHOD SP PATH SP HTTP/x.y`.
    BadRequestLine,
    /// A header line is not `name: value` (or is not valid UTF-8).
    BadHeader,
    /// `Content-Length` is not a plain ASCII-digit value (signs,
    /// leading zeros, and non-digits are all rejected), or is repeated
    /// with conflicting values.
    BadContentLength,
    /// A `Transfer-Encoding` header was present; this server only
    /// supports `Content-Length`-delimited bodies, and silently
    /// treating a chunked body as length 0 would desynchronize framing
    /// if keep-alive were ever added.
    UnsupportedTransferEncoding,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The underlying stream failed (including read timeouts).
    Io(std::io::ErrorKind),
}

impl ParseError {
    /// The HTTP status code this parse failure maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadTooLarge | ParseError::BodyTooLarge => 413,
            ParseError::Io(std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => 408,
            // RFC 9112 §6.1: an unhandled transfer coding gets a 501.
            ParseError::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnexpectedEof => write!(f, "connection closed mid-request"),
            ParseError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::BadHeader => write!(f, "malformed header"),
            ParseError::BadContentLength => write!(f, "malformed content-length"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported")
            }
            ParseError::BodyTooLarge => write!(f, "body exceeds {MAX_BODY_BYTES} bytes"),
            ParseError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Reads one request from `stream`, reassembling split reads and
/// enforcing every bound.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first violation; the caller
/// maps it to a 400/408/413 response via [`ParseError::status`].
pub fn read_request(stream: &mut impl Read) -> Result<Request, ParseError> {
    let mut buf: Vec<u8> = Vec::with_capacity(CHUNK);
    let mut chunk = [0u8; CHUNK];
    // Phase 1: accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|e| ParseError::Io(e.kind()))?;
        if n == 0 {
            return Err(ParseError::UnexpectedEof);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end.head_len > MAX_HEAD_BYTES {
        return Err(ParseError::HeadTooLarge);
    }
    let head =
        std::str::from_utf8(&buf[..head_end.head_len]).map_err(|_| ParseError::BadHeader)?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let (method, path, version) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        let name = name.trim();
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(ParseError::BadHeader);
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    if headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding"))
    {
        return Err(ParseError::UnsupportedTransferEncoding);
    }
    let content_length = content_length(&headers)?;
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge);
    }
    // Phase 2: the body — whatever arrived past the head plus the rest.
    let mut body: Vec<u8> = buf[head_end.body_start.min(buf.len())..].to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        let want = (content_length - body.len()).min(CHUNK);
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| ParseError::Io(e.kind()))?;
        if n == 0 {
            return Err(ParseError::UnexpectedEof);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request {
        method,
        path,
        version,
        headers,
        body,
    })
}

struct HeadEnd {
    /// Bytes of the head, excluding the terminating blank line.
    head_len: usize,
    /// Offset of the first body byte.
    body_start: usize,
}

/// Locates the end-of-head blank line (`\r\n\r\n`, tolerating bare
/// `\n\n`), if fully buffered.
fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // "\n\r\n" or "\n\n" terminates the head.
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(HeadEnd {
                    head_len: i,
                    body_start: i + 3,
                });
            }
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(HeadEnd {
                    head_len: i,
                    body_start: i + 2,
                });
            }
        }
        i += 1;
    }
    None
}

fn parse_request_line(line: &str) -> Result<(String, String, String), ParseError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(ParseError::BadRequestLine)?;
    let path = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if parts.next().is_some()
        || !version.starts_with("HTTP/")
        || method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_alphabetic())
        || !path.starts_with('/')
    {
        return Err(ParseError::BadRequestLine);
    }
    Ok((method.to_string(), path.to_string(), version.to_string()))
}

fn content_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    let mut out: Option<usize> = None;
    for (name, value) in headers {
        if !name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        // RFC 9110 grammar is 1*DIGIT. `usize::from_str` alone also
        // admits `+42`, and `042` normalizes silently — reject both so
        // the parsed length is exactly what the client wrote.
        if value.is_empty()
            || !value.bytes().all(|b| b.is_ascii_digit())
            || (value.len() > 1 && value.starts_with('0'))
        {
            return Err(ParseError::BadContentLength);
        }
        let parsed: usize = value.parse().map_err(|_| ParseError::BadContentLength)?;
        match out {
            Some(prev) if prev != parsed => return Err(ParseError::BadContentLength),
            _ => out = Some(parsed),
        }
    }
    Ok(out.unwrap_or(0))
}

/// One HTTP/1.1 response, always `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A JSON-lines (JSONL) response, as `/v1/provenance/<id>` serves.
    #[must_use]
    pub fn jsonl(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/x-ndjson",
            body: body.into_bytes(),
        }
    }

    /// A `{"error": …}` JSON response for the given status and message.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!(
                "{{\"error\":{}}}",
                nanocost_trace::value::json_string(message)
            ),
        )
    }

    /// The standard reason phrase for this status code.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            410 => "Gone",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serializes status line, headers, and body to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        let mut cursor = std::io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/cost HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/cost");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /v1/metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn rejects_garbage_request_lines() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /\r\n\r\n",
            b"G@T / HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn enforces_body_bound_before_reading_it() {
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(head.as_bytes()), Err(ParseError::BodyTooLarge));
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ParseError::UnexpectedEof)
        );
    }

    #[test]
    fn non_canonical_content_lengths_are_rejected() {
        // `+4` and `042` parse under usize::from_str but are not RFC
        // 9110 1*DIGIT forms a well-formed client sends.
        for bad in ["+4", "042", "4a", "0x4", "-1", ""] {
            let req = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nabcd");
            assert_eq!(
                parse(req.as_bytes()),
                Err(ParseError::BadContentLength),
                "{bad:?}"
            );
        }
        // A bare zero stays canonical.
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n").is_ok());
    }

    #[test]
    fn transfer_encoding_is_rejected_not_ignored() {
        let err = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n")
            .expect_err("chunked framing must be rejected");
        assert_eq!(err, ParseError::UnsupportedTransferEncoding);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd"),
            Err(ParseError::BadContentLength)
        );
    }
}
