//! Shared server state: the scenario cache, per-endpoint latency
//! histograms, and the replayable per-request provenance store.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use nanocost_core::ScenarioCache;
use nanocost_sentinel::LogHistogram;
use nanocost_trace::export::{Exporter, JsonlExporter};
use nanocost_trace::value::json_string;
use nanocost_trace::Record;

/// How many request provenance captures the ring buffer retains.
pub const PROVENANCE_RING: usize = 256;

/// Everything the worker threads share.
pub struct ServerState {
    cache: ScenarioCache,
    next_id: AtomicU64,
    endpoints: Mutex<BTreeMap<&'static str, LogHistogram>>,
    provenance: Mutex<VecDeque<(String, String)>>,
    started: Instant,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("cache", &self.cache)
            .field("requests", &self.next_id.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState::new()
    }
}

impl ServerState {
    /// Fresh state over the paper-Figure-4 scenario cache.
    #[must_use]
    pub fn new() -> Self {
        ServerState {
            cache: ScenarioCache::paper_figure4(),
            next_id: AtomicU64::new(0),
            endpoints: Mutex::new(BTreeMap::new()),
            provenance: Mutex::new(VecDeque::with_capacity(PROVENANCE_RING)),
            started: Instant::now(),
        }
    }

    /// The scenario cache all model endpoints evaluate through.
    #[must_use]
    pub fn cache(&self) -> &ScenarioCache {
        &self.cache
    }

    /// Allocates the next request id (`r1`, `r2`, …).
    #[must_use]
    pub fn next_request_id(&self) -> String {
        format!("r{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Records one request latency for `endpoint`, in microseconds.
    pub fn observe(&self, endpoint: &'static str, latency_us: f64) {
        let mut endpoints = lock(&self.endpoints);
        endpoints
            .entry(endpoint)
            .or_insert_with(LogHistogram::new)
            .record(latency_us);
    }

    /// Stores a request's captured trace records, rendered as JSONL,
    /// under its request id; evicts the oldest capture past
    /// [`PROVENANCE_RING`].
    pub fn store_provenance(&self, req_id: &str, records: &[Record]) {
        let mut exporter = JsonlExporter;
        let mut text = String::new();
        for r in records {
            // render() already terminates each line with '\n'.
            text.push_str(&exporter.render(r));
        }
        let mut ring = lock(&self.provenance);
        if ring.len() >= PROVENANCE_RING {
            ring.pop_front();
        }
        ring.push_back((req_id.to_string(), text));
    }

    /// The stored JSONL capture for `req_id`, if still in the ring.
    #[must_use]
    pub fn provenance(&self, req_id: &str) -> Option<String> {
        lock(&self.provenance)
            .iter()
            .rev()
            .find(|(id, _)| id == req_id)
            .map(|(_, text)| text.clone())
    }

    /// The most recently stored request id, if any (used by `loadgen`
    /// to pick a replayable capture).
    #[must_use]
    pub fn last_request_id(&self) -> Option<String> {
        lock(&self.provenance).back().map(|(id, _)| id.clone())
    }

    /// Renders the `/v1/metrics` document: uptime, per-endpoint latency
    /// quantiles (p50/p90/p99/p999 in microseconds), and cache traffic.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let uptime = self.started.elapsed().as_secs_f64();
        let requests = self.next_id.load(Ordering::Relaxed);
        let mut out = String::from("{");
        out.push_str(&format!("\"uptime_s\":{uptime:e},\"requests\":{requests},"));
        out.push_str("\"endpoints\":{");
        {
            let endpoints = lock(&self.endpoints);
            let mut first = true;
            for (name, hist) in endpoints.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{}:{{\"count\":{},\"min_us\":{:e},\"max_us\":{:e},\"mean_us\":{:e},\"p50_us\":{:e},\"p90_us\":{:e},\"p99_us\":{:e},\"p999_us\":{:e}}}",
                    json_string(name),
                    hist.count(),
                    hist.min().unwrap_or(0.0),
                    hist.max().unwrap_or(0.0),
                    hist.mean().unwrap_or(0.0),
                    hist.p50().unwrap_or(0.0),
                    hist.p90().unwrap_or(0.0),
                    hist.p99().unwrap_or(0.0),
                    hist.p999().unwrap_or(0.0),
                ));
            }
        }
        out.push_str("},\"cache\":");
        let stats = self.cache.stats();
        out.push_str(&format!(
            "{{\"hits\":{},\"misses\":{},\"entries\":{},\"capacity\":{},\"hit_rate\":{:e}}}",
            stats.hits,
            stats.misses,
            stats.entries,
            stats.capacity,
            stats.hit_rate()
        ));
        out.push('}');
        out
    }
}

/// Locks a mutex, recovering the data from a poisoned lock (a panicking
/// worker must not take the whole server down).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_sequential() {
        let state = ServerState::new();
        assert_eq!(state.next_request_id(), "r1");
        assert_eq!(state.next_request_id(), "r2");
    }

    #[test]
    fn provenance_ring_evicts_oldest() {
        let state = ServerState::new();
        for i in 0..(PROVENANCE_RING + 5) {
            state.store_provenance(&format!("r{i}"), &[]);
        }
        assert!(state.provenance("r0").is_none());
        assert!(state.provenance(&format!("r{}", PROVENANCE_RING + 4)).is_some());
        assert_eq!(
            state.last_request_id().as_deref(),
            Some(format!("r{}", PROVENANCE_RING + 4).as_str())
        );
    }

    #[test]
    fn metrics_json_is_valid_json() {
        let state = ServerState::new();
        state.observe("cost", 120.0);
        state.observe("cost", 240.0);
        let doc = state.metrics_json();
        nanocost_trace::json::validate(&doc).expect("metrics must be valid JSON");
        assert!(doc.contains("\"p50_us\""));
        assert!(doc.contains("\"p99_us\""));
    }
}
