//! Shared server state: the scenario cache, per-endpoint latency
//! histograms with exemplars, the replayable per-request trace ring,
//! SLO burn-rate monitors, and the structured access log.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use nanocost_core::ScenarioCache;
use nanocost_sentinel::federate::{RawCache, RawSlo, RawSnapshot, RawWorker};
use nanocost_sentinel::profile::{ProfileReport, StackSample};
use nanocost_sentinel::slo::{BurnWindows, Objective};
use nanocost_sentinel::{LogHistogram, SloMonitor};
use nanocost_trace::export::{Exporter, JsonlExporter};
use nanocost_trace::stack_registry::{ProfileHz, StackSnapshot, DEFAULT_PROFILE_HZ};
use nanocost_trace::value::json_string;
use nanocost_trace::{counter, gauge, Record};

/// Default per-request trace-capture ring capacity (see
/// [`ServerStateConfig::trace_ring`]).
pub const TRACE_RING_DEFAULT: usize = 256;

/// Upper bound on the configurable trace ring: each slot holds a full
/// rendered JSONL capture, so an unbounded ring is an OOM waiting on a
/// typo in the environment.
pub const TRACE_RING_MAX: usize = 65_536;

/// Default latency-SLO threshold: a request slower than this many
/// microseconds is a "bad" event for the `latency` objective.
pub const SLO_LATENCY_DEFAULT_US: f64 = 250_000.0;

/// Default stack-sample ring capacity (see
/// [`ServerStateConfig::profile_ring`]): at the default 99 Hz this
/// holds roughly ten minutes of a busy 4-worker pool.
pub const PROFILE_RING_DEFAULT: usize = 65_536;

/// Upper bound on the configurable profile ring — each slot holds one
/// stack snapshot, so this caps profiler memory at a few hundred MB
/// even under a hostile environment value.
pub const PROFILE_RING_MAX: usize = 1_048_576;

/// Upper bound accepted for `/v1/profile?window_s=N` (one hour).
pub const PROFILE_WINDOW_MAX_S: u64 = 3_600;

/// Everything [`ServerState`] is configured with. Build one by hand in
/// tests or via [`ServerStateConfig::from_env`] in the `serve` bin.
#[derive(Debug, Clone)]
pub struct ServerStateConfig {
    /// Trace-capture ring capacity (`NANOCOST_SERVE_TRACE_RING`,
    /// default 256, clamped to `1..=65536`).
    pub trace_ring: usize,
    /// Structured JSONL access-log path (`NANOCOST_SERVE_ACCESS_LOG`);
    /// `None` disables access logging.
    pub access_log: Option<String>,
    /// Latency threshold in microseconds above which a request counts
    /// against the latency objective (`NANOCOST_SERVE_SLO_P99_US`).
    pub latency_threshold_us: f64,
    /// Target good fraction for the latency objective
    /// (`NANOCOST_SERVE_SLO_TARGET`, default 0.99).
    pub latency_target: f64,
    /// Target non-shed fraction for the shed-rate objective
    /// (`NANOCOST_SERVE_SLO_SHED_TARGET`, default 0.95).
    pub shed_target: f64,
    /// Burn-rate windows and firing threshold shared by both objectives
    /// (`NANOCOST_SERVE_SLO_FAST_S` / `_SLOW_S` / `_MAX_BURN`).
    pub windows: BurnWindows,
    /// Stack-profiler sample rate in Hz (`NANOCOST_PROFILE_HZ`); 0
    /// disables the sampler. Unlike the trace bins — which leave
    /// profiling off unless asked — the server profiles continuously by
    /// default, at [`DEFAULT_PROFILE_HZ`].
    pub profile_hz: u32,
    /// Stack-sample ring capacity (`NANOCOST_SERVE_PROFILE_RING`,
    /// default 65536, clamped to `1..=1048576`).
    pub profile_ring: usize,
    /// This replica's fleet label (`NANOCOST_REPLICA`) — stamped onto
    /// exemplars and the `/v1/metrics/raw` envelope so federated merges
    /// can tell replicas apart. Empty means unlabeled; federators
    /// substitute the scrape target.
    pub replica: String,
}

impl Default for ServerStateConfig {
    fn default() -> Self {
        ServerStateConfig {
            trace_ring: TRACE_RING_DEFAULT,
            access_log: None,
            latency_threshold_us: SLO_LATENCY_DEFAULT_US,
            latency_target: 0.99,
            shed_target: 0.95,
            windows: BurnWindows::default(),
            profile_hz: DEFAULT_PROFILE_HZ,
            profile_ring: PROFILE_RING_DEFAULT,
            replica: String::new(),
        }
    }
}

impl ServerStateConfig {
    /// Reads the `NANOCOST_SERVE_*` environment variables, falling back
    /// to the defaults for anything unset.
    ///
    /// # Errors
    ///
    /// Returns a description of the first variable that is set but does
    /// not parse (a silently ignored typo would serve with the wrong
    /// SLO, which is worse than refusing to start).
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = ServerStateConfig::default();
        if let Some(ring) = env_parsed::<usize>("NANOCOST_SERVE_TRACE_RING")? {
            cfg.trace_ring = ring.clamp(1, TRACE_RING_MAX);
        }
        if let Ok(path) = std::env::var("NANOCOST_SERVE_ACCESS_LOG") {
            if !path.trim().is_empty() {
                cfg.access_log = Some(path);
            }
        }
        if let Some(us) = env_parsed::<f64>("NANOCOST_SERVE_SLO_P99_US")? {
            if us.is_finite() && us > 0.0 {
                cfg.latency_threshold_us = us;
            } else {
                return Err(format!(
                    "NANOCOST_SERVE_SLO_P99_US must be a positive finite number, got {us}"
                ));
            }
        }
        if let Some(t) = env_parsed::<f64>("NANOCOST_SERVE_SLO_TARGET")? {
            cfg.latency_target = t;
        }
        if let Some(t) = env_parsed::<f64>("NANOCOST_SERVE_SLO_SHED_TARGET")? {
            cfg.shed_target = t;
        }
        if let Some(s) = env_parsed::<u64>("NANOCOST_SERVE_SLO_FAST_S")? {
            cfg.windows.fast_ns = s.saturating_mul(1_000_000_000);
        }
        if let Some(s) = env_parsed::<u64>("NANOCOST_SERVE_SLO_SLOW_S")? {
            cfg.windows.slow_ns = s.saturating_mul(1_000_000_000);
        }
        if let Some(b) = env_parsed::<f64>("NANOCOST_SERVE_SLO_MAX_BURN")? {
            cfg.windows.max_burn = b;
        }
        // The shared trace-crate spelling, but with the server's
        // always-on default: unset keeps DEFAULT_PROFILE_HZ, an explicit
        // off-switch disables, and a typo refuses to start.
        match nanocost_trace::stack_registry::profile_hz_from_env()? {
            ProfileHz::Unset => {}
            ProfileHz::Off => cfg.profile_hz = 0,
            ProfileHz::Hz(hz) => cfg.profile_hz = hz,
        }
        if let Some(cap) = env_parsed::<usize>("NANOCOST_SERVE_PROFILE_RING")? {
            cfg.profile_ring = cap.clamp(1, PROFILE_RING_MAX);
        }
        // Shared with the trace crate's init_from_env: one variable
        // names the replica for traces, exemplars, and the raw envelope.
        if let Ok(label) = std::env::var("NANOCOST_REPLICA") {
            cfg.replica = label.trim().to_string();
        }
        Ok(cfg)
    }
}

/// Reads and parses one environment variable; unset or empty is `None`.
fn env_parsed<T: std::str::FromStr>(name: &str) -> Result<Option<T>, String> {
    match std::env::var(name) {
        Ok(raw) if !raw.trim().is_empty() => raw
            .trim()
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{name} does not parse: `{raw}`")),
        _ => Ok(None),
    }
}

/// One retained stack sample (frames stay `&'static str` in-process;
/// they are only materialized into owned strings at report time).
#[derive(Debug, Clone)]
struct RingSample {
    t_ns: u64,
    thread: u64,
    req_id: Option<String>,
    frames: Vec<&'static str>,
    depth: u64,
}

/// Bounded in-memory ring of profiler stack samples, fed by a
/// [`nanocost_trace::stack_registry`] sink and drained by
/// `GET /v1/profile?window_s=N`. `Arc`-held so the sink (a
/// process-lifetime callback) can hold a `Weak` and outlive the server.
#[derive(Debug)]
pub struct ProfileRing {
    cap: usize,
    samples: Mutex<VecDeque<RingSample>>,
    dropped: AtomicU64,
}

impl ProfileRing {
    /// An empty ring holding at most `cap` samples.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        ProfileRing {
            cap: cap.max(1),
            samples: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one sampler batch, evicting the oldest samples past
    /// capacity (counted in `dropped`).
    pub fn push_batch(&self, snaps: &[StackSnapshot], t_ns: u64) {
        let mut dropped = 0u64;
        {
            let mut ring = lock(&self.samples);
            for s in snaps {
                if ring.len() >= self.cap {
                    ring.pop_front();
                    dropped += 1;
                }
                ring.push_back(RingSample {
                    t_ns,
                    thread: s.thread,
                    req_id: s.req_id.clone(),
                    frames: s.frames.clone(),
                    depth: s.depth,
                });
            }
        }
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Samples whose `t_ns` falls in the half-open `[since, until)`,
    /// materialized for the sentinel aggregator.
    #[must_use]
    pub fn window(&self, since: u64, until: u64) -> Vec<StackSample> {
        let ring = lock(&self.samples);
        ring.iter()
            .filter(|s| s.t_ns >= since && s.t_ns < until)
            .map(|s| StackSample {
                t_ns: s.t_ns,
                thread: s.thread,
                req_id: s.req_id.clone(),
                frames: s.frames.iter().map(|f| (*f).to_string()).collect(),
                depth: s.depth,
            })
            .collect()
    }

    /// Samples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.samples).len()
    }

    /// Whether the ring holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Cumulative busy/idle wall-clock and served-connection counts for one
/// worker thread; the worker owns an `Arc` and adds as it goes, the
/// metrics endpoint reads whatever is current.
#[derive(Debug, Default)]
pub struct WorkerStat {
    /// Nanoseconds spent handling connections.
    pub busy_ns: AtomicU64,
    /// Nanoseconds spent waiting on the connection queue.
    pub idle_ns: AtomicU64,
    /// Connections handled to completion.
    pub served: AtomicU64,
}

/// Everything the worker threads share.
pub struct ServerState {
    cache: ScenarioCache,
    next_id: AtomicU64,
    endpoints: Mutex<BTreeMap<&'static str, LogHistogram>>,
    /// The per-request trace ring: full JSONL captures keyed by req_id.
    traces: Mutex<VecDeque<(String, String)>>,
    trace_ring: usize,
    ring_evicted: AtomicU64,
    /// Model requests completed (any status) — the latency objective's
    /// event stream and the shed objective's "good" side.
    completed: AtomicU64,
    /// Completed requests slower than the latency threshold.
    latency_bad: AtomicU64,
    /// Connections shed with a 503 by the accept loop.
    shed: AtomicU64,
    latency_threshold_us: f64,
    /// `[latency, shed_rate]` monitors; empty when the configured
    /// windows were rejected (then `/v1/health` is always 200).
    slo: Mutex<Vec<SloMonitor>>,
    /// The structured access log sink, when configured.
    access: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    /// Configured stack-profiler rate; 0 = sampler off.
    profile_hz: u32,
    /// The stack-sample ring `/v1/profile` reports over.
    profile: Arc<ProfileRing>,
    /// Per-worker telemetry, installed by the server's run loop.
    workers: Mutex<Vec<Arc<WorkerStat>>>,
    /// Connections currently queued for a worker.
    queue_depth: AtomicU64,
    /// Connections accepted but not yet fully handled (queued + in
    /// flight).
    accept_backlog: AtomicU64,
    /// Highest numeric request id evicted from the trace ring; lets
    /// `/v1/trace/<id>` distinguish "evicted" (410) from "never
    /// existed" (404).
    evicted_watermark: AtomicU64,
    /// Fleet label stamped onto exemplars and the raw-metrics envelope.
    replica: String,
    started: Instant,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("cache", &self.cache)
            .field("requests", &self.next_id.load(Ordering::Relaxed))
            .field("trace_ring", &self.trace_ring)
            .finish_non_exhaustive()
    }
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState::new()
    }
}

impl ServerState {
    /// Fresh state over the paper-Figure-4 scenario cache with the
    /// default configuration (no access log, default ring and SLOs).
    #[must_use]
    pub fn new() -> Self {
        // The default config has no access log to open and statically
        // valid SLO windows, so this cannot actually fail.
        ServerState::with_config(ServerStateConfig::default())
            .unwrap_or_else(|_| ServerState::bare(&ServerStateConfig::default()))
    }

    /// State without an access log or SLO monitors — the infallible
    /// fallback behind [`ServerState::new`].
    fn bare(cfg: &ServerStateConfig) -> Self {
        ServerState {
            cache: ScenarioCache::paper_figure4(),
            next_id: AtomicU64::new(0),
            endpoints: Mutex::new(BTreeMap::new()),
            traces: Mutex::new(VecDeque::with_capacity(cfg.trace_ring.min(TRACE_RING_DEFAULT))),
            trace_ring: cfg.trace_ring.clamp(1, TRACE_RING_MAX),
            ring_evicted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            latency_bad: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency_threshold_us: cfg.latency_threshold_us,
            slo: Mutex::new(Vec::new()),
            access: None,
            profile_hz: cfg.profile_hz,
            profile: Arc::new(ProfileRing::new(cfg.profile_ring.clamp(1, PROFILE_RING_MAX))),
            workers: Mutex::new(Vec::new()),
            queue_depth: AtomicU64::new(0),
            accept_backlog: AtomicU64::new(0),
            evicted_watermark: AtomicU64::new(0),
            replica: cfg.replica.clone(),
            started: Instant::now(),
        }
    }

    /// Builds state from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns a description when the access log cannot be opened or
    /// the SLO windows are rejected by the sentinel validator; refusing
    /// to start beats serving with silently absent observability.
    pub fn with_config(cfg: ServerStateConfig) -> Result<Self, String> {
        let mut state = ServerState::bare(&cfg);
        let latency = SloMonitor::new(
            Objective { name: "latency".to_string(), target: cfg.latency_target },
            cfg.windows,
        )
        .map_err(|e| format!("latency objective: {e}"))?;
        let shed = SloMonitor::new(
            Objective { name: "shed_rate".to_string(), target: cfg.shed_target },
            cfg.windows,
        )
        .map_err(|e| format!("shed_rate objective: {e}"))?;
        state.slo = Mutex::new(vec![latency, shed]);
        if let Some(path) = &cfg.access_log {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot open access log {path}: {e}"))?;
            state.access = Some(Mutex::new(std::io::BufWriter::new(file)));
        }
        Ok(state)
    }

    /// The scenario cache all model endpoints evaluate through.
    #[must_use]
    pub fn cache(&self) -> &ScenarioCache {
        &self.cache
    }

    /// The configured trace-ring capacity.
    #[must_use]
    pub fn trace_ring_capacity(&self) -> usize {
        self.trace_ring
    }

    /// The configured stack-profiler rate (0 = off).
    #[must_use]
    pub fn profile_hz(&self) -> u32 {
        self.profile_hz
    }

    /// The stack-sample ring the sampler sink feeds.
    #[must_use]
    pub fn profile_ring(&self) -> &Arc<ProfileRing> {
        &self.profile
    }

    /// Renders the `/v1/profile` document: the deterministic
    /// [`ProfileReport`] over the trailing `window_s` seconds of ring
    /// samples.
    #[must_use]
    pub fn profile_report_json(&self, window_s: u64) -> String {
        let now = nanocost_trace::epoch_nanos();
        let since = now.saturating_sub(window_s.saturating_mul(1_000_000_000));
        let samples = self.profile.window(since, now.saturating_add(1));
        ProfileReport::from_samples(&samples, None).to_json()
    }

    /// Installs `n` fresh per-worker telemetry slots, returning one
    /// handle per worker; previous telemetry (a restarted run loop) is
    /// replaced.
    #[must_use]
    pub fn install_workers(&self, n: usize) -> Vec<Arc<WorkerStat>> {
        let stats: Vec<Arc<WorkerStat>> = (0..n).map(|_| Arc::new(WorkerStat::default())).collect();
        *lock(&self.workers) = stats.clone();
        stats
    }

    /// One connection entered the worker queue.
    pub fn note_queue_push(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        gauge!("serve.queue.depth", depth as f64);
    }

    /// One connection left the worker queue for a worker.
    pub fn note_queue_pop(&self) {
        let prev = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)))
            .unwrap_or(0);
        gauge!("serve.queue.depth", prev.saturating_sub(1) as f64);
    }

    /// One connection was accepted (queued, in flight, or about to be
    /// shed).
    pub fn note_conn_open(&self) {
        let backlog = self.accept_backlog.fetch_add(1, Ordering::Relaxed) + 1;
        gauge!("serve.accept.backlog", backlog as f64);
    }

    /// One accepted connection finished (handled or shed).
    pub fn note_conn_close(&self) {
        let prev = self
            .accept_backlog
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)))
            .unwrap_or(0);
        gauge!("serve.accept.backlog", prev.saturating_sub(1) as f64);
    }

    /// Whether `req_id` was plausibly evicted from the trace ring: ids
    /// are issued and stored in near-monotonic order, so anything at or
    /// below the highest evicted id is gone rather than unknown.
    #[must_use]
    pub fn likely_evicted(&self, req_id: &str) -> bool {
        let Some(n) = req_id.strip_prefix('r').and_then(|n| n.parse::<u64>().ok()) else {
            return false;
        };
        n > 0
            && n <= self.evicted_watermark.load(Ordering::Relaxed)
            && n <= self.next_id.load(Ordering::Relaxed)
    }

    /// Allocates the next request id (`r1`, `r2`, …).
    #[must_use]
    pub fn next_request_id(&self) -> String {
        format!("r{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Records one completed request for `endpoint`: latency into the
    /// endpoint histogram (with an exemplar when the request produced a
    /// stored trace), and a good/bad event into both SLO monitors.
    /// `t_ns` is the trace-epoch observation time exemplars and SLO
    /// snapshots are stamped with.
    pub fn observe(
        &self,
        endpoint: &'static str,
        latency_us: f64,
        exemplar_req: Option<&str>,
        t_ns: u64,
    ) {
        {
            let mut endpoints = lock(&self.endpoints);
            let hist = endpoints.entry(endpoint).or_insert_with(LogHistogram::new);
            match exemplar_req {
                Some(req_id) => {
                    hist.record_exemplar_tagged(latency_us, req_id, t_ns, &self.replica);
                }
                None => hist.record(latency_us),
            }
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        if latency_us > self.latency_threshold_us {
            self.latency_bad.fetch_add(1, Ordering::Relaxed);
        }
        self.feed_slo(t_ns);
    }

    /// Counts one connection shed with a 503 by the accept loop.
    pub fn note_shed(&self, t_ns: u64) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        counter!("serve.shed", 1);
        self.feed_slo(t_ns);
    }

    /// Pushes the current cumulative totals into both monitors.
    fn feed_slo(&self, t_ns: u64) {
        let completed = self.completed.load(Ordering::Relaxed);
        let latency_bad = self.latency_bad.load(Ordering::Relaxed);
        let shed = self.shed.load(Ordering::Relaxed);
        let mut monitors = lock(&self.slo);
        if let Some(latency) = monitors.first_mut() {
            latency.observe(t_ns, completed.saturating_sub(latency_bad), latency_bad);
        }
        if let Some(shed_rate) = monitors.get_mut(1) {
            shed_rate.observe(t_ns, completed, shed);
        }
    }

    /// Evaluates every SLO monitor as of `now_ns` and renders the
    /// `/v1/health` document. Returns `(200, …)` when no objective is
    /// firing and `(503, …)` when at least one is.
    #[must_use]
    pub fn health_json(&self, now_ns: u64) -> (u16, String) {
        let reports: Vec<_> = {
            let monitors = lock(&self.slo);
            monitors.iter().map(|m| m.report(now_ns)).collect()
        };
        let firing = reports.iter().any(|r| r.firing);
        let mut out = format!(
            "{{\"status\":{},\"t_ns\":{now_ns},\"objectives\":[",
            if firing { "\"failing\"" } else { "\"ok\"" }
        );
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        (if firing { 503 } else { 200 }, out)
    }

    /// Stores a request's captured trace records, rendered as JSONL,
    /// under its request id; evicts the oldest capture past the
    /// configured ring capacity (counted in `serve.trace_ring.evicted`).
    pub fn store_trace(&self, req_id: &str, records: &[Record]) {
        let mut exporter = JsonlExporter;
        let mut text = String::new();
        for r in records {
            // render() already terminates each line with '\n'.
            text.push_str(&exporter.render(r));
        }
        let evicted = {
            let mut ring = lock(&self.traces);
            let evicted = if ring.len() >= self.trace_ring {
                ring.pop_front().map(|(id, _)| id)
            } else {
                None
            };
            ring.push_back((req_id.to_string(), text));
            evicted
        };
        if let Some(old_id) = evicted {
            if let Some(n) = old_id.strip_prefix('r').and_then(|n| n.parse::<u64>().ok()) {
                self.evicted_watermark.fetch_max(n, Ordering::Relaxed);
            }
            self.ring_evicted.fetch_add(1, Ordering::Relaxed);
            counter!("serve.trace_ring.evicted", 1);
        }
    }

    /// The stored JSONL capture for `req_id`, if still in the ring.
    #[must_use]
    pub fn trace(&self, req_id: &str) -> Option<String> {
        lock(&self.traces)
            .iter()
            .rev()
            .find(|(id, _)| id == req_id)
            .map(|(_, text)| text.clone())
    }

    /// The most recently stored request id, if any (used by `loadgen`
    /// to pick a replayable capture).
    #[must_use]
    pub fn last_request_id(&self) -> Option<String> {
        lock(&self.traces).back().map(|(id, _)| id.clone())
    }

    /// Appends one structured access-log record (a no-op when no log
    /// was configured). Each line is flushed so `tail -f` and the soak
    /// gate see records as they happen.
    pub fn log_access(
        &self,
        req_id: &str,
        endpoint: &str,
        status: u16,
        latency_ns: u64,
        cache_hits: u64,
        cache_misses: u64,
    ) {
        let Some(sink) = &self.access else {
            return;
        };
        let line =
            render_access_record(req_id, endpoint, status, latency_ns, cache_hits, cache_misses);
        let mut w = lock(sink);
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }

    /// Renders the `/v1/metrics` document (schema 2): uptime, the
    /// scrape instant `t_ns`, cumulative counters, per-endpoint latency
    /// quantiles (p50/p90/p99/p999 in microseconds) with the p99
    /// exemplar, and cache traffic.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let uptime = self.started.elapsed().as_secs_f64();
        let requests = self.next_id.load(Ordering::Relaxed);
        let t_ns = nanocost_trace::epoch_nanos();
        let mut out = String::from("{\"schema\":2,");
        out.push_str(&format!(
            "\"uptime_s\":{uptime:e},\"t_ns\":{t_ns},\"requests\":{requests},"
        ));
        out.push_str(&format!(
            "\"counters\":{{\"requests_total\":{},\"completed_total\":{},\"shed_total\":{},\"latency_bad_total\":{},\"trace_ring_evicted\":{}}},",
            requests,
            self.completed.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.latency_bad.load(Ordering::Relaxed),
            self.ring_evicted.load(Ordering::Relaxed),
        ));
        // Instantaneous gauges: present regardless of whether profiling
        // is on — queue pressure is load telemetry, not profiler output.
        out.push_str(&format!(
            "\"gauges\":{{\"queue.depth\":{},\"accept.backlog\":{}}},",
            self.queue_depth.load(Ordering::Relaxed),
            self.accept_backlog.load(Ordering::Relaxed),
        ));
        out.push_str("\"workers\":[");
        {
            let workers = lock(&self.workers);
            for (i, w) in workers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"busy_ns\":{},\"idle_ns\":{},\"served\":{}}}",
                    w.busy_ns.load(Ordering::Relaxed),
                    w.idle_ns.load(Ordering::Relaxed),
                    w.served.load(Ordering::Relaxed),
                ));
            }
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"profile\":{{\"hz\":{},\"ring_capacity\":{},\"samples\":{},\"dropped\":{}}},",
            self.profile_hz,
            self.profile.capacity(),
            self.profile.len(),
            self.profile.dropped(),
        ));
        out.push_str("\"endpoints\":{");
        {
            let endpoints = lock(&self.endpoints);
            let mut first = true;
            for (name, hist) in endpoints.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                let exemplar = hist
                    .quantile_exemplar(0.99)
                    .map(|e| {
                        format!(
                            "{{\"req_id\":{},\"value_us\":{:e},\"t_ns\":{}}}",
                            json_string(&e.req_id),
                            e.value,
                            e.t_ns
                        )
                    })
                    .unwrap_or_else(|| "null".to_string());
                out.push_str(&format!(
                    "{}:{{\"count\":{},\"min_us\":{:e},\"max_us\":{:e},\"mean_us\":{:e},\"p50_us\":{:e},\"p90_us\":{:e},\"p99_us\":{:e},\"p999_us\":{:e},\"p99_exemplar\":{}}}",
                    json_string(name),
                    hist.count(),
                    hist.min().unwrap_or(0.0),
                    hist.max().unwrap_or(0.0),
                    hist.mean().unwrap_or(0.0),
                    hist.p50().unwrap_or(0.0),
                    hist.p90().unwrap_or(0.0),
                    hist.p99().unwrap_or(0.0),
                    hist.p999().unwrap_or(0.0),
                    exemplar,
                ));
            }
        }
        out.push_str("},\"cache\":");
        let stats = self.cache.stats();
        out.push_str(&format!(
            "{{\"hits\":{},\"misses\":{},\"entries\":{},\"capacity\":{},\"hit_rate\":{:e}}}",
            stats.hits,
            stats.misses,
            stats.entries,
            stats.capacity,
            stats.hit_rate()
        ));
        out.push('}');
        out
    }

    /// This replica's configured fleet label (empty when unlabeled).
    #[must_use]
    pub fn replica(&self) -> &str {
        &self.replica
    }

    /// Renders the `/v1/metrics/raw` document: the full *mergeable*
    /// state behind [`ServerState::metrics_json`], as the
    /// byte-deterministic schema-1 wire format owned by
    /// [`nanocost_sentinel::federate`]. Where `/v1/metrics` publishes
    /// pre-computed quantiles (which cannot be combined across
    /// replicas), this publishes raw histogram buckets, cumulative and
    /// windowed SLO counters, and worker/cache counters — everything a
    /// federator needs to reconstruct fleet-level truth losslessly.
    #[must_use]
    pub fn metrics_raw_json(&self) -> String {
        let t_ns = nanocost_trace::epoch_nanos();
        let mut counters = BTreeMap::new();
        counters.insert("requests_total".to_string(), self.next_id.load(Ordering::Relaxed));
        counters.insert("completed_total".to_string(), self.completed.load(Ordering::Relaxed));
        counters.insert("shed_total".to_string(), self.shed.load(Ordering::Relaxed));
        counters.insert("latency_bad_total".to_string(), self.latency_bad.load(Ordering::Relaxed));
        counters
            .insert("trace_ring_evicted".to_string(), self.ring_evicted.load(Ordering::Relaxed));
        let slo: Vec<RawSlo> = {
            let monitors = lock(&self.slo);
            monitors.iter().map(|m| RawSlo::from_monitor(m, t_ns)).collect()
        };
        let workers: Vec<RawWorker> = {
            let workers = lock(&self.workers);
            workers
                .iter()
                .map(|w| RawWorker {
                    busy_ns: w.busy_ns.load(Ordering::Relaxed),
                    idle_ns: w.idle_ns.load(Ordering::Relaxed),
                    served: w.served.load(Ordering::Relaxed),
                })
                .collect()
        };
        let endpoints: BTreeMap<String, LogHistogram> = {
            let endpoints = lock(&self.endpoints);
            endpoints.iter().map(|(name, hist)| ((*name).to_string(), hist.clone())).collect()
        };
        let stats = self.cache.stats();
        RawSnapshot {
            replica: self.replica.clone(),
            t_ns,
            counters,
            slo,
            workers,
            cache: RawCache {
                hits: stats.hits,
                misses: stats.misses,
                entries: stats.entries as u64,
                capacity: stats.capacity as u64,
            },
            endpoints,
        }
        .to_json()
    }
}

/// Renders one access-log record with a fixed, documented field order:
/// `req_id`, `endpoint`, `status`, `latency_ns`, `cache_hits`,
/// `cache_misses`. Pure so the golden test can pin the bytes.
#[must_use]
pub fn render_access_record(
    req_id: &str,
    endpoint: &str,
    status: u16,
    latency_ns: u64,
    cache_hits: u64,
    cache_misses: u64,
) -> String {
    format!(
        "{{\"req_id\":{},\"endpoint\":{},\"status\":{status},\"latency_ns\":{latency_ns},\"cache_hits\":{cache_hits},\"cache_misses\":{cache_misses}}}\n",
        json_string(req_id),
        json_string(endpoint),
    )
}

/// Locks a mutex, recovering the data from a poisoned lock (a panicking
/// worker must not take the whole server down).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_sequential() {
        let state = ServerState::new();
        assert_eq!(state.next_request_id(), "r1");
        assert_eq!(state.next_request_id(), "r2");
    }

    #[test]
    fn trace_ring_evicts_oldest_and_counts_evictions() {
        let state = ServerState::new();
        for i in 0..(TRACE_RING_DEFAULT + 5) {
            state.store_trace(&format!("r{i}"), &[]);
        }
        assert!(state.trace("r0").is_none());
        assert!(state.trace(&format!("r{}", TRACE_RING_DEFAULT + 4)).is_some());
        assert_eq!(
            state.last_request_id().as_deref(),
            Some(format!("r{}", TRACE_RING_DEFAULT + 4).as_str())
        );
        assert!(state.metrics_json().contains("\"trace_ring_evicted\":5"));
    }

    #[test]
    fn trace_ring_capacity_is_configurable() {
        let cfg = ServerStateConfig { trace_ring: 2, ..ServerStateConfig::default() };
        let state = ServerState::with_config(cfg).expect("valid config");
        assert_eq!(state.trace_ring_capacity(), 2);
        for i in 0..3 {
            state.store_trace(&format!("r{i}"), &[]);
        }
        assert!(state.trace("r0").is_none(), "capacity 2 keeps only the newest 2");
        assert!(state.trace("r1").is_some());
        assert!(state.trace("r2").is_some());
    }

    #[test]
    fn metrics_json_is_valid_json_with_exemplars() {
        let state = ServerState::new();
        state.observe("cost", 120.0, Some("r1"), 10);
        state.observe("cost", 240.0, Some("r2"), 20);
        let doc = state.metrics_json();
        nanocost_trace::json::validate(&doc).expect("metrics must be valid JSON");
        assert!(doc.contains("\"schema\":2"));
        assert!(doc.contains("\"p50_us\""));
        assert!(doc.contains("\"p99_us\""));
        assert!(doc.contains("\"p99_exemplar\":{\"req_id\":\"r2\""), "{doc}");
        assert!(doc.contains("\"shed_total\":0"));
    }

    #[test]
    fn raw_metrics_round_trip_through_the_federation_parser() {
        let cfg = ServerStateConfig { replica: "a".to_string(), ..ServerStateConfig::default() };
        let state = ServerState::with_config(cfg).expect("valid config");
        let _ = state.next_request_id();
        let _ = state.next_request_id();
        state.observe("cost", 120.0, Some("r1"), 10);
        state.observe("cost", 240.0, Some("r2"), 20);
        state.observe("batch", 80.0, None, 30);
        let workers = state.install_workers(1);
        workers[0].busy_ns.fetch_add(900, Ordering::Relaxed);
        workers[0].idle_ns.fetch_add(100, Ordering::Relaxed);
        let doc = state.metrics_raw_json();
        nanocost_trace::json::validate(&doc).expect("raw metrics must be valid JSON");
        let snap = RawSnapshot::parse(&doc).expect("federation parser accepts it");
        assert_eq!(snap.replica, "a");
        assert_eq!(snap.counters.get("requests_total"), Some(&2));
        assert_eq!(snap.counters.get("completed_total"), Some(&3));
        let cost = snap.endpoints.get("cost").expect("cost endpoint");
        assert_eq!(cost.count(), 2);
        // The exemplar carries the replica tag for cross-process merges.
        let e = cost.quantile_exemplar(0.99).expect("exemplar");
        assert_eq!(e.replica, "a");
        assert_eq!(e.req_id, "r2");
        // Both monitors ship summable window counters.
        assert_eq!(snap.slo.len(), 2);
        assert_eq!(snap.slo[0].name, "latency");
        assert_eq!(snap.slo[0].good, 3);
        assert_eq!(snap.workers.len(), 1);
        assert_eq!(snap.workers[0].busy_ns, 900);
        // Determinism: the same state renders byte-identical documents
        // modulo the scrape instant.
        let mut again = RawSnapshot::parse(&state.metrics_raw_json()).expect("parses");
        again.t_ns = snap.t_ns;
        assert_eq!(again.to_json(), snap.to_json());
    }

    #[test]
    fn health_flips_to_503_under_sustained_burn() {
        // A hair-trigger SLO: every request is slower than 0.001 us, so
        // the latency objective burns at 100x budget immediately.
        let cfg = ServerStateConfig {
            latency_threshold_us: 0.001,
            ..ServerStateConfig::default()
        };
        let state = ServerState::with_config(cfg).expect("valid config");
        let (status, body) = state.health_json(10);
        assert_eq!(status, 200, "idle server is healthy: {body}");
        let minute = 60 * 1_000_000_000u64;
        for i in 0..200u64 {
            state.observe("cost", 100.0, None, (i + 1) * minute / 4);
        }
        let (status, body) = state.health_json(200 * minute / 4);
        assert_eq!(status, 503, "{body}");
        nanocost_trace::json::validate(&body).expect("health must be valid JSON");
        assert!(body.contains("\"status\":\"failing\""), "{body}");
        assert!(body.contains("\"name\":\"latency\""), "{body}");
        assert!(body.contains("\"name\":\"shed_rate\""), "{body}");
    }

    #[test]
    fn access_record_field_order_is_stable() {
        assert_eq!(
            render_access_record("r7", "cost", 200, 12345, 1, 0),
            "{\"req_id\":\"r7\",\"endpoint\":\"cost\",\"status\":200,\"latency_ns\":12345,\"cache_hits\":1,\"cache_misses\":0}\n"
        );
    }

    #[test]
    fn profile_ring_bounds_retention_and_counts_drops() {
        let ring = ProfileRing::new(3);
        let snap = |thread: u64| nanocost_trace::stack_registry::StackSnapshot {
            thread,
            frames: vec!["serve.request", "serve.endpoint.cost"],
            depth: 2,
            req_id: Some(format!("r{thread}")),
        };
        ring.push_batch(&[snap(1), snap(2)], 1_000);
        ring.push_batch(&[snap(3), snap(4)], 2_000);
        assert_eq!(ring.len(), 3, "capacity 3 keeps the newest 3");
        assert_eq!(ring.dropped(), 1);
        // The oldest sample (thread 1 @ 1000) was evicted.
        let all = ring.window(0, u64::MAX);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].thread, 2);
        // Half-open windowing.
        assert_eq!(ring.window(2_000, 2_001).len(), 2);
        assert_eq!(ring.window(0, 1_000).len(), 0);
        let report = ProfileReport::from_samples(&all, None);
        assert_eq!(report.samples, 3);
        assert_eq!(report.endpoints.get("cost"), Some(&3));
    }

    #[test]
    fn profile_report_json_is_served_from_the_ring() {
        let state = ServerState::new();
        let now = nanocost_trace::epoch_nanos();
        let snap = nanocost_trace::stack_registry::StackSnapshot {
            thread: 7,
            frames: vec!["serve.request"],
            depth: 1,
            req_id: None,
        };
        state.profile_ring().push_batch(&[snap], now);
        let doc = state.profile_report_json(60);
        nanocost_trace::json::validate(&doc).expect("profile report is valid JSON");
        let report = ProfileReport::from_json(&doc).expect("parses back");
        assert_eq!(report.samples, 1);
        assert_eq!(report.frames[0].name, "serve.request");
    }

    #[test]
    fn gauges_and_worker_telemetry_render_in_metrics() {
        let state = ServerState::new();
        let workers = state.install_workers(2);
        workers[0].busy_ns.fetch_add(750, Ordering::Relaxed);
        workers[0].idle_ns.fetch_add(250, Ordering::Relaxed);
        workers[0].served.fetch_add(3, Ordering::Relaxed);
        state.note_conn_open();
        state.note_queue_push();
        let doc = state.metrics_json();
        nanocost_trace::json::validate(&doc).expect("metrics must be valid JSON");
        assert!(doc.contains("\"gauges\":{\"queue.depth\":1,\"accept.backlog\":1}"), "{doc}");
        assert!(doc.contains("\"workers\":[{\"busy_ns\":750,\"idle_ns\":250,\"served\":3},"), "{doc}");
        assert!(doc.contains("\"profile\":{\"hz\":99,"), "{doc}");
        state.note_queue_pop();
        state.note_conn_close();
        let doc = state.metrics_json();
        assert!(doc.contains("\"gauges\":{\"queue.depth\":0,\"accept.backlog\":0}"), "{doc}");
        // Underflow is clamped, not wrapped.
        state.note_queue_pop();
        state.note_conn_close();
        assert!(state.metrics_json().contains("\"queue.depth\":0"));
    }

    #[test]
    fn eviction_watermark_distinguishes_evicted_from_unknown() {
        let cfg = ServerStateConfig { trace_ring: 2, ..ServerStateConfig::default() };
        let state = ServerState::with_config(cfg).expect("valid config");
        // Issue ids so the watermark check can bound by them.
        for _ in 0..4 {
            let _ = state.next_request_id();
        }
        for i in 1..=4 {
            state.store_trace(&format!("r{i}"), &[]);
        }
        // r1, r2 evicted; r3, r4 live; r9 never issued.
        assert!(state.likely_evicted("r1"));
        assert!(state.likely_evicted("r2"));
        assert!(!state.likely_evicted("r3"), "r3 is still in the ring");
        assert!(!state.likely_evicted("r9"), "r9 was never issued");
        assert!(!state.likely_evicted("bogus"));
    }

    #[test]
    fn config_from_env_rejects_typos() {
        // Uses a process-global env var: keep the key unique per test.
        std::env::set_var("NANOCOST_SERVE_TRACE_RING", "not-a-number");
        let err = ServerStateConfig::from_env().expect_err("typo must refuse to start");
        assert!(err.contains("NANOCOST_SERVE_TRACE_RING"), "{err}");
        std::env::set_var("NANOCOST_SERVE_TRACE_RING", "512");
        let cfg = ServerStateConfig::from_env().expect("valid");
        assert_eq!(cfg.trace_ring, 512);
        std::env::remove_var("NANOCOST_SERVE_TRACE_RING");
    }
}
