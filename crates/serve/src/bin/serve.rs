//! nanocost-serve — serve the cost models over HTTP.
//!
//! Run with: `cargo run -p nanocost-serve --bin serve -- --port 8077`
//!
//! Options:
//!   --addr HOST:PORT   bind address (default 127.0.0.1:8077)
//!   --port PORT        shorthand for 127.0.0.1:PORT (0 = ephemeral)
//!   --workers N        worker thread count (default 4)
//!
//! Observability is configured through the environment (a typo'd value
//! refuses to start rather than serving with the wrong SLO):
//!   NANOCOST_SERVE_TRACE_RING       trace-capture ring capacity (256)
//!   NANOCOST_SERVE_ACCESS_LOG       JSONL access-log path (off)
//!   NANOCOST_SERVE_SLO_P99_US       latency objective threshold (250000)
//!   NANOCOST_SERVE_SLO_TARGET      latency good fraction (0.99)
//!   NANOCOST_SERVE_SLO_SHED_TARGET non-shed fraction (0.95)
//!   NANOCOST_SERVE_SLO_FAST_S      fast burn window seconds (60)
//!   NANOCOST_SERVE_SLO_SLOW_S      slow burn window seconds (1800)
//!   NANOCOST_SERVE_SLO_MAX_BURN    firing threshold (2.0)
//!   NANOCOST_PROFILE_HZ            span-stack sampling rate for the
//!                                  continuous profiler (default 99;
//!                                  0/off disables, on = default rate)
//!   NANOCOST_SERVE_PROFILE_RING    profile sample-ring capacity (65536)
//!   NANOCOST_REPLICA               this replica's fleet label (unset =
//!                                  unlabeled); stamped onto trace
//!                                  records, p99 exemplars, and the
//!                                  /v1/metrics/raw envelope so
//!                                  fleet_report can merge replicas
//!
//! The process exits cleanly (status 0) on SIGTERM or SIGINT; pair it
//! with `loadgen` for a driven run, `trace_tail --attach` for a live
//! view, `GET /v1/metrics` for quantiles with exemplars,
//! `GET /v1/health` for the SLO burn verdict,
//! `GET /v1/profile?window_s=N` (or `trace_profile --attach`) for the
//! continuous sampling profiler's hotspot report, and
//! `GET /v1/metrics/raw` for the mergeable state `fleet_report` and a
//! multi-`--attach` `trace_tail` federate across replicas.

use std::sync::atomic::{AtomicBool, Ordering};

use nanocost_serve::{Server, ServerConfig, ServerState, ServerStateConfig};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = nanocost_trace::init_from_env();
    let mut config = ServerConfig {
        addr: "127.0.0.1:8077".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--port" => {
                let port: u16 = args.next().ok_or("--port needs a number")?.parse()?;
                config.addr = format!("127.0.0.1:{port}");
            }
            "--workers" => config.workers = args.next().ok_or("--workers needs a number")?.parse()?,
            "--help" | "-h" => {
                println!("usage: serve [--addr HOST:PORT | --port PORT] [--workers N]");
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    let state_cfg = ServerStateConfig::from_env()?;
    let state = ServerState::with_config(state_cfg)?;
    let server = Server::bind_with_state(config, state)?;
    // The "listening on" line is the readiness handshake scripts wait
    // for; flush so a pipe reader sees it immediately.
    println!("nanocost-serve listening on {}", server.local_addr()?);
    use std::io::Write as _;
    std::io::stdout().flush()?;
    server.run(&SHUTDOWN)?;
    let stats = server.state().cache().stats();
    println!(
        "nanocost-serve shut down cleanly; cache {} hits / {} misses",
        stats.hits, stats.misses
    );
    Ok(())
}
