//! loadgen — drive a running nanocost-serve with a concurrent request
//! mix and capture client-side latencies.
//!
//! Run with:
//!   `cargo run -p nanocost-serve --bin loadgen -- --addr 127.0.0.1:8077 \
//!      --requests 200 --mix cost,optimum,batch`
//!
//! Options:
//!   --addr HOST:PORT        server address (required unless --replica)
//!   --replica URL           fleet replica to drive (repeatable; replaces
//!                           --addr). Requests route by a consistent hash
//!                           of their quantized scenario key, so one
//!                           design point always lands on the same
//!                           replica — per-replica cache locality under
//!                           fan-out, and a stable assignment when a
//!                           replica is added or removed
//!   --requests N            total requests (default 200)
//!   --mix a,b,c             endpoints to cycle through: cost, yield,
//!                           optimum, batch (default cost,optimum,batch)
//!   --concurrency C         client threads (default 4)
//!   --bench-out PATH        write a NANOCOST_BENCH_JSON format-2 capture
//!                           (one record per endpoint) for bench_diff
//!   --metrics-out PATH      fetch /v1/metrics afterwards and save it
//!   --provenance-out PATH   fetch one /v1/provenance/<req-id> and save it
//!   --require-batch-hits    fail unless the batch endpoint reported
//!                           cache hits (the overlapping-grid check)
//!
//! Soak criteria (the SLO-aware pass/fail checks the CI soak gate uses):
//!   --allow-shed            a 503 counts as shed load, not a failure
//!   --max-shed-rate F       fail if shed/total exceeds F (requires --allow-shed)
//!   --slo-p99-us N          fail if the client-observed overall p99 exceeds N us
//!   --health-out PATH       fetch /v1/health afterwards, require 200, save it
//!   --exemplar-traces PREFIX  fetch /v1/metrics, follow every endpoint's
//!                           p99 exemplar to /v1/trace/<req-id>, and save
//!                           each capture to PREFIX.<endpoint>.jsonl; fail
//!                           if no endpoint produced an exemplar
//!   --max-evicted-exemplars N  tolerate up to N exemplars answering
//!                           410 (evicted from the trace ring under
//!                           load) instead of failing the drill-down
//!                           check (default 0)
//!   --profile-out PATH      fetch /v1/profile?window_s=W afterwards and
//!                           save the sampling-profiler report JSON
//!   --profile-window-s W    profile window for --profile-out (default 60)
//!
//! Exits non-zero on any non-2xx response (except shed 503s under
//! --allow-shed) or any violated soak criterion, so CI can gate on it.
//!
//! The request grid deliberately overlaps (a handful of distinct design
//! points cycled many times) — the paper's interactive exploration
//! pattern — so the server's scenario cache has hits to report.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use nanocost_sentinel::json::{self, JsonValue};
use nanocost_trace::value::json_string;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

struct Options {
    addr: String,
    /// Fleet targets; when non-empty, requests consistent-hash across
    /// them and `addr` must be unset.
    replicas: Vec<String>,
    requests: usize,
    mix: Vec<String>,
    concurrency: usize,
    bench_out: Option<String>,
    metrics_out: Option<String>,
    provenance_out: Option<String>,
    require_batch_hits: bool,
    allow_shed: bool,
    max_shed_rate: Option<f64>,
    slo_p99_us: Option<f64>,
    health_out: Option<String>,
    exemplar_traces: Option<String>,
    max_evicted_exemplars: usize,
    profile_out: Option<String>,
    profile_window_s: u64,
}

fn parse_options() -> Result<Options, Box<dyn std::error::Error>> {
    let mut opts = Options {
        addr: String::new(),
        replicas: Vec::new(),
        requests: 200,
        mix: vec!["cost".into(), "optimum".into(), "batch".into()],
        concurrency: 4,
        bench_out: None,
        metrics_out: None,
        provenance_out: None,
        require_batch_hits: false,
        allow_shed: false,
        max_shed_rate: None,
        slo_p99_us: None,
        health_out: None,
        exemplar_traces: None,
        max_evicted_exemplars: 0,
        profile_out: None,
        profile_window_s: 60,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--replica" => {
                let url = args.next().ok_or("--replica needs a URL")?;
                opts.replicas
                    .push(nanocost_sentinel::attach::parse_attach_target(&url)?);
            }
            "--requests" => opts.requests = args.next().ok_or("--requests needs N")?.parse()?,
            "--mix" => {
                opts.mix = args
                    .next()
                    .ok_or("--mix needs a,b,c")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--concurrency" => {
                opts.concurrency = args.next().ok_or("--concurrency needs C")?.parse()?;
            }
            "--bench-out" => opts.bench_out = Some(args.next().ok_or("--bench-out needs PATH")?),
            "--metrics-out" => {
                opts.metrics_out = Some(args.next().ok_or("--metrics-out needs PATH")?);
            }
            "--provenance-out" => {
                opts.provenance_out = Some(args.next().ok_or("--provenance-out needs PATH")?);
            }
            "--require-batch-hits" => opts.require_batch_hits = true,
            "--allow-shed" => opts.allow_shed = true,
            "--max-shed-rate" => {
                opts.max_shed_rate = Some(args.next().ok_or("--max-shed-rate needs F")?.parse()?);
            }
            "--slo-p99-us" => {
                opts.slo_p99_us = Some(args.next().ok_or("--slo-p99-us needs N")?.parse()?);
            }
            "--health-out" => opts.health_out = Some(args.next().ok_or("--health-out needs PATH")?),
            "--exemplar-traces" => {
                opts.exemplar_traces =
                    Some(args.next().ok_or("--exemplar-traces needs PREFIX")?);
            }
            "--max-evicted-exemplars" => {
                opts.max_evicted_exemplars =
                    args.next().ok_or("--max-evicted-exemplars needs N")?.parse()?;
            }
            "--profile-out" => {
                opts.profile_out = Some(args.next().ok_or("--profile-out needs PATH")?);
            }
            "--profile-window-s" => {
                opts.profile_window_s =
                    args.next().ok_or("--profile-window-s needs W")?.parse()?;
            }
            "--help" | "-h" => {
                println!("usage: loadgen (--addr HOST:PORT | --replica URL ...) [--requests N] [--mix cost,optimum,batch] [--concurrency C] [--bench-out PATH] [--metrics-out PATH] [--provenance-out PATH] [--require-batch-hits] [--allow-shed] [--max-shed-rate F] [--slo-p99-us N] [--health-out PATH] [--exemplar-traces PREFIX] [--max-evicted-exemplars N] [--profile-out PATH] [--profile-window-s W]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    match (opts.addr.is_empty(), opts.replicas.is_empty()) {
        (true, true) => return Err("--addr or --replica is required".into()),
        (false, false) => {
            return Err("--addr and --replica are mutually exclusive".into());
        }
        _ => {}
    }
    if opts.mix.is_empty() || opts.requests == 0 {
        return Err("--mix and --requests must be non-empty".into());
    }
    if opts.max_shed_rate.is_some() && !opts.allow_shed {
        return Err("--max-shed-rate requires --allow-shed".into());
    }
    for m in &opts.mix {
        if !matches!(m.as_str(), "cost" | "yield" | "optimum" | "batch") {
            return Err(format!("unknown endpoint in --mix: {m}").into());
        }
    }
    Ok(opts)
}

/// The overlapping design-point grid every endpoint cycles through.
const LAMBDAS: [f64; 3] = [0.25, 0.18, 0.13];
const SDS: [f64; 6] = [150.0, 250.0, 350.0, 450.0, 550.0, 650.0];
const SCENARIOS: [(u64, f64); 2] = [(5_000, 0.4), (50_000, 0.9)];

fn body_for(endpoint: &str, i: usize) -> String {
    let lambda = LAMBDAS[i % LAMBDAS.len()];
    let sd = SDS[i % SDS.len()];
    let (volume, fab_yield) = SCENARIOS[i % SCENARIOS.len()];
    match endpoint {
        "cost" => format!(
            "{{\"lambda_um\":{lambda},\"sd\":{sd},\"transistors\":1e7,\"volume\":{volume},\"fab_yield\":{fab_yield}}}"
        ),
        "yield" => format!(
            "{{\"lambda_um\":{lambda},\"sd\":{sd},\"transistors\":1e7,\"volume\":{volume}}}"
        ),
        "optimum" => format!(
            "{{\"lambda_um\":{lambda},\"transistors\":1e7,\"volume\":{volume},\"fab_yield\":{fab_yield}}}"
        ),
        _batch => {
            // Twelve queries over six distinct points: dedup inside the
            // batch plus hits across batches.
            let mut queries = Vec::with_capacity(12);
            for k in 0..12 {
                let sd = SDS[k % SDS.len()];
                queries.push(format!(
                    "{{\"lambda_um\":{lambda},\"sd\":{sd},\"transistors\":1e7,\"volume\":{volume},\"fab_yield\":{fab_yield}}}"
                ));
            }
            format!("{{\"queries\":[{}]}}", queries.join(","))
        }
    }
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a: a tiny, stable, dependency-free 64-bit hash. Stability
/// matters — the same scenario key must route to the same replica
/// across loadgen runs, so the scenario cache on each replica warms.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in data {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Multiplier constants of the splitmix64 finalizer.
const MIX_MUL_1: u64 = 0xbf58_476d_1ce4_e5b9;
const MIX_MUL_2: u64 = 0x94d0_49bb_1331_11eb;

/// Finalizing mix (splitmix64's): FNV-1a of short keys leaves the
/// *high* bits poorly avalanched, and ring position is ordered by the
/// full `u64` — without this mix a three-replica ring can starve one
/// replica entirely.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(MIX_MUL_1);
    x ^= x >> 27;
    x = x.wrapping_mul(MIX_MUL_2);
    x ^ (x >> 31)
}

/// Virtual nodes per replica on the consistent-hash ring. More nodes
/// smooth the key distribution; 64 keeps the worst-case imbalance low
/// for single-digit fleets without making ring construction noticeable.
const VNODES_PER_REPLICA: usize = 64;

/// A consistent-hash ring over replica indices: each replica owns
/// [`VNODES_PER_REPLICA`] points on the `u64` circle, and a key routes
/// to the replica owning the first point at or after the key's hash
/// (wrapping). Adding or removing one replica only remaps the keys in
/// the segments that replica owned — every other scenario keeps its
/// replica, and with it that replica's warm cache entries.
struct HashRing {
    /// `(point, replica index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    fn new(replicas: &[String]) -> HashRing {
        let mut points = Vec::with_capacity(replicas.len() * VNODES_PER_REPLICA);
        for (idx, replica) in replicas.iter().enumerate() {
            for vnode in 0..VNODES_PER_REPLICA {
                points.push((mix64(fnv1a(format!("{replica}#{vnode}").as_bytes())), idx));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// Routes a scenario key to a replica index.
    fn route(&self, key: &str) -> usize {
        let hash = mix64(fnv1a(key.as_bytes()));
        let at = self.points.partition_point(|(point, _)| *point < hash);
        // Past the last point, the circle wraps to the first.
        self.points[at % self.points.len()].1
    }
}

/// One raw HTTP exchange; returns (status, body).
fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, payload))
}

#[derive(Default)]
struct Outcome {
    /// (endpoint index in mix, latency seconds) per 2xx response.
    latencies: Vec<(usize, f64)>,
    non_2xx: usize,
    /// 503s counted as shed load under `--allow-shed`.
    shed: usize,
    batch_hits: u64,
    /// (target index, req_id) usable for a provenance replay — the
    /// replay must go to the replica that served the request.
    req_id: Option<(usize, String)>,
    /// Requests planned per target, in `targets()` order.
    routed: Vec<usize>,
}

/// The addresses this run drives: the fleet when `--replica` was given,
/// otherwise the single `--addr`.
fn targets(opts: &Options) -> Vec<String> {
    if opts.replicas.is_empty() {
        vec![opts.addr.clone()]
    } else {
        opts.replicas.clone()
    }
}

fn drive(opts: &Options) -> Outcome {
    let addrs = targets(opts);
    // Fleet routing: one design point always hashes to one replica, so
    // each replica's scenario cache sees the same working set run after
    // run. A single target degenerates to "everything routes to 0".
    let ring = HashRing::new(&addrs);
    let plan: Vec<(usize, String, usize)> = (0..opts.requests)
        .map(|i| {
            let e = i % opts.mix.len();
            let endpoint = &opts.mix[e];
            let body = body_for(endpoint, i / opts.mix.len());
            let target = ring.route(&format!("{endpoint}:{body}"));
            (e, body, target)
        })
        .collect();
    let mut routed = vec![0usize; addrs.len()];
    for (_, _, target) in &plan {
        routed[*target] += 1;
    }
    let workers = opts.concurrency.max(1);
    let results = std::sync::Mutex::new(Vec::<Outcome>::new());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let plan = &plan;
            let results = &results;
            let addrs = &addrs;
            let opts_ref = &*opts;
            scope.spawn(move || {
                let mut mine = Outcome::default();
                for (i, (endpoint_idx, body, target)) in plan.iter().enumerate() {
                    if i % workers != w {
                        continue;
                    }
                    let endpoint = &opts_ref.mix[*endpoint_idx];
                    let path = format!("/v1/{endpoint}");
                    let started = Instant::now();
                    match exchange(&addrs[*target], "POST", &path, Some(body)) {
                        Ok((status, payload)) if (200..300).contains(&status) => {
                            mine.latencies
                                .push((*endpoint_idx, started.elapsed().as_secs_f64()));
                            if endpoint == "batch" {
                                mine.batch_hits += batch_hits_of(&payload);
                            }
                            if mine.req_id.is_none() {
                                mine.req_id = req_id_of(&payload).map(|id| (*target, id));
                            }
                        }
                        Ok((503, _)) if opts_ref.allow_shed => mine.shed += 1,
                        Ok((status, _)) => {
                            eprintln!("loadgen: {path} -> {status}");
                            mine.non_2xx += 1;
                        }
                        Err(e) => {
                            eprintln!("loadgen: {path} -> {e}");
                            mine.non_2xx += 1;
                        }
                    }
                }
                if let Ok(mut all) = results.lock() {
                    all.push(mine);
                }
            });
        }
    });
    let mut merged = Outcome { routed, ..Outcome::default() };
    if let Ok(all) = results.into_inner() {
        for mut o in all {
            merged.latencies.append(&mut o.latencies);
            merged.non_2xx += o.non_2xx;
            merged.shed += o.shed;
            merged.batch_hits += o.batch_hits;
            merged.req_id = merged.req_id.or(o.req_id);
        }
    }
    merged
}

fn batch_hits_of(payload: &str) -> u64 {
    json::parse(payload)
        .ok()
        .and_then(|doc| doc.get("stats").and_then(|s| s.get("hits")).and_then(JsonValue::as_f64))
        .map_or(0, |h| h as u64)
}

fn req_id_of(payload: &str) -> Option<String> {
    json::parse(payload)
        .ok()
        .and_then(|doc| doc.get("req_id").and_then(|v| v.as_str().map(str::to_string)))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn write_bench_capture(
    path: &str,
    mix: &[String],
    latencies: &[(usize, f64)],
) -> std::io::Result<()> {
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let mut out = format!(
        "{{\"manifest\":{{\"format\":2,\"rustc\":{},\"opt_level\":\"{}\",\"sample_size\":{}}}}}\n",
        json_string(&rustc),
        if cfg!(debug_assertions) { "debug" } else { "release" },
        latencies.len().max(1),
    );
    for (e, name) in mix.iter().enumerate() {
        let mut samples: Vec<f64> = latencies
            .iter()
            .filter(|(idx, _)| *idx == e)
            .map(|(_, s)| *s)
            .collect();
        if samples.is_empty() {
            continue;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rendered: Vec<String> = samples.iter().map(|s| format!("{s:e}")).collect();
        out.push_str(&format!(
            "{{\"name\":{},\"median_s\":{:e},\"min_s\":{:e},\"max_s\":{:e},\"samples\":{},\"iters\":1,\"samples_s\":[{}]}}\n",
            json_string(&format!("serve/{name}")),
            percentile(&samples, 0.5),
            samples[0],
            samples[samples.len() - 1],
            samples.len(),
            rendered.join(","),
        ));
    }
    std::fs::write(path, out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_options()?;
    let outcome = drive(&opts);
    let addrs = targets(&opts);
    let ok = outcome.latencies.len();
    println!(
        "loadgen: {}/{} ok, {} shed, {} non-2xx, batch cache hits {}",
        ok,
        opts.requests,
        outcome.shed,
        outcome.non_2xx,
        outcome.batch_hits
    );
    if addrs.len() > 1 {
        let spread: Vec<String> = addrs
            .iter()
            .zip(&outcome.routed)
            .map(|(addr, n)| format!("{addr}={n}"))
            .collect();
        println!("loadgen: consistent-hash routing: {}", spread.join(" "));
    }
    for (e, name) in opts.mix.iter().enumerate() {
        let mut samples: Vec<f64> = outcome
            .latencies
            .iter()
            .filter(|(idx, _)| *idx == e)
            .map(|(_, s)| *s)
            .collect();
        if samples.is_empty() {
            continue;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        println!(
            "  {name:>8}: n={} p50={:.1}us p99={:.1}us",
            samples.len(),
            percentile(&samples, 0.5) * 1e6,
            percentile(&samples, 0.99) * 1e6,
        );
    }
    if let Some(path) = &opts.bench_out {
        write_bench_capture(path, &opts.mix, &outcome.latencies)?;
        println!("loadgen: bench capture -> {path}");
    }
    if let Some(path) = &opts.metrics_out {
        let (status, body) = exchange(&addrs[0], "GET", "/v1/metrics", None)?;
        if status != 200 || body.is_empty() {
            return Err(format!("/v1/metrics -> {status}").into());
        }
        std::fs::write(path, &body)?;
        println!("loadgen: metrics -> {path}");
    }
    if let Some(path) = &opts.provenance_out {
        let (target, id) = outcome
            .req_id
            .clone()
            .ok_or("no req_id captured for provenance replay")?;
        let (status, body) = exchange(&addrs[target], "GET", &format!("/v1/provenance/{id}"), None)?;
        if status != 200 || body.is_empty() {
            return Err(format!("/v1/provenance/{id} -> {status}").into());
        }
        std::fs::write(path, &body)?;
        println!("loadgen: provenance capture ({id}) -> {path}");
    }
    if let Some(path) = &opts.health_out {
        let (status, body) = exchange(&addrs[0], "GET", "/v1/health", None)?;
        std::fs::write(path, &body)?;
        println!("loadgen: health ({status}) -> {path}");
        if status != 200 {
            return Err(format!("/v1/health -> {status}: {body}").into());
        }
    }
    if let Some(prefix) = &opts.exemplar_traces {
        let fetched = fetch_exemplar_traces(&addrs[0], prefix, opts.max_evicted_exemplars)?;
        if fetched == 0 {
            return Err("no endpoint produced a p99 exemplar".into());
        }
    }
    if let Some(path) = &opts.profile_out {
        let query = format!("/v1/profile?window_s={}", opts.profile_window_s);
        let (status, body) = exchange(&addrs[0], "GET", &query, None)?;
        if status != 200 || body.is_empty() {
            return Err(format!("{query} -> {status}").into());
        }
        std::fs::write(path, &body)?;
        println!("loadgen: profile report -> {path}");
    }
    if outcome.non_2xx > 0 {
        return Err(format!("{} non-2xx responses", outcome.non_2xx).into());
    }
    if opts.require_batch_hits && outcome.batch_hits == 0 {
        return Err("batch endpoint reported zero cache hits".into());
    }
    if let Some(max) = opts.max_shed_rate {
        let rate = outcome.shed as f64 / opts.requests.max(1) as f64;
        if rate > max {
            return Err(format!("shed rate {rate:.3} exceeds --max-shed-rate {max}").into());
        }
    }
    if let Some(slo) = opts.slo_p99_us {
        let mut all: Vec<f64> = outcome.latencies.iter().map(|&(_, s)| s * 1e6).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p99 = percentile(&all, 0.99);
        if p99 > slo {
            return Err(format!("client-observed p99 {p99:.1}us exceeds --slo-p99-us {slo}").into());
        }
        println!("loadgen: client p99 {p99:.1}us within SLO {slo}us");
    }
    Ok(())
}

/// Follows every endpoint's p99 exemplar from `/v1/metrics` to its
/// stored `/v1/trace/<req-id>` capture, saving one JSONL file per
/// endpoint as `<prefix>.<endpoint>.jsonl`. Returns how many exemplars
/// round-tripped; an advertised exemplar whose trace is missing is an
/// error (the drill-down contract is exactly that link) — except a 410
/// with the `serve.trace_ring.evicted` context, which means the ring
/// legitimately rolled past the exemplar under sustained load. Up to
/// `max_evicted` such answers are tolerated (they still count as
/// coverage: the server knew the id and said so machine-readably).
fn fetch_exemplar_traces(
    addr: &str,
    prefix: &str,
    max_evicted: usize,
) -> Result<usize, Box<dyn std::error::Error>> {
    let (status, body) = exchange(addr, "GET", "/v1/metrics", None)?;
    if status != 200 {
        return Err(format!("/v1/metrics -> {status}").into());
    }
    let doc = json::parse(&body).map_err(|e| format!("metrics is not JSON: {e}"))?;
    let Some(JsonValue::Obj(endpoints)) = doc.get("endpoints") else {
        return Err("metrics has no endpoints object".into());
    };
    let mut fetched = 0;
    let mut evicted = 0;
    for (endpoint, stats) in endpoints {
        let Some(req_id) = stats
            .get("p99_exemplar")
            .and_then(|e| e.get("req_id"))
            .and_then(JsonValue::as_str)
        else {
            continue;
        };
        let (status, capture) = exchange(addr, "GET", &format!("/v1/trace/{req_id}"), None)?;
        if status == 410 && capture.contains("serve.trace_ring.evicted") {
            evicted += 1;
            if evicted > max_evicted {
                return Err(format!(
                    "{evicted} exemplars evicted from the trace ring exceeds \
                     --max-evicted-exemplars {max_evicted} (last: {req_id} for {endpoint})"
                )
                .into());
            }
            println!("loadgen: exemplar trace {endpoint} ({req_id}) evicted ({evicted}/{max_evicted} tolerated)");
            fetched += 1;
            continue;
        }
        if status != 200 || capture.is_empty() {
            return Err(format!(
                "exemplar {req_id} for {endpoint} did not round-trip: /v1/trace -> {status}"
            )
            .into());
        }
        let path = format!("{prefix}.{endpoint}.jsonl");
        std::fs::write(&path, &capture)?;
        println!("loadgen: exemplar trace {endpoint} ({req_id}) -> {path}");
        fetched += 1;
    }
    Ok(fetched)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn fnv1a_is_stable_across_runs() {
        // Reference vectors for 64-bit FNV-1a; a drifting hash would
        // silently reshuffle every fleet's scenario assignment.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn ring_routes_deterministically_and_covers_every_replica() {
        let ring = HashRing::new(&addrs(&["h:1", "h:2", "h:3"]));
        let mut hit = [0usize; 3];
        for i in 0..BALANCE_KEYS {
            let key = format!("cost:{{\"sd\":{}}}", f64::from(i));
            let first = ring.route(&key);
            assert_eq!(first, ring.route(&key), "routing must be deterministic");
            hit[first] += 1;
        }
        assert!(hit.iter().all(|n| *n > 0), "every replica owns keys: {hit:?}");
    }

    /// Keys routed per replica in the balance test.
    const BALANCE_KEYS: u32 = 300;

    #[test]
    fn removing_a_replica_only_remaps_its_own_keys() {
        let three = HashRing::new(&addrs(&["h:1", "h:2", "h:3"]));
        let two = HashRing::new(&addrs(&["h:1", "h:2"]));
        for i in 0..BALANCE_KEYS {
            let key = format!("optimum:{{\"lambda\":{}}}", f64::from(i));
            let before = three.route(&key);
            // The surviving replicas' ring points are unchanged, so any
            // key they owned still routes to them.
            if before < 2 {
                assert_eq!(two.route(&key), before, "consistency violated for {key}");
            }
        }
    }

    #[test]
    fn single_target_routes_everything_to_it() {
        let ring = HashRing::new(&addrs(&["h:1"]));
        for i in 0..BALANCE_KEYS {
            assert_eq!(ring.route(&format!("k{i}")), 0);
        }
    }
}
