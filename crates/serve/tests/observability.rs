//! End-to-end observability tests over a real socket: the exemplar →
//! trace drill-down, the SLO health verdict, the structured access
//! log, and the trace-capture ring — the paths `trace_tail --attach`
//! and the CI soak gate depend on.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use nanocost_sentinel::json;
use nanocost_serve::{Server, ServerConfig, ServerState, ServerStateConfig};

const COST_BODY: &str =
    r#"{"lambda_um":0.18,"sd":300,"transistors":1e7,"volume":5000,"fab_yield":0.4}"#;

/// Runs `f` against a live server built from `state`, then shuts the
/// server down cleanly.
fn with_server_state(state: ServerState, f: impl FnOnce(std::net::SocketAddr)) {
    let server = Server::bind_with_state(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            io_timeout: Duration::from_secs(2),
        },
        state,
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&shutdown));
        f(addr);
        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("server thread").expect("server run");
    });
}

/// One HTTP/1.1 exchange; returns `(status, body)`.
fn exchange(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8_lossy(&response).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn p99_exemplar_round_trips_to_a_clean_request_trace() {
    with_server_state(ServerState::new(), |addr| {
        // A mixed workload so every model endpoint has an exemplar.
        for _ in 0..5 {
            assert_eq!(exchange(addr, "POST", "/v1/cost", COST_BODY).0, 200);
        }
        let yield_body = r#"{"lambda_um":0.13,"sd":400,"transistors":1e7,"volume":20000}"#;
        assert_eq!(exchange(addr, "POST", "/v1/yield", yield_body).0, 200);

        let (status, metrics) = exchange(addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200, "{metrics}");
        let doc = json::parse(&metrics).expect("metrics is JSON");
        assert_eq!(doc.get("schema").and_then(json::JsonValue::as_u64), Some(2));
        let endpoints = doc.get("endpoints").expect("endpoints object");
        for endpoint in ["cost", "yield"] {
            let req_id = endpoints
                .get(endpoint)
                .and_then(|e| e.get("p99_exemplar"))
                .and_then(|e| e.get("req_id"))
                .and_then(json::JsonValue::as_str)
                .unwrap_or_else(|| panic!("{endpoint} has no p99 exemplar: {metrics}"))
                .to_string();

            // The drill-down: the anonymous p99 pivots to a fetchable,
            // fully request-scoped trace capture.
            let (status, capture) = exchange(addr, "GET", &format!("/v1/trace/{req_id}"), "");
            assert_eq!(status, 200, "exemplar {req_id} has no stored trace");
            assert!(!capture.trim().is_empty(), "empty capture for {req_id}");
            let tag = format!("\"req_id\":\"{req_id}\"");
            let mut enters = 0usize;
            let mut exits = 0usize;
            for line in capture.lines() {
                nanocost_trace::json::validate(line).expect("capture line is JSON");
                assert!(line.contains(&tag), "untagged record in {req_id}: {line}");
                if line.contains("\"type\":\"span_enter\"") {
                    enters += 1;
                }
                if line.contains("\"type\":\"span_exit\"") {
                    exits += 1;
                }
            }
            assert!(enters >= 1, "capture has no spans: {capture}");
            assert_eq!(enters, exits, "unbalanced spans in {req_id}: {capture}");
            assert!(
                capture.contains("serve.request"),
                "missing request span: {capture}"
            );
        }
    });
}

#[test]
fn health_verdict_is_served_over_the_wire() {
    with_server_state(ServerState::new(), |addr| {
        let (status, body) = exchange(addr, "GET", "/v1/health", "");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("health is JSON");
        assert_eq!(
            doc.get("status").and_then(json::JsonValue::as_str),
            Some("ok")
        );
        let objectives = doc
            .get("objectives")
            .and_then(json::JsonValue::as_arr)
            .expect("objectives array");
        let names: Vec<_> = objectives
            .iter()
            .filter_map(|o| o.get("name").and_then(json::JsonValue::as_str))
            .collect();
        assert_eq!(names, ["latency", "shed_rate"], "{body}");
    });

    // A hair-trigger latency objective flips the verdict to 503 once
    // traffic burns through the error budget in both windows.
    let cfg = ServerStateConfig {
        latency_threshold_us: 0.001,
        ..ServerStateConfig::default()
    };
    let state = ServerState::with_config(cfg).expect("valid config");
    with_server_state(state, |addr| {
        for _ in 0..20 {
            assert_eq!(exchange(addr, "POST", "/v1/cost", COST_BODY).0, 200);
        }
        let (status, body) = exchange(addr, "GET", "/v1/health", "");
        assert_eq!(status, 503, "every request misses a 1ns SLO: {body}");
        assert!(body.contains("\"status\":\"failing\""), "{body}");
    });
}

#[test]
fn access_log_records_every_request_in_golden_field_order() {
    let path = std::env::temp_dir().join(format!(
        "nanocost_access_log_{}.jsonl",
        std::process::id()
    ));
    let cfg = ServerStateConfig {
        access_log: Some(path.to_string_lossy().into_owned()),
        ..ServerStateConfig::default()
    };
    let state = ServerState::with_config(cfg).expect("valid config");
    with_server_state(state, |addr| {
        assert_eq!(exchange(addr, "POST", "/v1/cost", COST_BODY).0, 200);
        assert_eq!(exchange(addr, "POST", "/v1/cost", COST_BODY).0, 200);
        assert_eq!(exchange(addr, "GET", "/v1/metrics", "").0, 200);
        assert_eq!(exchange(addr, "GET", "/v1/trace/r999", "").0, 404);
    });
    let log = std::fs::read_to_string(&path).expect("access log written");
    let _ = std::fs::remove_file(&path);

    // Normalize the only non-deterministic field (latency digits) and
    // compare the rest byte for byte.
    let normalized: Vec<String> = log
        .lines()
        .map(|line| {
            let at = line.find("\"latency_ns\":").expect("latency field");
            let rest = &line[at + 13..];
            let end = rest.find(',').expect("field after latency");
            format!("{}\"latency_ns\":N{}", &line[..at], &rest[end..])
        })
        .collect();
    assert_eq!(
        normalized,
        [
            // A cost request performs two cache lookups (mask-set cost
            // and the breakdown): the first request misses both, the
            // identical second hits both.
            "{\"req_id\":\"r1\",\"endpoint\":\"cost\",\"status\":200,\"latency_ns\":N,\"cache_hits\":0,\"cache_misses\":2}",
            "{\"req_id\":\"r2\",\"endpoint\":\"cost\",\"status\":200,\"latency_ns\":N,\"cache_hits\":2,\"cache_misses\":0}",
            "{\"req_id\":\"-\",\"endpoint\":\"metrics\",\"status\":200,\"latency_ns\":N,\"cache_hits\":0,\"cache_misses\":0}",
            "{\"req_id\":\"-\",\"endpoint\":\"trace\",\"status\":404,\"latency_ns\":N,\"cache_hits\":0,\"cache_misses\":0}",
        ],
        "access log drifted from the golden shape:\n{log}"
    );
    for line in log.lines() {
        nanocost_trace::json::validate(line).expect("access record is JSON");
    }
}

#[test]
fn trace_ring_capacity_and_eviction_counter_are_live() {
    let cfg = ServerStateConfig {
        trace_ring: 2,
        ..ServerStateConfig::default()
    };
    let state = ServerState::with_config(cfg).expect("valid config");
    with_server_state(state, |addr| {
        for _ in 0..4 {
            assert_eq!(exchange(addr, "POST", "/v1/cost", COST_BODY).0, 200);
        }
        // r1/r2 evicted (410 with machine-readable context), r3/r4
        // retained.
        let (status, body) = exchange(addr, "GET", "/v1/trace/r1", "");
        assert_eq!(status, 410, "{body}");
        assert!(body.contains("serve.trace_ring.evicted"), "{body}");
        assert_eq!(exchange(addr, "GET", "/v1/trace/r2", "").0, 410);
        assert_eq!(exchange(addr, "GET", "/v1/trace/r3", "").0, 200);
        assert_eq!(exchange(addr, "GET", "/v1/trace/r4", "").0, 200);
        let (_, metrics) = exchange(addr, "GET", "/v1/metrics", "");
        let doc = json::parse(&metrics).expect("metrics is JSON");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("trace_ring_evicted"))
                .and_then(json::JsonValue::as_u64),
            Some(2),
            "{metrics}"
        );
    });
}
