//! Property fuzz over the HTTP parser plus bounded-read server tests.
//!
//! The parser contract under test: arbitrary bytes, arbitrarily split
//! reads, oversized heads, and truncated bodies all map to clean
//! [`ParseError`]s — never a panic, never an unbounded read — and a
//! stalled peer is answered (or dropped) within the configured
//! deadline rather than wedging a worker.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use nanocost_numeric::Rng64;
use nanocost_serve::http::{MAX_BODY_BYTES, MAX_HEAD_BYTES};
use nanocost_serve::{read_request, ParseError, Request, Server, ServerConfig};

/// A reader that hands out a byte stream in caller-chosen slice sizes,
/// modelling TCP segmentation. Returns `Ok(0)` (EOF) once drained.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    turn: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> Self {
        ChunkedReader {
            data,
            pos: 0,
            chunks,
            turn: 0,
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let planned = self.chunks[self.turn % self.chunks.len()].max(1);
        self.turn += 1;
        let n = planned.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn parse_chunked(data: &[u8], rng: &mut Rng64) -> Result<Request, ParseError> {
    let chunks: Vec<usize> = (0..8).map(|_| rng.random_range(1..97usize)).collect();
    let mut reader = ChunkedReader::new(data.to_vec(), chunks);
    read_request(&mut reader)
}

fn parse_whole(data: &[u8]) -> Result<Request, ParseError> {
    let mut cursor = std::io::Cursor::new(data.to_vec());
    read_request(&mut cursor)
}

const VALID: &[u8] =
    b"POST /v1/cost HTTP/1.1\r\nHost: fuzz\r\nContent-Type: application/json\r\nContent-Length: 18\r\n\r\n{\"lambda_um\":0.18}";

#[test]
fn arbitrary_byte_streams_never_panic() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0001);
    for _ in 0..500 {
        let len = rng.random_range(0..4096usize);
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Any outcome is fine; panicking or hanging is not.
        let _ = parse_chunked(&data, &mut rng);
    }
}

#[test]
fn one_byte_reads_reassemble_identically() {
    let mut reader = ChunkedReader::new(VALID.to_vec(), vec![1]);
    let split = read_request(&mut reader).expect("split reads must reassemble");
    let whole = parse_whole(VALID).expect("whole read must parse");
    assert_eq!(split, whole);
    assert_eq!(split.body, b"{\"lambda_um\":0.18}".to_vec());
}

#[test]
fn random_segmentation_never_changes_the_parse() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0002);
    let whole = parse_whole(VALID).expect("whole read must parse");
    for _ in 0..200 {
        let split = parse_chunked(VALID, &mut rng).expect("segmentation must not matter");
        assert_eq!(split, whole);
    }
}

#[test]
fn oversized_heads_are_cut_off_with_413() {
    // A head that never terminates: the parser must give up at the
    // bound, not buffer forever.
    let mut data = b"GET / HTTP/1.1\r\n".to_vec();
    while data.len() <= MAX_HEAD_BYTES + 4096 {
        data.extend_from_slice(b"X-Padding: yyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n");
    }
    let err = parse_whole(&data).expect_err("oversized head must fail");
    assert_eq!(err, ParseError::HeadTooLarge);
    assert_eq!(err.status(), 413);
}

#[test]
fn oversized_declared_bodies_are_rejected_before_reading() {
    let head = format!(
        "POST /v1/batch HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    let err = parse_whole(head.as_bytes()).expect_err("oversized body must fail");
    assert_eq!(err, ParseError::BodyTooLarge);
    assert_eq!(err.status(), 413);
}

#[test]
fn every_truncation_of_a_valid_request_fails_cleanly() {
    for cut in 0..VALID.len() {
        let err = parse_whole(&VALID[..cut]).expect_err("truncations must not parse");
        // Either the head never completed or the body came up short;
        // both surface as clean EOF-category errors, never a panic.
        assert!(
            matches!(err, ParseError::UnexpectedEof | ParseError::BadRequestLine),
            "cut at {cut}: {err:?}"
        );
    }
    assert!(parse_whole(VALID).is_ok());
}

#[test]
fn mutated_requests_never_panic_and_keep_invariants() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0003);
    for _ in 0..500 {
        let mut data = VALID.to_vec();
        for _ in 0..rng.random_range(1..6usize) {
            match rng.random_range(0..3u32) {
                0 => {
                    let i = rng.random_range(0..data.len());
                    data[i] = rng.next_u64() as u8;
                }
                1 => {
                    let i = rng.random_range(0..data.len());
                    data.remove(i);
                }
                _ => {
                    let i = rng.random_range(0..=data.len());
                    data.insert(i, rng.next_u64() as u8);
                }
            }
        }
        if let Ok(req) = parse_chunked(&data, &mut rng) {
            // Whatever survived mutation must still satisfy the parsed
            // invariants the router relies on.
            assert!(req.method.bytes().all(|b| b.is_ascii_alphabetic()));
            assert!(req.path.starts_with('/'));
            assert!(req.version.starts_with("HTTP/"));
        }
    }
}

/// Runs `f` against a live server bound to an ephemeral port with a
/// short I/O deadline, then shuts the server down cleanly.
fn with_server(io_timeout: Duration, f: impl FnOnce(std::net::SocketAddr)) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_timeout,
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&shutdown));
        f(addr);
        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("server thread").expect("server run");
    });
}

#[test]
fn stalled_peer_is_answered_within_the_deadline() {
    with_server(Duration::from_millis(200), |addr| {
        let started = Instant::now();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // Send a partial head and then stall.
        stream
            .write_all(b"POST /v1/cost HTTP/1.1\r\nContent-")
            .expect("partial write");
        stream.flush().expect("flush");
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        let elapsed = started.elapsed();
        // The worker must give up at its deadline: either a 408 response
        // or a bare close, but promptly — not a wedged connection.
        assert!(
            elapsed < Duration::from_secs(5),
            "stalled peer held a worker for {elapsed:?}"
        );
        if !response.is_empty() {
            let text = String::from_utf8_lossy(&response);
            assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        }
    });
}

#[test]
fn slow_client_burst_is_shed_not_queued_without_bound() {
    // 2 workers × 8 queue slots: a burst of 40 idle (slowloris-style)
    // connections overflows the bounded queue, so the overflow must be
    // answered 503 immediately instead of accumulating open fds, and
    // the server must come back once the burst drains.
    with_server(Duration::from_millis(200), |addr| {
        let idle: Vec<TcpStream> = (0..40)
            .map(|_| TcpStream::connect(addr).expect("connect"))
            .collect();
        let mut shed = 0;
        for mut stream in idle {
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            let mut response = Vec::new();
            let _ = stream.read_to_end(&mut response);
            if String::from_utf8_lossy(&response).starts_with("HTTP/1.1 503") {
                shed += 1;
            }
        }
        assert!(shed > 0, "overflow connections must be shed with a 503");
        // The pool recovers: a real request succeeds once slots free up.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            let _ = stream.write_all(b"GET /v1/metrics HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut response = Vec::new();
            let _ = stream.read_to_end(&mut response);
            if String::from_utf8_lossy(&response).starts_with("HTTP/1.1 200") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "server did not recover after the burst"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
    });
}

#[test]
fn end_to_end_cost_request_round_trips() {
    with_server(Duration::from_secs(2), |addr| {
        let body = "{\"lambda_um\":0.18,\"sd\":300,\"transistors\":1e7,\"volume\":5000,\"fab_yield\":0.4}";
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /v1/cost HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .expect("write");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read");
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("\"req_id\":\"r1\""), "{text}");
        assert!(text.contains("\"total\":"), "{text}");
    });
}

#[test]
fn garbage_over_the_wire_gets_a_4xx_not_a_hang() {
    with_server(Duration::from_secs(2), |addr| {
        let mut rng = Rng64::seed_from_u64(0x5eed_0004);
        for _ in 0..20 {
            let len = rng.random_range(1..512usize);
            let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            stream.write_all(&garbage).expect("write");
            // Half-close so the server sees EOF instead of waiting out
            // its read deadline.
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut response = Vec::new();
            let _ = stream.read_to_end(&mut response);
            if !response.is_empty() {
                let text = String::from_utf8_lossy(&response);
                let status: u16 = text
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                assert!(
                    (400..500).contains(&status),
                    "garbage must map to a 4xx: {text}"
                );
            }
        }
    });
}
