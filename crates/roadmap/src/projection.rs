//! Trend fitting and projection over roadmap data.

use nanocost_numeric::{exponential_fit, ExponentialFit, NumericError};
use nanocost_trace::provenance;

use crate::entry::RoadmapEntry;

/// Fitted exponential trends over a roadmap: transistor growth, feature
/// shrink, and density growth, each against calendar year.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadmapTrends {
    /// Transistors-per-chip trend (growth factor > 1).
    pub transistors: ExponentialFit,
    /// Feature-size trend (growth factor < 1: shrinking).
    pub feature: ExponentialFit,
    /// Transistor-density trend (growth factor > 1).
    pub density: ExponentialFit,
}

impl RoadmapTrends {
    /// Fits all three trends.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError`] for fewer than two entries.
    pub fn fit(roadmap: &[RoadmapEntry]) -> Result<Self, NumericError> {
        let years: Vec<f64> = roadmap.iter().map(|e| f64::from(e.year)).collect();
        let tr: Vec<f64> = roadmap.iter().map(|e| e.transistors_millions).collect();
        let nm: Vec<f64> = roadmap.iter().map(|e| e.feature_nm).collect();
        let dens: Vec<f64> = roadmap
            .iter()
            .map(|e| e.transistor_density().per_cm2())
            .collect();
        Ok(RoadmapTrends {
            transistors: exponential_fit(&years, &tr)?,
            feature: exponential_fit(&years, &nm)?,
            density: exponential_fit(&years, &dens)?,
        })
    }

    /// Projects a synthetic roadmap entry for an arbitrary year from the
    /// fitted trends (chip area follows from transistors / density; the
    /// wafer diameter is carried from the nearest tabulated entry).
    #[must_use]
    pub fn project(&self, roadmap: &[RoadmapEntry], year: u32) -> RoadmapEntry {
        let y = f64::from(year);
        let transistors_millions = self.transistors.eval(y);
        let density = self.density.eval(y);
        let chip_cm2 = transistors_millions * 1.0e6 / density;
        let wafer_mm = roadmap
            .iter()
            .min_by_key(|e| e.year.abs_diff(year))
            .map_or(300.0, |e| e.wafer_mm);
        let entry = RoadmapEntry {
            year,
            feature_nm: self.feature.eval(y),
            transistors_millions,
            chip_mm2: chip_cm2 * 100.0,
            wafer_mm,
        };
        provenance!(
            equation: Eq2,
            function: "nanocost_roadmap::projection::RoadmapTrends::project",
            inputs: [year = year, density_per_cm2 = density],
            outputs: [
                feature_nm = entry.feature_nm,
                transistors_millions = entry.transistors_millions,
                chip_mm2 = entry.chip_mm2,
            ],
        );
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itrs1999::itrs_1999;

    #[test]
    fn transistor_trend_doubles_every_two_years_or_so() {
        let trends = RoadmapTrends::fit(&itrs_1999()).unwrap();
        let dt = trends.transistors.doubling_time();
        assert!((1.5..3.0).contains(&dt), "doubling time {dt}");
        assert!(trends.transistors.r_squared > 0.98);
    }

    #[test]
    fn feature_trend_shrinks() {
        let trends = RoadmapTrends::fit(&itrs_1999()).unwrap();
        assert!(trends.feature.growth_factor < 1.0);
        // Roughly 0.7x every two-ish years: annual factor ~0.87-0.92.
        assert!((0.85..0.95).contains(&trends.feature.growth_factor));
    }

    #[test]
    fn projection_interpolates_sensibly() {
        let roadmap = itrs_1999();
        let trends = RoadmapTrends::fit(&roadmap).unwrap();
        let p2003 = trends.project(&roadmap, 2003);
        // Between the 2002 (130nm, 76M) and 2005 (100nm, 200M) entries.
        assert!(p2003.feature_nm < 135.0 && p2003.feature_nm > 95.0);
        assert!(p2003.transistors_millions > 70.0 && p2003.transistors_millions < 210.0);
        assert!(p2003.chip_mm2 > 100.0 && p2003.chip_mm2 < 400.0);
    }

    #[test]
    fn projection_beyond_horizon_keeps_growing() {
        let roadmap = itrs_1999();
        let trends = RoadmapTrends::fit(&roadmap).unwrap();
        let p2016 = trends.project(&roadmap, 2016);
        assert!(p2016.transistors_millions > 3600.0);
        assert!(p2016.feature_nm < 35.0);
        assert_eq!(p2016.wafer_mm, 450.0); // nearest entry is 2014
    }
}
