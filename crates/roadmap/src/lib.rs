//! ITRS-1999-style technology roadmap data and the constant-die-cost
//! analysis of the paper's §2.2.3 (Figures 2 and 3).
//!
//! * [`itrs_1999`] — the embedded cost-performance-MPU roadmap (1999–2014)
//!   with the paper's economic [`anchors`];
//! * [`RoadmapEntry::implied_sd`] — the Figure-2 computation
//!   (`s_d = 1/(T_d·λ²)`);
//! * [`ConstantCostAssumptions::required_sd`] and [`figure3`] — the
//!   Figure-3 ratio exposing the *cost contradiction*;
//! * [`RoadmapTrends`] — Moore's-law trend fitting and projection;
//! * [`Scenario`] — pessimistic `C_sq`/yield erosion variants.
//!
//! # Example
//!
//! ```
//! use nanocost_roadmap::{figure3, itrs_1999, ConstantCostAssumptions};
//!
//! let pts = figure3(&itrs_1999(), &ConstantCostAssumptions::paper_1999())?;
//! // The affordability gap grows toward the nanometer era.
//! assert!(pts.last().expect("non-empty").ratio > pts[0].ratio);
//! # Ok::<(), nanocost_units::UnitError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod constant_cost;
mod entry;
mod itrs1999;
mod projection;
mod scenarios;

pub use constant_cost::{figure3, ConstantCostAssumptions, Figure3Point};
pub use entry::RoadmapEntry;
pub use itrs1999::{anchors, itrs_1999};
pub use projection::RoadmapTrends;
pub use scenarios::Scenario;

#[cfg(test)]
mod proptests {
    //! Randomized property checks driven by the in-tree [`Rng64`] stream so
    //! the suite runs fully offline (the external `proptest` crate is gone).

    use super::*;
    use nanocost_numeric::Rng64;
    use nanocost_units::{FeatureSize, TransistorCount};

    const CASES: usize = 256;

    #[test]
    fn required_sd_monotone_in_every_argument() {
        let mut r = Rng64::seed_from_u64(0x41);
        for _ in 0..CASES {
            let um = r.random_range(0.03f64..0.5);
            let m = r.random_range(1.0f64..1000.0);
            let a = ConstantCostAssumptions::paper_1999();
            let l1 = FeatureSize::from_microns(um).unwrap();
            let l2 = FeatureSize::from_microns(um * 0.9).unwrap();
            let n1 = TransistorCount::from_millions(m);
            let n2 = TransistorCount::from_millions(m * 1.5);
            let base = a.required_sd(l1, n1).unwrap().squares();
            // Smaller node: more s_d headroom (λ² in the denominator).
            assert!(a.required_sd(l2, n1).unwrap().squares() > base);
            // More transistors: less headroom.
            assert!(a.required_sd(l1, n2).unwrap().squares() < base);
        }
    }

    #[test]
    fn die_cost_round_trips_through_required_sd() {
        let mut r = Rng64::seed_from_u64(0x42);
        for _ in 0..CASES {
            let um = r.random_range(0.03f64..0.5);
            let m = r.random_range(1.0f64..1000.0);
            let a = ConstantCostAssumptions::paper_1999();
            let lambda = FeatureSize::from_microns(um).unwrap();
            let n = TransistorCount::from_millions(m);
            let sd = a.required_sd(lambda, n).unwrap();
            let cost = a.die_cost_for(lambda, n, sd).amount();
            assert!((cost - 34.0).abs() < 1e-6);
        }
    }

    #[test]
    fn projections_are_continuous_in_year() {
        for year in 2000u32..2013 {
            let roadmap = itrs_1999();
            let trends = RoadmapTrends::fit(&roadmap).unwrap();
            let a = trends.project(&roadmap, year);
            let b = trends.project(&roadmap, year + 1);
            // Adjacent years differ by less than the biennial growth factor.
            assert!(b.transistors_millions / a.transistors_millions < 2.0);
            assert!(b.feature_nm < a.feature_nm);
        }
    }
}
