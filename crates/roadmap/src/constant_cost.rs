//! The constant-die-cost analysis behind the paper's Figure 3.
//!
//! Inverting eq. 3 — `C_ch = C_sq · A_ch = C_sq · N_tr · s_d · λ² / Y` at
//! the die level — gives the decompression index a design *may not exceed*
//! if its die is to stay affordable:
//!
//! ```text
//! s_d(required) = C_ch · Y / (C_sq · λ² · N_tr)
//! ```
//!
//! Figure 3 plots the ratio of the ITRS-implied `s_d` (Figure 2) to this
//! required value: a ratio above one means the roadmap's own transistor
//! counts cannot be delivered at the target die cost with the assumed
//! density — the paper's *cost contradiction*.

use nanocost_trace::{provenance, span};
use nanocost_units::{
    CostPerArea, DecompressionIndex, Dollars, FeatureSize, TransistorCount, UnitError, Yield,
};

use crate::entry::RoadmapEntry;
use crate::itrs1999::anchors;

/// The economic assumptions of the constant-cost analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantCostAssumptions {
    /// Maximum acceptable die cost `C_ch`.
    pub die_cost: Dollars,
    /// Manufacturing cost per cm² `C_sq`.
    pub cost_per_cm2: CostPerArea,
    /// Manufacturing yield `Y`.
    pub fab_yield: Yield,
}

impl ConstantCostAssumptions {
    /// The paper's §2.2.3 values: `C_ch = $34`, `C_sq = 8 $/cm²`, `Y = 0.8`.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the constants are valid.
    #[must_use]
    pub fn paper_1999() -> Self {
        ConstantCostAssumptions {
            die_cost: Dollars::new(anchors::DIE_COST_DOLLARS),
            cost_per_cm2: CostPerArea::per_cm2(anchors::COST_PER_CM2),
            fab_yield: Yield::new(anchors::YIELD).expect("paper constant is valid"), // nanocost-audit: allow(R1, reason = "documented invariant: paper constant is valid")
        }
    }

    /// The largest `s_d` compatible with the die-cost cap for a design of
    /// `transistors` at node `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the computed value degenerates (it cannot
    /// for physical inputs, but the arithmetic is validated anyway).
    pub fn required_sd(
        &self,
        lambda: FeatureSize,
        transistors: TransistorCount,
    ) -> Result<DecompressionIndex, UnitError> {
        let sd = self.die_cost.amount() * self.fab_yield.value()
            / (self.cost_per_cm2.dollars_per_cm2() * lambda.square().cm2() * transistors.count());
        provenance!(
            equation: Eq3,
            function: "nanocost_roadmap::constant_cost::ConstantCostAssumptions::required_sd",
            inputs: [
                c_ch = self.die_cost.amount(),
                c_sq = self.cost_per_cm2.dollars_per_cm2(),
                fab_yield = self.fab_yield.value(),
                lambda_um = lambda.microns(),
                n_tr = transistors.count(),
            ],
            outputs: [sd_required = sd],
        );
        DecompressionIndex::new(sd)
    }

    /// The die cost implied by eq. 3 for a given design point — the
    /// forward direction, used to cross-check [`Self::required_sd`].
    #[must_use]
    pub fn die_cost_for(
        &self,
        lambda: FeatureSize,
        transistors: TransistorCount,
        sd: DecompressionIndex,
    ) -> Dollars {
        let area_cm2 = transistors.count() * sd.squares() * lambda.square().cm2();
        Dollars::new(self.cost_per_cm2.dollars_per_cm2() * area_cm2 / self.fab_yield.value())
    }
}

/// One point of the Figure-3 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure3Point {
    /// Production year.
    pub year: u32,
    /// Feature size in nanometers.
    pub feature_nm: f64,
    /// The ITRS-implied `s_d` (Figure 2's value).
    pub itrs_sd: f64,
    /// The constant-cost-required `s_d`.
    pub required_sd: f64,
    /// `itrs_sd / required_sd` — the paper's plotted ratio.
    pub ratio: f64,
}

/// Computes the Figure-3 ratio for every roadmap entry.
///
/// # Errors
///
/// Returns [`UnitError`] if an entry's parameters are invalid (cannot
/// happen for the validated embedded dataset).
pub fn figure3(
    roadmap: &[RoadmapEntry],
    assumptions: &ConstantCostAssumptions,
) -> Result<Vec<Figure3Point>, UnitError> {
    let _span = span!("roadmap.figure3", entries = roadmap.len());
    roadmap
        .iter()
        .map(|e| {
            let lambda = e.feature_size()?;
            let itrs_sd = e.implied_sd().squares();
            let required = assumptions.required_sd(lambda, e.transistors())?.squares();
            Ok(Figure3Point {
                year: e.year,
                feature_nm: e.feature_nm,
                itrs_sd,
                required_sd: required,
                ratio: itrs_sd / required,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itrs1999::itrs_1999;

    #[test]
    fn required_sd_matches_hand_computation_for_1999() {
        // 34·0.8 / (8 · (0.18e-4)² · 21e6) = 27.2 / 5.443e-2 ≈ 499.7
        let a = ConstantCostAssumptions::paper_1999();
        let sd = a
            .required_sd(
                FeatureSize::from_microns(0.18).unwrap(),
                TransistorCount::from_millions(21.0),
            )
            .unwrap();
        assert!((sd.squares() - 499.7).abs() < 1.0, "{}", sd);
    }

    #[test]
    fn forward_and_inverse_directions_agree() {
        let a = ConstantCostAssumptions::paper_1999();
        let lambda = FeatureSize::from_microns(0.13).unwrap();
        let n = TransistorCount::from_millions(76.0);
        let sd = a.required_sd(lambda, n).unwrap();
        let cost = a.die_cost_for(lambda, n, sd);
        assert!((cost.amount() - 34.0).abs() < 1e-9, "{cost}");
    }

    #[test]
    fn figure3_ratio_grows_toward_nanometer_nodes() {
        // The cost contradiction: the ratio roughly doubles across the
        // horizon even under the paper's optimistic constant-C_sq,
        // constant-yield assumptions.
        let pts = figure3(&itrs_1999(), &ConstantCostAssumptions::paper_1999()).unwrap();
        assert_eq!(pts.len(), 7);
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(
            last.ratio > 1.8 * first.ratio,
            "ratio {} -> {}",
            first.ratio,
            last.ratio
        );
        // Monotone non-decreasing within a small tolerance.
        for w in pts.windows(2) {
            assert!(w[1].ratio > w[0].ratio * 0.95);
        }
    }

    #[test]
    fn ratio_exceeds_unity_in_the_nanometer_era() {
        let pts = figure3(&itrs_1999(), &ConstantCostAssumptions::paper_1999()).unwrap();
        let last = pts.last().unwrap();
        assert!(
            last.ratio > 1.0,
            "by 2014 the ITRS s_d should exceed the affordable s_d (ratio {})",
            last.ratio
        );
    }

    #[test]
    fn required_sd_scales_inversely_with_transistors() {
        let a = ConstantCostAssumptions::paper_1999();
        let lambda = FeatureSize::from_microns(0.1).unwrap();
        let one = a.required_sd(lambda, TransistorCount::from_millions(100.0)).unwrap();
        let two = a.required_sd(lambda, TransistorCount::from_millions(200.0)).unwrap();
        assert!((one.squares() / two.squares() - 2.0).abs() < 1e-9);
    }
}
