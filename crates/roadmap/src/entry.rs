//! Roadmap entries: one technology generation per record.

use nanocost_trace::provenance;
use nanocost_units::{
    Area, DecompressionIndex, FeatureSize, TransistorCount, TransistorDensity, UnitError,
};

/// One generation of the ITRS-1999-style roadmap for cost-performance
/// microprocessors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadmapEntry {
    /// Production year.
    pub year: u32,
    /// Minimum feature size in nanometers.
    pub feature_nm: f64,
    /// Transistors per chip, in millions (cost-performance MPU).
    pub transistors_millions: f64,
    /// Chip size at production, in mm².
    pub chip_mm2: f64,
    /// Production wafer diameter in millimeters.
    pub wafer_mm: f64,
}

impl RoadmapEntry {
    /// The feature size as a typed quantity.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the stored value is invalid (cannot happen
    /// for the embedded dataset, which is test-verified).
    pub fn feature_size(&self) -> Result<FeatureSize, UnitError> {
        FeatureSize::from_microns(self.feature_nm / 1000.0)
    }

    /// The chip area as a typed quantity.
    #[must_use]
    pub fn chip_area(&self) -> Area {
        Area::from_mm2(self.chip_mm2)
    }

    /// The transistor count as a typed quantity.
    #[must_use]
    pub fn transistors(&self) -> TransistorCount {
        TransistorCount::from_millions(self.transistors_millions)
    }

    /// The transistor density `T_d = N_tr / A_ch` this generation implies.
    #[must_use]
    pub fn transistor_density(&self) -> TransistorDensity {
        TransistorDensity::from_chip(self.transistors(), self.chip_area())
    }

    /// The decompression index `s_d` implied by this generation's density
    /// and feature size — the paper's Figure-2 computation
    /// (`s_d = 1/(T_d·λ²)`, eq. 2).
    #[must_use]
    pub fn implied_sd(&self) -> DecompressionIndex {
        let sd = self
            .transistor_density()
            .decompression_index(self.feature_size().expect("dataset is validated")); // nanocost-audit: allow(R1, reason = "documented invariant: dataset is validated")
        provenance!(
            equation: Eq2,
            function: "nanocost_roadmap::entry::RoadmapEntry::implied_sd",
            inputs: [
                lambda_nm = self.feature_nm,
                n_tr = self.transistors().count(),
                a_ch_cm2 = self.chip_area().cm2(),
            ],
            outputs: [sd = sd.squares()],
        );
        sd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> RoadmapEntry {
        RoadmapEntry {
            year: 1999,
            feature_nm: 180.0,
            transistors_millions: 21.0,
            chip_mm2: 170.0,
            wafer_mm: 200.0,
        }
    }

    #[test]
    fn typed_accessors() {
        let e = entry();
        assert!((e.feature_size().unwrap().microns() - 0.18).abs() < 1e-12);
        assert!((e.chip_area().cm2() - 1.7).abs() < 1e-12);
        assert!((e.transistors().millions() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn implied_sd_matches_hand_computation() {
        // 1.7 cm² / (21e6 · (0.18e-4 cm)²) ≈ 249.9
        let sd = entry().implied_sd().squares();
        assert!((sd - 249.9).abs() < 0.5, "{sd}");
    }

    #[test]
    fn density_is_transistors_over_area() {
        let e = entry();
        let d = e.transistor_density().per_cm2();
        assert!((d - 21.0e6 / 1.7).abs() < 1.0);
    }
}
