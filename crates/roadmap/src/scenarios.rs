//! Pessimistic variants of the constant-cost analysis.
//!
//! The paper stresses that Figure 3 already uses "a very optimistic
//! scenario, i.e. assuming no increase in `C_sq` and no decrease in yield".
//! This module parameterizes those two relaxations so the cost
//! contradiction can be quantified under realistic erosion.

use nanocost_units::{CostPerArea, UnitError, Yield};

use crate::constant_cost::{figure3, ConstantCostAssumptions, Figure3Point};
use crate::entry::RoadmapEntry;

/// A scenario: per-generation growth of `C_sq` and erosion of yield
/// relative to the paper's optimistic anchors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Short name for reports.
    pub name: &'static str,
    /// Multiplicative growth of `C_sq` per roadmap generation (1.0 = the
    /// paper's optimistic flat assumption).
    pub csq_growth_per_generation: f64,
    /// Multiplicative yield factor per generation (1.0 = flat).
    pub yield_factor_per_generation: f64,
}

impl Scenario {
    /// The paper's optimistic baseline: flat `C_sq`, flat yield.
    pub const OPTIMISTIC: Scenario = Scenario {
        name: "optimistic",
        csq_growth_per_generation: 1.0,
        yield_factor_per_generation: 1.0,
    };

    /// A moderate scenario: `C_sq` +10 % and yield −3 % per generation.
    pub const MODERATE: Scenario = Scenario {
        name: "moderate",
        csq_growth_per_generation: 1.10,
        yield_factor_per_generation: 0.97,
    };

    /// A pessimistic scenario: `C_sq` +25 % and yield −7 % per generation.
    pub const PESSIMISTIC: Scenario = Scenario {
        name: "pessimistic",
        csq_growth_per_generation: 1.25,
        yield_factor_per_generation: 0.93,
    };

    /// Evaluates the Figure-3 ratio under this scenario: generation `k`
    /// uses `C_sq · g^k` and `Y · f^k`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the eroded yield degenerates to zero (only
    /// possible for absurd factors over long horizons).
    pub fn figure3(
        &self,
        roadmap: &[RoadmapEntry],
        base: &ConstantCostAssumptions,
    ) -> Result<Vec<Figure3Point>, UnitError> {
        let mut out = Vec::with_capacity(roadmap.len());
        for (k, entry) in roadmap.iter().enumerate() {
            let csq = base.cost_per_cm2.dollars_per_cm2()
                * self.csq_growth_per_generation.powi(k as i32);
            let y = base.fab_yield.value() * self.yield_factor_per_generation.powi(k as i32);
            let assumptions = ConstantCostAssumptions {
                die_cost: base.die_cost,
                cost_per_cm2: CostPerArea::try_per_cm2(csq)?,
                fab_yield: Yield::new(y)?,
            };
            let pts = figure3(std::slice::from_ref(entry), &assumptions)?;
            out.extend(pts);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itrs1999::itrs_1999;

    #[test]
    fn optimistic_scenario_matches_baseline_figure3() {
        let roadmap = itrs_1999();
        let base = ConstantCostAssumptions::paper_1999();
        let a = Scenario::OPTIMISTIC.figure3(&roadmap, &base).unwrap();
        let b = figure3(&roadmap, &base).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x.ratio - y.ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn pessimism_worsens_the_contradiction() {
        let roadmap = itrs_1999();
        let base = ConstantCostAssumptions::paper_1999();
        let opt = Scenario::OPTIMISTIC.figure3(&roadmap, &base).unwrap();
        let mid = Scenario::MODERATE.figure3(&roadmap, &base).unwrap();
        let bad = Scenario::PESSIMISTIC.figure3(&roadmap, &base).unwrap();
        // At the horizon the ratio ordering is optimistic < moderate <
        // pessimistic, and the gap is material.
        let last = roadmap.len() - 1;
        assert!(mid[last].ratio > opt[last].ratio * 1.3);
        assert!(bad[last].ratio > mid[last].ratio * 1.3);
        // First generation is identical (no erosion applied yet).
        assert!((bad[0].ratio - opt[0].ratio).abs() < 1e-12);
    }

    #[test]
    fn scenario_names_are_distinct() {
        let names = [
            Scenario::OPTIMISTIC.name,
            Scenario::MODERATE.name,
            Scenario::PESSIMISTIC.name,
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
