//! The embedded ITRS-1999 cost-performance-MPU roadmap.
//!
//! Headline values from the 1999 International Technology Roadmap for
//! Semiconductors overall-roadmap technology characteristics (the paper's
//! ref. [2]): feature size, transistors per cost-performance MPU, chip size
//! at production, and wafer diameter, for the 1999–2014 horizon the paper
//! analyzes.

use crate::entry::RoadmapEntry;

/// The paper's Figure-3 economic anchors, stated in §2.2.3: maximum
/// acceptable cost-performance MPU die cost, manufacturing cost per cm²,
/// and yield.
pub mod anchors {
    /// Maximum acceptable die cost `C_ch`, dollars.
    pub const DIE_COST_DOLLARS: f64 = 34.0;
    /// Manufacturing cost per cm² `C_sq`, dollars.
    pub const COST_PER_CM2: f64 = 8.0;
    /// Assumed manufacturing yield `Y`.
    pub const YIELD: f64 = 0.8;
}

/// Returns the ITRS-1999 roadmap for cost-performance MPUs, 1999–2014.
#[must_use]
pub fn itrs_1999() -> Vec<RoadmapEntry> {
    let mk = |year, feature_nm, transistors_millions, chip_mm2, wafer_mm| RoadmapEntry {
        year,
        feature_nm,
        transistors_millions,
        chip_mm2,
        wafer_mm,
    };
    vec![
        mk(1999, 180.0, 21.0, 170.0, 200.0),
        mk(2001, 150.0, 40.0, 170.0, 300.0),
        mk(2002, 130.0, 76.0, 170.0, 300.0),
        mk(2005, 100.0, 200.0, 235.0, 300.0),
        mk(2008, 70.0, 520.0, 269.0, 300.0),
        mk(2011, 50.0, 1400.0, 308.0, 300.0),
        mk(2014, 35.0, 3600.0, 354.0, 450.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roadmap_is_chronological_and_shrinking() {
        let r = itrs_1999();
        assert_eq!(r.len(), 7);
        for w in r.windows(2) {
            assert!(w[1].year > w[0].year);
            assert!(w[1].feature_nm < w[0].feature_nm);
            assert!(w[1].transistors_millions > w[0].transistors_millions);
        }
    }

    #[test]
    fn transistor_growth_is_moores_law_paced() {
        // ~2x every two years across the horizon: 21M → 3600M over 15
        // years is a doubling time of about two years.
        let r = itrs_1999();
        let first = &r[0];
        let last = &r[r.len() - 1];
        let years = (last.year - first.year) as f64;
        let doublings = (last.transistors_millions / first.transistors_millions).log2();
        let doubling_time = years / doublings;
        assert!(
            (1.5..3.0).contains(&doubling_time),
            "doubling time {doubling_time}"
        );
    }

    #[test]
    fn implied_sd_declines_toward_nanometer_nodes() {
        // The paper's Figure 2: the ITRS's own numbers demand *better*
        // (smaller) s_d in the nanometer era, opposite to the industrial
        // trend of Figure 1.
        let r = itrs_1999();
        let first = r[0].implied_sd().squares();
        let last = r[r.len() - 1].implied_sd().squares();
        assert!(first > 200.0, "1999 implied s_d {first}");
        assert!(last < 120.0, "2014 implied s_d {last}");
        assert!(first / last > 2.0);
    }

    #[test]
    fn every_entry_is_valid() {
        for e in itrs_1999() {
            assert!(e.feature_size().is_ok());
            assert!(e.chip_mm2 > 50.0 && e.chip_mm2 < 1000.0);
            assert!(e.wafer_mm >= 200.0);
        }
    }

    #[test]
    fn anchors_match_the_paper() {
        assert_eq!(anchors::DIE_COST_DOLLARS, 34.0);
        assert_eq!(anchors::COST_PER_CM2, 8.0);
        assert_eq!(anchors::YIELD, 0.8);
    }
}
