//! Fab economics for the `nanocost` workspace: everything that turns
//! silicon processing into dollars.
//!
//! The Maly cost model needs, beyond the headline `C_sq` constant, a set of
//! manufacturing substrates (paper §2.5 lists the simplifications this
//! crate un-simplifies):
//!
//! * [`WaferSpec`] — wafer geometry, usable area, and the exact gross
//!   dice-per-wafer count `N_ch` of eq. 1;
//! * [`FablineModel`] — "Moore's second law" capital cost of a fabline and
//!   its per-wafer depreciation — the *billions of dollars* of the paper's
//!   title;
//! * [`WaferCostModel`] — processed-wafer cost `C_w(diameter, λ, volume,
//!   maturity)` in the spirit of the paper's ref. \[30\], and the `Cm_sq`
//!   per-cm² density it implies;
//! * [`MaskCostModel`] — the mask-set cost `C_MA` of eq. 5;
//! * [`ProximityModel`] — the growing lithography interaction neighborhood
//!   that drives prediction error in §3.2;
//! * [`TestCostModel`] — the cost-of-test extension the paper invites;
//! * [`ProcessNode`]/[`standard_nodes`] — the node ladder tying it together.
//!
//! # Example
//!
//! ```
//! use nanocost_units::{Area, FeatureSize, WaferCount};
//! use nanocost_fab::{WaferCostModel, WaferSpec};
//!
//! let wafer = WaferSpec::standard_200mm();
//! let cost = WaferCostModel::default();
//! let node = FeatureSize::from_microns(0.25)?;
//! let volume = WaferCount::new(50_000)?;
//!
//! let per_wafer = cost.cost_per_wafer(wafer, node, volume);
//! let dice = wafer.gross_dice(Area::from_cm2(1.0));
//! let per_die = per_wafer / dice.as_f64();
//! assert!(per_die.amount() > 1.0 && per_die.amount() < 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fabline;
mod litho;
mod mask;
mod process;
mod test_cost;
mod wafer;
mod wafer_cost;

pub use fabline::FablineModel;
pub use litho::ProximityModel;
pub use mask::MaskCostModel;
pub use process::{nearest_node, standard_nodes, ProcessNode};
pub use test_cost::TestCostModel;
pub use wafer::{DieSite, WaferSpec};
pub use wafer_cost::{WaferCostBreakdown, WaferCostModel};

#[cfg(test)]
mod proptests {
    //! Randomized property checks driven by the in-tree [`Rng64`] stream so
    //! the suite runs fully offline (the external `proptest` crate is gone).

    use super::*;
    use nanocost_numeric::Rng64;
    use nanocost_units::{Area, FeatureSize, WaferCount};

    const CASES: usize = 256;

    #[test]
    fn gross_dice_monotone_in_die_area() {
        let mut r = Rng64::seed_from_u64(0x11);
        for _ in 0..CASES {
            let a = r.random_range(0.1f64..5.0);
            let extra = r.random_range(0.05f64..5.0);
            let w = WaferSpec::standard_200mm();
            let small = w.gross_dice(Area::from_cm2(a)).count();
            let large = w.gross_dice(Area::from_cm2(a + extra)).count();
            assert!(large <= small);
        }
    }

    #[test]
    fn gross_dice_exact_at_most_usable_area_over_die_area() {
        let mut r = Rng64::seed_from_u64(0x12);
        for _ in 0..CASES {
            let a = r.random_range(0.05f64..10.0);
            let w = WaferSpec::standard_200mm();
            let n = w.gross_dice(Area::from_cm2(a)).as_f64();
            let bound = w.usable_area().cm2() / a;
            assert!(n <= bound + 1e-9, "n={n} bound={bound}");
        }
    }

    #[test]
    fn wafer_cost_monotone_decreasing_in_volume() {
        let mut r = Rng64::seed_from_u64(0x13);
        for _ in 0..CASES {
            let v = r.random_range(100u64..1_000_000);
            let extra = r.random_range(1u64..1_000_000);
            let m = WaferCostModel::default();
            let w = WaferSpec::standard_200mm();
            let l = FeatureSize::from_microns(0.25).unwrap();
            let c1 = m.cost_per_wafer(w, l, WaferCount::new(v).unwrap());
            let c2 = m.cost_per_wafer(w, l, WaferCount::new(v + extra).unwrap());
            assert!(c2.amount() <= c1.amount() + 1e-9);
        }
    }

    #[test]
    fn capex_monotone_in_shrink() {
        let mut r = Rng64::seed_from_u64(0x14);
        for _ in 0..CASES {
            let l1 = r.random_range(0.03f64..1.5);
            let shrink = r.random_range(0.3f64..0.95);
            let fab = FablineModel::default();
            let big = FeatureSize::from_microns(l1).unwrap();
            let small = FeatureSize::from_microns(l1 * shrink).unwrap();
            assert!(fab.capex(small).amount() > fab.capex(big).amount());
        }
    }

    #[test]
    fn mask_set_cost_positive_and_monotone() {
        let mut r = Rng64::seed_from_u64(0x15);
        for _ in 0..CASES {
            let l = r.random_range(0.03f64..1.5);
            let m = MaskCostModel::default();
            let lambda = FeatureSize::from_microns(l).unwrap();
            let next = FeatureSize::from_microns(l * 0.7).unwrap();
            assert!(m.mask_set_cost(lambda).amount() > 0.0);
            assert!(m.mask_set_cost(next).amount() > m.mask_set_cost(lambda).amount());
        }
    }
}
