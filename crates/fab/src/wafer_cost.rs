//! Processed-wafer cost `C_w` and the per-area cost `C_sq` it implies.
//!
//! Following the structure of Maly, Jacobs & Kersch (IEDM-93, the paper's
//! ref. [30]), the cost of a fully manufactured wafer is decomposed into:
//!
//! * a **depreciation** share from the fabline capital (per wafer, grows
//!   steeply as λ shrinks — see [`FablineModel`](crate::FablineModel));
//! * a **processing** share proportional to the mask-layer count (labor,
//!   materials, equipment time per layer);
//! * a **fixed-per-run** share (setup, qualification) amortized over the
//!   production volume `N_w`;
//!
//! modulated by a maturity discount as the line ages.

use nanocost_trace::provenance;
use nanocost_units::{CostPerArea, Dollars, FeatureSize, UnitError, WaferCount};

use crate::fabline::FablineModel;
use crate::process::{nearest_node, ProcessNode};
use crate::wafer::WaferSpec;

/// Itemized wafer-cost components (all per wafer, maturity applied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferCostBreakdown {
    /// Per-layer processing (labor, materials, equipment time).
    pub processing: Dollars,
    /// Fabline capital depreciation share.
    pub depreciation: Dollars,
    /// Fixed setup/qualification cost amortized over the run.
    pub fixed_amortized: Dollars,
    /// The maturity multiplier that was applied.
    pub maturity_factor: f64,
}

impl WaferCostBreakdown {
    /// Total per-wafer cost (must equal
    /// [`WaferCostModel::cost_per_wafer`]).
    #[must_use]
    pub fn total(&self) -> Dollars {
        self.processing + self.depreciation + self.fixed_amortized
    }

    /// Depreciation's share of the total — the "high-cost era" indicator:
    /// it grows toward one as fabline capex explodes at nanometer nodes.
    #[must_use]
    pub fn depreciation_share(&self) -> f64 {
        self.depreciation.amount() / self.total().amount()
    }
}

/// Cost model for a fully processed wafer.
///
/// ```
/// use nanocost_units::{FeatureSize, WaferCount};
/// use nanocost_fab::{WaferCostModel, WaferSpec};
///
/// let model = WaferCostModel::default();
/// let wafer = WaferSpec::standard_200mm();
/// let node = FeatureSize::from_microns(0.25)?;
/// let c_sq = model.cost_per_cm2(wafer, node, WaferCount::new(50_000)?);
/// // The paper's ITRS-era anchor is C_sq ≈ 8 $/cm² for a mature process.
/// assert!(c_sq.dollars_per_cm2() > 4.0 && c_sq.dollars_per_cm2() < 14.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferCostModel {
    fabline: FablineModel,
    /// Processing cost per mask layer for a 200 mm-class wafer.
    cost_per_layer: Dollars,
    /// Fixed engineering/setup cost per production run.
    fixed_per_run: Dollars,
    /// Fractional discount reached at full maturity (e.g. 0.25 = 25 % off).
    maturity_discount: f64,
    /// Volume at which maturity is half-reached, in wafers.
    maturity_volume: f64,
}

impl WaferCostModel {
    /// Creates a wafer cost model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for non-finite or out-of-range parameters
    /// (negative costs, discount outside `[0, 1)`, non-positive maturity
    /// volume).
    pub fn new(
        fabline: FablineModel,
        cost_per_layer: Dollars,
        fixed_per_run: Dollars,
        maturity_discount: f64,
        maturity_volume: f64,
    ) -> Result<Self, UnitError> {
        if cost_per_layer.amount() < 0.0 || fixed_per_run.amount() < 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "wafer cost components",
                value: cost_per_layer.amount().min(fixed_per_run.amount()),
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        if !maturity_discount.is_finite() || !(0.0..1.0).contains(&maturity_discount) {
            return Err(UnitError::OutOfRange {
                quantity: "maturity discount",
                value: maturity_discount,
                min: 0.0,
                max: 1.0,
            });
        }
        if !maturity_volume.is_finite() || maturity_volume <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "maturity volume",
                value: maturity_volume,
            });
        }
        Ok(WaferCostModel {
            fabline,
            cost_per_layer,
            fixed_per_run,
            maturity_discount,
            maturity_volume,
        })
    }

    /// The process node used for layer counts at a given λ (snapped to the
    /// standard ladder).
    #[must_use]
    pub fn node_for(&self, lambda: FeatureSize) -> ProcessNode {
        nearest_node(lambda)
    }

    /// Cost of one fully processed wafer at node `lambda` for a run of
    /// `volume` wafers.
    #[must_use]
    pub fn cost_per_wafer(
        &self,
        wafer: WaferSpec,
        lambda: FeatureSize,
        volume: WaferCount,
    ) -> Dollars {
        let node = self.node_for(lambda);
        // Processing scales with layer count and with wafer area relative to
        // a 200 mm reference (bigger wafers cost more to process, slightly
        // sublinearly: exponent 0.9 captures the economy of larger wafers).
        let area_factor = (wafer.total_area().cm2() / 314.16).powf(0.9);
        let processing = self.cost_per_layer * node.mask_layers as f64 * area_factor;
        let depreciation = self.fabline.depreciation_per_wafer(lambda);
        let fixed = self.fixed_per_run / volume.as_f64();
        let maturity = 1.0
            - self.maturity_discount * (volume.as_f64() / (volume.as_f64() + self.maturity_volume));
        (processing + depreciation) * maturity + fixed
    }

    /// Itemized decomposition of [`WaferCostModel::cost_per_wafer`] —
    /// where each wafer dollar goes, for cost-of-ownership reporting.
    #[must_use]
    pub fn breakdown(
        &self,
        wafer: WaferSpec,
        lambda: FeatureSize,
        volume: WaferCount,
    ) -> WaferCostBreakdown {
        let node = self.node_for(lambda);
        let area_factor = (wafer.total_area().cm2() / 314.16).powf(0.9);
        let processing = self.cost_per_layer * node.mask_layers as f64 * area_factor;
        let depreciation = self.fabline.depreciation_per_wafer(lambda);
        let fixed = self.fixed_per_run / volume.as_f64();
        let maturity = 1.0
            - self.maturity_discount * (volume.as_f64() / (volume.as_f64() + self.maturity_volume));
        WaferCostBreakdown {
            processing: processing * maturity,
            depreciation: depreciation * maturity,
            fixed_amortized: fixed,
            maturity_factor: maturity,
        }
    }

    /// The manufacturing cost per square centimeter `Cm_sq` implied by
    /// [`WaferCostModel::cost_per_wafer`] (eq. 3's `C_sq = C_w / A_w`).
    #[must_use]
    pub fn cost_per_cm2(
        &self,
        wafer: WaferSpec,
        lambda: FeatureSize,
        volume: WaferCount,
    ) -> CostPerArea {
        let cw = self.cost_per_wafer(wafer, lambda, volume);
        let c_sq = CostPerArea::per_cm2(cw.amount() / wafer.total_area().cm2());
        provenance!(
            equation: Eq3,
            function: "nanocost_fab::wafer_cost::WaferCostModel::cost_per_cm2",
            inputs: [
                c_w = cw.amount(),
                a_w_cm2 = wafer.total_area().cm2(),
                lambda_um = lambda.microns(),
                n_w = volume.as_f64(),
            ],
            outputs: [c_sq = c_sq.dollars_per_cm2()],
        );
        c_sq
    }
}

impl Default for WaferCostModel {
    /// Calibrated so a mature, high-volume 0.25 µm 200 mm wafer lands near
    /// the paper's `C_sq = 8 $/cm²` anchor: $60/layer processing,
    /// $2 M fixed per run, 25 % maturity discount with 30 k-wafer half
    /// point, on the default [`FablineModel`].
    fn default() -> Self {
        WaferCostModel::new(
            FablineModel::default(),
            Dollars::new(60.0),
            Dollars::from_millions(2.0),
            0.25,
            30_000.0,
        )
        .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(x: f64) -> FeatureSize {
        FeatureSize::from_microns(x).unwrap()
    }

    fn wafers(n: u64) -> WaferCount {
        WaferCount::new(n).unwrap()
    }

    #[test]
    fn paper_anchor_eight_dollars_per_cm2() {
        let m = WaferCostModel::default();
        let c = m.cost_per_cm2(WaferSpec::standard_200mm(), um(0.25), wafers(100_000));
        assert!(
            (c.dollars_per_cm2() - 8.0).abs() < 2.0,
            "expected ≈8 $/cm², got {c}"
        );
    }

    #[test]
    fn cost_per_wafer_falls_with_volume() {
        let m = WaferCostModel::default();
        let w = WaferSpec::standard_200mm();
        let small = m.cost_per_wafer(w, um(0.25), wafers(1_000));
        let large = m.cost_per_wafer(w, um(0.25), wafers(100_000));
        assert!(small.amount() > large.amount());
    }

    #[test]
    fn cost_grows_as_lambda_shrinks() {
        let m = WaferCostModel::default();
        let w = WaferSpec::standard_200mm();
        let v = wafers(50_000);
        let old = m.cost_per_wafer(w, um(0.35), v);
        let new = m.cost_per_wafer(w, um(0.13), v);
        assert!(new.amount() > 1.5 * old.amount(), "old {old}, new {new}");
    }

    #[test]
    fn larger_wafer_costs_more_per_wafer_but_less_per_cm2() {
        let m = WaferCostModel::default();
        let v = wafers(50_000);
        let c200 = m.cost_per_wafer(WaferSpec::standard_200mm(), um(0.18), v);
        let c300 = m.cost_per_wafer(WaferSpec::standard_300mm(), um(0.18), v);
        assert!(c300.amount() > c200.amount());
        let s200 = m.cost_per_cm2(WaferSpec::standard_200mm(), um(0.18), v);
        let s300 = m.cost_per_cm2(WaferSpec::standard_300mm(), um(0.18), v);
        assert!(s300.dollars_per_cm2() < s200.dollars_per_cm2());
    }

    #[test]
    fn fixed_cost_vanishes_at_high_volume() {
        let m = WaferCostModel::default();
        let w = WaferSpec::standard_200mm();
        let c1 = m.cost_per_wafer(w, um(0.25), wafers(10_000_000));
        let c2 = m.cost_per_wafer(w, um(0.25), wafers(20_000_000));
        assert!((c1.amount() - c2.amount()).abs() / c1.amount() < 0.01);
    }

    #[test]
    fn breakdown_sums_to_the_headline_cost() {
        let m = WaferCostModel::default();
        let w = WaferSpec::standard_200mm();
        for &(l, v) in &[(0.25, 5_000u64), (0.1, 80_000), (0.05, 200_000)] {
            let lambda = um(l);
            let vol = wafers(v);
            let b = m.breakdown(w, lambda, vol);
            let headline = m.cost_per_wafer(w, lambda, vol);
            assert!(
                (b.total().amount() - headline.amount()).abs() < 1e-6,
                "λ={l}: {} vs {}",
                b.total(),
                headline
            );
        }
    }

    #[test]
    fn depreciation_dominates_nanometer_wafer_cost() {
        // The title's claim, itemized: the capital share grows toward the
        // nanometer era.
        let m = WaferCostModel::default();
        let w = WaferSpec::standard_200mm();
        let v = wafers(100_000);
        let at_035 = m.breakdown(w, um(0.35), v).depreciation_share();
        let at_005 = m.breakdown(w, um(0.05), v).depreciation_share();
        assert!(at_005 > at_035);
        assert!(at_005 > 0.8, "50nm depreciation share {at_005}");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let fab = FablineModel::default();
        assert!(WaferCostModel::new(fab, Dollars::new(-1.0), Dollars::ZERO, 0.2, 1e4).is_err());
        assert!(WaferCostModel::new(fab, Dollars::new(60.0), Dollars::ZERO, 1.0, 1e4).is_err());
        assert!(WaferCostModel::new(fab, Dollars::new(60.0), Dollars::ZERO, 0.2, 0.0).is_err());
    }
}
