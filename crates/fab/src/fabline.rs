//! Fabline capital economics: the "billions of dollars" of the paper's
//! title, turned into a per-wafer depreciation charge.
//!
//! The empirical regularity (often called Moore's second law, or Rock's
//! law) is that fab capital cost roughly doubles per process generation
//! (a 0.7× linear shrink). This module models capex as a power law in λ and
//! amortizes it over the line's wafer output.

use nanocost_units::{Dollars, FeatureSize, UnitError};

/// Capital cost model for a wafer fabrication line.
///
/// ```text
/// capex(λ) = reference_capex · (λ_ref / λ)^exponent
/// ```
///
/// with `exponent = ln 2 / ln(1/0.7) ≈ 1.94` reproducing capex doubling per
/// 0.7× generation.
///
/// ```
/// use nanocost_units::{Dollars, FeatureSize};
/// use nanocost_fab::FablineModel;
///
/// let fab = FablineModel::default();
/// let at_250 = fab.capex(FeatureSize::from_microns(0.25)?);
/// let at_175 = fab.capex(FeatureSize::from_microns(0.175)?);
/// // One 0.7x generation later: about twice the capital.
/// assert!((at_175.amount() / at_250.amount() - 2.0).abs() < 0.05);
/// # Ok::<(), nanocost_units::UnitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FablineModel {
    reference_capex: Dollars,
    reference_lambda_um: f64,
    exponent: f64,
    /// Straight-line depreciation horizon in years.
    depreciation_years: f64,
    /// Capacity in wafer starts per month at full utilization.
    wafer_starts_per_month: f64,
    /// Long-run line utilization in `(0, 1]`.
    utilization: f64,
}

impl FablineModel {
    /// Creates a fabline model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if any parameter is non-finite or out of its
    /// physical range (positive capex, exponent, years, capacity;
    /// utilization in `(0, 1]`).
    pub fn new(
        reference_capex: Dollars,
        reference_lambda: FeatureSize,
        exponent: f64,
        depreciation_years: f64,
        wafer_starts_per_month: f64,
        utilization: f64,
    ) -> Result<Self, UnitError> {
        for (name, v) in [
            ("capex exponent", exponent),
            ("depreciation years", depreciation_years),
            ("wafer starts per month", wafer_starts_per_month),
        ] {
            if !v.is_finite() {
                return Err(UnitError::NonFinite { quantity: name });
            }
            if v <= 0.0 {
                return Err(UnitError::NotPositive { quantity: name, value: v });
            }
        }
        if reference_capex.amount() <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "reference capex",
                value: reference_capex.amount(),
            });
        }
        if !utilization.is_finite() || utilization <= 0.0 || utilization > 1.0 {
            return Err(UnitError::OutOfRange {
                quantity: "fab utilization",
                value: utilization,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(FablineModel {
            reference_capex,
            reference_lambda_um: reference_lambda.microns(),
            exponent,
            depreciation_years,
            wafer_starts_per_month,
            utilization,
        })
    }

    /// The doubling-per-generation exponent `ln 2 / ln(1/0.7)`.
    #[must_use]
    pub fn moores_second_law_exponent() -> f64 {
        2f64.ln() / (1.0 / 0.7f64).ln()
    }

    /// Capital cost of a line for node `lambda`.
    #[must_use]
    pub fn capex(&self, lambda: FeatureSize) -> Dollars {
        let ratio = self.reference_lambda_um / lambda.microns();
        self.reference_capex * ratio.powf(self.exponent)
    }

    /// Wafers produced over the depreciation horizon.
    #[must_use]
    pub fn lifetime_wafers(&self) -> f64 {
        self.depreciation_years * 12.0 * self.wafer_starts_per_month * self.utilization
    }

    /// Depreciation charge per processed wafer at node `lambda`.
    #[must_use]
    pub fn depreciation_per_wafer(&self, lambda: FeatureSize) -> Dollars {
        self.capex(lambda) / self.lifetime_wafers()
    }
}

impl Default for FablineModel {
    /// A late-1990s reference: $1.5 B line at 0.25 µm, capex doubling per
    /// generation, 5-year depreciation, 25 000 wafer starts/month, 85 %
    /// utilization.
    fn default() -> Self {
        FablineModel::new(
            Dollars::from_billions(1.5),
            FeatureSize::from_microns(0.25).expect("constant is valid"), // nanocost-audit: allow(R1, reason = "documented invariant: constant is valid")
            FablineModel::moores_second_law_exponent(),
            5.0,
            25_000.0,
            0.85,
        )
        .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(x: f64) -> FeatureSize {
        FeatureSize::from_microns(x).unwrap()
    }

    #[test]
    fn capex_at_reference_node_is_reference() {
        let fab = FablineModel::default();
        assert!((fab.capex(um(0.25)).amount() - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn capex_reaches_many_billions_at_nanometer_nodes() {
        // The paper's premise: nanometer fablines cost "billions of dollars".
        let fab = FablineModel::default();
        let at_50nm = fab.capex(um(0.05));
        assert!(
            at_50nm.amount() > 30.0e9,
            "50nm line should cost tens of billions, got {at_50nm}"
        );
    }

    #[test]
    fn capex_doubles_per_generation() {
        let fab = FablineModel::default();
        let mut lambda = 0.5;
        let mut prev = fab.capex(um(lambda)).amount();
        for _ in 0..4 {
            lambda *= 0.7;
            let now = fab.capex(um(lambda)).amount();
            assert!((now / prev - 2.0).abs() < 1e-9);
            prev = now;
        }
    }

    #[test]
    fn depreciation_per_wafer_is_plausible() {
        let fab = FablineModel::default();
        // $1.5B over 5y·12·25000·0.85 ≈ 1.275M wafers ≈ $1176/wafer.
        let d = fab.depreciation_per_wafer(um(0.25));
        assert!(d.amount() > 1_000.0 && d.amount() < 1_400.0, "{d}");
    }

    #[test]
    fn lifetime_wafers_counts_utilization() {
        let full = FablineModel::new(
            Dollars::from_billions(1.0),
            um(0.25),
            1.9,
            5.0,
            10_000.0,
            1.0,
        )
        .unwrap();
        let half = FablineModel::new(
            Dollars::from_billions(1.0),
            um(0.25),
            1.9,
            5.0,
            10_000.0,
            0.5,
        )
        .unwrap();
        assert!((full.lifetime_wafers() / half.lifetime_wafers() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let l = um(0.25);
        let c = Dollars::from_billions(1.0);
        assert!(FablineModel::new(Dollars::ZERO, l, 1.9, 5.0, 1e4, 0.9).is_err());
        assert!(FablineModel::new(c, l, 0.0, 5.0, 1e4, 0.9).is_err());
        assert!(FablineModel::new(c, l, 1.9, -1.0, 1e4, 0.9).is_err());
        assert!(FablineModel::new(c, l, 1.9, 5.0, 0.0, 0.9).is_err());
        assert!(FablineModel::new(c, l, 1.9, 5.0, 1e4, 0.0).is_err());
        assert!(FablineModel::new(c, l, 1.9, 5.0, 1e4, 1.5).is_err());
    }
}
