//! Wafer geometry: usable area and gross dice per wafer (`N_ch` of eq. 1).

use nanocost_units::{Area, ChipCount, UnitError};

/// One placed die on a wafer map: lower-left corner and side, in
/// wafer-centered millimeter coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSite {
    /// Lower-left x, mm from wafer center.
    pub x_mm: f64,
    /// Lower-left y, mm from wafer center.
    pub y_mm: f64,
    /// Die side (without scribe), mm.
    pub side_mm: f64,
}

impl DieSite {
    /// True if the point `(x, y)` (mm, wafer-centered) lands on this die.
    #[must_use]
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x_mm
            && x < self.x_mm + self.side_mm
            && y >= self.y_mm
            && y < self.y_mm + self.side_mm
    }
}

/// Physical wafer description.
///
/// ```
/// use nanocost_units::Area;
/// use nanocost_fab::WaferSpec;
///
/// let wafer = WaferSpec::new(200.0, 3.0, 0.1)?;
/// let dice = wafer.gross_dice(Area::from_cm2(1.0));
/// assert!(dice.count() > 200 && dice.count() < 300);
/// # Ok::<(), nanocost_units::UnitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferSpec {
    diameter_mm: f64,
    edge_exclusion_mm: f64,
    scribe_mm: f64,
}

impl WaferSpec {
    /// Creates a wafer spec.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the diameter is not strictly positive, the
    /// edge exclusion or scribe width is negative, or the edge exclusion
    /// consumes the whole wafer.
    pub fn new(
        diameter_mm: f64,
        edge_exclusion_mm: f64,
        scribe_mm: f64,
    ) -> Result<Self, UnitError> {
        for (name, v) in [
            ("wafer diameter", diameter_mm),
            ("edge exclusion", edge_exclusion_mm),
            ("scribe width", scribe_mm),
        ] {
            if !v.is_finite() {
                return Err(UnitError::NonFinite { quantity: name });
            }
        }
        if diameter_mm <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "wafer diameter",
                value: diameter_mm,
            });
        }
        if edge_exclusion_mm < 0.0 || scribe_mm < 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "edge exclusion / scribe width",
                value: edge_exclusion_mm.min(scribe_mm),
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        if 2.0 * edge_exclusion_mm >= diameter_mm {
            return Err(UnitError::OutOfRange {
                quantity: "edge exclusion",
                value: edge_exclusion_mm,
                min: 0.0,
                max: diameter_mm / 2.0,
            });
        }
        Ok(WaferSpec {
            diameter_mm,
            edge_exclusion_mm,
            scribe_mm,
        })
    }

    /// A standard 200 mm production wafer (3 mm edge exclusion, 0.1 mm
    /// scribe lanes) — the workhorse of the paper's era.
    #[must_use]
    pub fn standard_200mm() -> Self {
        WaferSpec::new(200.0, 3.0, 0.1).expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }

    /// A standard 300 mm wafer as projected for nanometer nodes.
    #[must_use]
    pub fn standard_300mm() -> Self {
        WaferSpec::new(300.0, 3.0, 0.1).expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }

    /// Wafer diameter in millimeters.
    #[must_use]
    pub fn diameter_mm(self) -> f64 {
        self.diameter_mm
    }

    /// The radius available for whole dice, in millimeters.
    #[must_use]
    pub fn usable_radius_mm(self) -> f64 {
        self.diameter_mm / 2.0 - self.edge_exclusion_mm
    }

    /// Total wafer area `A_w` (full circle — the unit over which `C_sq` is
    /// accounted).
    #[must_use]
    pub fn total_area(self) -> Area {
        let r_cm = self.diameter_mm / 20.0;
        Area::from_cm2(std::f64::consts::PI * r_cm * r_cm)
    }

    /// Area of the usable (edge-excluded) disc.
    #[must_use]
    pub fn usable_area(self) -> Area {
        let r_cm = self.usable_radius_mm() / 10.0;
        Area::from_cm2(std::f64::consts::PI * r_cm * r_cm)
    }

    /// Exact gross dice per wafer for a square die of the given area,
    /// counted by grid placement: a die is kept when all four corners of
    /// its scribe-padded rectangle lie within the usable radius.
    ///
    /// Returns [`ChipCount::ZERO`] when the die (plus scribe) is larger
    /// than the usable disc.
    #[must_use]
    pub fn gross_dice(self, die_area: Area) -> ChipCount {
        ChipCount::new(self.die_sites(die_area).len() as u64)
    }

    /// The lower-left corners (millimeters, wafer-centered coordinates) of
    /// every whole die that fits the usable disc, for a square die of the
    /// given area with scribe-lane padding. The wafer-map Monte-Carlo
    /// yield simulator consumes these sites.
    #[must_use]
    pub fn die_sites(self, die_area: Area) -> Vec<DieSite> {
        if die_area.is_zero() {
            return Vec::new();
        }
        let pitch_mm = die_area.cm2().sqrt() * 10.0 + self.scribe_mm;
        let side_mm = die_area.cm2().sqrt() * 10.0;
        let r = self.usable_radius_mm();
        if pitch_mm > 2.0 * r {
            return Vec::new();
        }
        let cells_per_side = (2.0 * r / pitch_mm).ceil() as i64 + 2;
        let half = cells_per_side / 2;
        let mut sites = Vec::new();
        for i in -half..=half {
            for j in -half..=half {
                let x0 = i as f64 * pitch_mm;
                let y0 = j as f64 * pitch_mm;
                let x1 = x0 + pitch_mm;
                let y1 = y0 + pitch_mm;
                // Farthest corner from the origin decides containment.
                let fx = x0.abs().max(x1.abs());
                let fy = y0.abs().max(y1.abs());
                if fx * fx + fy * fy <= r * r {
                    sites.push(DieSite {
                        x_mm: x0,
                        y_mm: y0,
                        side_mm,
                    });
                }
            }
        }
        sites
    }

    /// The classical analytic approximation of dice per wafer:
    /// `π·(d/2)²/S − π·d/√(2·S)` with `d` the usable diameter and `S` the
    /// scribe-padded die area. Good to a few percent for dice much smaller
    /// than the wafer; [`WaferSpec::gross_dice`] is the exact count.
    #[must_use]
    pub fn gross_dice_analytic(self, die_area: Area) -> f64 {
        if die_area.is_zero() {
            return 0.0;
        }
        let side_cm = die_area.cm2().sqrt() + self.scribe_mm / 10.0;
        let s = side_cm * side_cm;
        let d = 2.0 * self.usable_radius_mm() / 10.0;
        let n = std::f64::consts::PI * d * d / (4.0 * s)
            - std::f64::consts::PI * d / (2.0 * s).sqrt();
        n.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_area_of_200mm_wafer() {
        let w = WaferSpec::standard_200mm();
        // π·10² ≈ 314.16 cm²
        assert!((w.total_area().cm2() - 314.159).abs() < 0.01);
    }

    #[test]
    fn usable_area_smaller_than_total() {
        let w = WaferSpec::standard_200mm();
        assert!(w.usable_area().cm2() < w.total_area().cm2());
    }

    #[test]
    fn gross_dice_close_to_analytic_for_small_dice() {
        let w = WaferSpec::standard_200mm();
        for &cm2 in &[0.25, 0.5, 1.0, 2.0] {
            let exact = w.gross_dice(Area::from_cm2(cm2)).as_f64();
            let approx = w.gross_dice_analytic(Area::from_cm2(cm2));
            let rel = (exact - approx).abs() / approx;
            assert!(rel < 0.12, "die {cm2} cm²: exact {exact} vs approx {approx}");
        }
    }

    #[test]
    fn bigger_dice_mean_fewer_chips() {
        let w = WaferSpec::standard_200mm();
        let small = w.gross_dice(Area::from_cm2(0.5)).count();
        let large = w.gross_dice(Area::from_cm2(2.0)).count();
        assert!(small > large * 3);
    }

    #[test]
    fn larger_wafer_holds_more_dice() {
        let die = Area::from_cm2(1.0);
        let n200 = WaferSpec::standard_200mm().gross_dice(die).count();
        let n300 = WaferSpec::standard_300mm().gross_dice(die).count();
        // Area ratio 2.25, edge effects help the bigger wafer even more.
        assert!(n300 as f64 / n200 as f64 > 2.0);
    }

    #[test]
    fn oversized_die_yields_zero() {
        let w = WaferSpec::standard_200mm();
        assert!(w.gross_dice(Area::from_cm2(500.0)).is_zero());
        assert_eq!(w.gross_dice_analytic(Area::from_cm2(50000.0)), 0.0);
    }

    #[test]
    fn zero_area_die_yields_zero_not_infinite() {
        let w = WaferSpec::standard_200mm();
        assert!(w.gross_dice(Area::ZERO).is_zero());
        assert_eq!(w.gross_dice_analytic(Area::ZERO), 0.0);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(WaferSpec::new(0.0, 3.0, 0.1).is_err());
        assert!(WaferSpec::new(200.0, -1.0, 0.1).is_err());
        assert!(WaferSpec::new(200.0, 3.0, -0.1).is_err());
        assert!(WaferSpec::new(200.0, 100.0, 0.1).is_err());
        assert!(WaferSpec::new(f64::NAN, 3.0, 0.1).is_err());
    }

    #[test]
    fn die_sites_count_matches_gross_dice() {
        let w = WaferSpec::standard_200mm();
        let a = Area::from_cm2(1.0);
        assert_eq!(w.die_sites(a).len() as u64, w.gross_dice(a).count());
    }

    #[test]
    fn die_sites_lie_within_usable_radius() {
        let w = WaferSpec::standard_200mm();
        let r = w.usable_radius_mm();
        for site in w.die_sites(Area::from_cm2(1.0)) {
            for (cx, cy) in [
                (site.x_mm, site.y_mm),
                (site.x_mm + site.side_mm, site.y_mm + site.side_mm),
            ] {
                assert!(cx * cx + cy * cy <= r * r + 1e-6);
            }
        }
    }

    #[test]
    fn die_site_containment_is_half_open() {
        let site = DieSite {
            x_mm: 0.0,
            y_mm: 0.0,
            side_mm: 10.0,
        };
        assert!(site.contains(0.0, 0.0));
        assert!(site.contains(9.99, 5.0));
        assert!(!site.contains(10.0, 5.0));
        assert!(!site.contains(-0.01, 5.0));
    }

    #[test]
    fn scribe_width_reduces_count() {
        let tight = WaferSpec::new(200.0, 3.0, 0.0).unwrap();
        let wide = WaferSpec::new(200.0, 3.0, 1.0).unwrap();
        let die = Area::from_cm2(0.5);
        assert!(tight.gross_dice(die).count() > wide.gross_dice(die).count());
    }
}
