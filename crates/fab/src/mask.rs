//! Lithography mask-set cost `C_MA` (eq. 5).
//!
//! Mask cost is the most visible fixed cost of the nanometer era: a set
//! that cost tens of thousands of dollars at micron nodes runs to millions
//! below 100 nm, because write time and inspection grow super-linearly with
//! pattern count and resolution-enhancement features (OPC, phase shift)
//! multiply per-mask effort.

use nanocost_units::{Dollars, FeatureSize, UnitError};

use crate::process::nearest_node;

/// Mask-set cost model: per-mask cost is a power law in inverse λ, and a
/// full set carries one mask per lithography layer of the node.
///
/// ```text
/// cost_per_mask(λ) = reference_cost · (λ_ref / λ)^exponent
/// set_cost(λ)      = cost_per_mask(λ) · mask_layers(λ)
/// ```
///
/// ```
/// use nanocost_units::FeatureSize;
/// use nanocost_fab::MaskCostModel;
///
/// let m = MaskCostModel::default();
/// let set_250 = m.mask_set_cost(FeatureSize::from_microns(0.25)?);
/// let set_100 = m.mask_set_cost(FeatureSize::from_microns(0.10)?);
/// assert!(set_100.amount() > 5.0 * set_250.amount());
/// # Ok::<(), nanocost_units::UnitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskCostModel {
    reference_cost_per_mask: Dollars,
    reference_lambda_um: f64,
    exponent: f64,
}

impl MaskCostModel {
    /// Creates a mask cost model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the reference cost or exponent is not
    /// strictly positive and finite.
    pub fn new(
        reference_cost_per_mask: Dollars,
        reference_lambda: FeatureSize,
        exponent: f64,
    ) -> Result<Self, UnitError> {
        if reference_cost_per_mask.amount() <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "reference mask cost",
                value: reference_cost_per_mask.amount(),
            });
        }
        if !exponent.is_finite() {
            return Err(UnitError::NonFinite {
                quantity: "mask cost exponent",
            });
        }
        if exponent <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "mask cost exponent",
                value: exponent,
            });
        }
        Ok(MaskCostModel {
            reference_cost_per_mask,
            reference_lambda_um: reference_lambda.microns(),
            exponent,
        })
    }

    /// Cost of a single mask at node `lambda`.
    #[must_use]
    pub fn cost_per_mask(&self, lambda: FeatureSize) -> Dollars {
        let ratio = self.reference_lambda_um / lambda.microns();
        self.reference_cost_per_mask * ratio.powf(self.exponent)
    }

    /// Cost of a full mask set at node `lambda` (one mask per litho layer
    /// of the nearest standard node).
    #[must_use]
    pub fn mask_set_cost(&self, lambda: FeatureSize) -> Dollars {
        let node = nearest_node(lambda);
        let c_ma = self.cost_per_mask(lambda) * node.mask_layers as f64;
        nanocost_trace::provenance!(
            equation: Eq5,
            function: "nanocost_fab::mask::MaskCostModel::mask_set_cost",
            inputs: [lambda_um = lambda.microns(), mask_layers = node.mask_layers],
            outputs: [c_ma = c_ma.amount()],
        );
        c_ma
    }
}

impl Default for MaskCostModel {
    /// Calibrated to the historical record: ≈ $4 k per mask at 0.25 µm
    /// (≈ $100 k set), exponent 2.2 giving ≈ $0.9 M at 0.13 µm and several
    /// million dollars per set at sub-100 nm nodes.
    fn default() -> Self {
        MaskCostModel::new(
            Dollars::new(4_000.0),
            FeatureSize::from_microns(0.25).expect("constant is valid"), // nanocost-audit: allow(R1, reason = "documented invariant: constant is valid")
            2.2,
        )
        .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(x: f64) -> FeatureSize {
        FeatureSize::from_microns(x).unwrap()
    }

    #[test]
    fn set_cost_at_quarter_micron_is_about_100k() {
        let m = MaskCostModel::default();
        let set = m.mask_set_cost(um(0.25));
        assert!(
            set.amount() > 70_000.0 && set.amount() < 130_000.0,
            "expected ≈$100k, got {set}"
        );
    }

    #[test]
    fn set_cost_reaches_millions_below_100nm() {
        let m = MaskCostModel::default();
        let set = m.mask_set_cost(um(0.07));
        assert!(set.amount() > 1.5e6, "expected >$1.5M, got {set}");
    }

    #[test]
    fn per_mask_cost_is_power_law() {
        let m = MaskCostModel::default();
        let a = m.cost_per_mask(um(0.2)).amount();
        let b = m.cost_per_mask(um(0.1)).amount();
        assert!((b / a - 2f64.powf(2.2)).abs() < 1e-9);
    }

    #[test]
    fn set_cost_monotone_in_node() {
        let m = MaskCostModel::default();
        let mut prev = 0.0;
        for &l in &[0.5, 0.35, 0.25, 0.18, 0.13, 0.1, 0.07, 0.05] {
            let c = m.mask_set_cost(um(l)).amount();
            assert!(c > prev, "λ={l}");
            prev = c;
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(MaskCostModel::new(Dollars::ZERO, um(0.25), 2.0).is_err());
        assert!(MaskCostModel::new(Dollars::new(1e3), um(0.25), 0.0).is_err());
        assert!(MaskCostModel::new(Dollars::new(1e3), um(0.25), f64::NAN).is_err());
    }
}
