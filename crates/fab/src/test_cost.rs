//! Cost of test — the extension the paper says "could be easily included
//! within the proposed cost-modeling framework" (§2.5).
//!
//! Test cost per die is tester time × tester depreciation rate. Time grows
//! sub-linearly with transistor count (structural/scan test amortizes), and
//! every die — good or bad — must be tested, so the per-*good*-die charge
//! is inflated by 1/Y exactly like the manufacturing terms.

use nanocost_units::{Dollars, TransistorCount, UnitError, Yield};

/// Production test cost model.
///
/// ```
/// use nanocost_units::{TransistorCount, Yield};
/// use nanocost_fab::TestCostModel;
///
/// let t = TestCostModel::default();
/// let per_good_die = t.cost_per_good_die(
///     TransistorCount::from_millions(10.0),
///     Yield::new(0.8)?,
/// );
/// assert!(per_good_die.amount() > 0.0);
/// # Ok::<(), nanocost_units::UnitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestCostModel {
    /// Tester cost per second of socket time.
    tester_rate_per_second: Dollars,
    /// Fixed handling/indexing time per die, seconds.
    base_seconds: f64,
    /// Coefficient of the transistor-dependent term.
    seconds_per_sqrt_transistor: f64,
}

impl TestCostModel {
    /// Creates a test cost model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the rate is negative, or either time
    /// parameter is negative or non-finite.
    pub fn new(
        tester_rate_per_second: Dollars,
        base_seconds: f64,
        seconds_per_sqrt_transistor: f64,
    ) -> Result<Self, UnitError> {
        if tester_rate_per_second.amount() < 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "tester rate",
                value: tester_rate_per_second.amount(),
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        for (name, v) in [
            ("base test time", base_seconds),
            ("per-transistor test time", seconds_per_sqrt_transistor),
        ] {
            if !v.is_finite() {
                return Err(UnitError::NonFinite { quantity: name });
            }
            if v < 0.0 {
                return Err(UnitError::OutOfRange {
                    quantity: name,
                    value: v,
                    min: 0.0,
                    max: f64::INFINITY,
                });
            }
        }
        Ok(TestCostModel {
            tester_rate_per_second,
            base_seconds,
            seconds_per_sqrt_transistor,
        })
    }

    /// Socket time for one die, in seconds:
    /// `base + k·√N_tr` (test pattern count grows with design size but scan
    /// compression keeps it sub-linear).
    #[must_use]
    pub fn test_seconds(&self, transistors: TransistorCount) -> f64 {
        self.base_seconds + self.seconds_per_sqrt_transistor * transistors.count().sqrt()
    }

    /// Cost of testing one die (good or bad).
    #[must_use]
    pub fn cost_per_die(&self, transistors: TransistorCount) -> Dollars {
        self.tester_rate_per_second * self.test_seconds(transistors)
    }

    /// Cost attributed to each *good* die: every fabricated die gets
    /// tested, so the charge scales as `1/Y`.
    #[must_use]
    pub fn cost_per_good_die(&self, transistors: TransistorCount, y: Yield) -> Dollars {
        self.cost_per_die(transistors) / y.value()
    }
}

impl Default for TestCostModel {
    /// Late-1990s ATE economics: a $2 M tester depreciated over 5 years of
    /// 80 % utilization ≈ 1.6 ¢/s; 0.5 s handling; 0.4 ms·√N_tr of pattern
    /// time (≈ 1.3 s for a 10 M-transistor part).
    fn default() -> Self {
        TestCostModel::new(Dollars::new(0.016), 0.5, 4.0e-4).expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mt(x: f64) -> TransistorCount {
        TransistorCount::from_millions(x)
    }

    #[test]
    fn test_time_grows_sublinearly() {
        let t = TestCostModel::default();
        let t1 = t.test_seconds(mt(1.0));
        let t4 = t.test_seconds(mt(4.0));
        // Quadrupling the design should less than quadruple the time.
        assert!(t4 < 4.0 * t1);
        assert!(t4 > t1);
    }

    #[test]
    fn per_good_die_inflated_by_yield() {
        let t = TestCostModel::default();
        let n = mt(10.0);
        let good = t.cost_per_good_die(n, Yield::new(0.5).unwrap());
        let all = t.cost_per_die(n);
        assert!((good.amount() / all.amount() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plausible_magnitude_for_ten_million_transistors() {
        let t = TestCostModel::default();
        let c = t.cost_per_die(mt(10.0));
        // Cents to a few dollars — not micro-dollars, not hundreds.
        assert!(c.amount() > 0.005 && c.amount() < 5.0, "{c}");
    }

    #[test]
    fn validation() {
        assert!(TestCostModel::new(Dollars::new(-0.01), 0.5, 1e-4).is_err());
        assert!(TestCostModel::new(Dollars::new(0.01), -0.5, 1e-4).is_err());
        assert!(TestCostModel::new(Dollars::new(0.01), 0.5, f64::NAN).is_err());
    }
}
