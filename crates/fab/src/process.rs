//! Process-node descriptors and the standard node ladder.

use nanocost_units::{FeatureSize, UnitError};

/// A named process technology node.
///
/// Carries the parameters the fab-cost and mask-cost models need: feature
/// size, interconnect stack, mask count, wafer size, and introduction year.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessNode {
    /// Marketing/technical name, e.g. `"0.25um"`.
    pub name: String,
    /// Minimum feature size λ.
    pub lambda: FeatureSize,
    /// Volume-production introduction year.
    pub year: u32,
    /// Metal (interconnect) layers.
    pub metal_layers: u32,
    /// Lithography mask count for a full logic flow.
    pub mask_layers: u32,
    /// Production wafer diameter in millimeters.
    pub wafer_diameter_mm: f64,
}

impl ProcessNode {
    /// Creates a node descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if `wafer_diameter_mm` is not strictly positive
    /// and finite, or if a layer count is zero.
    pub fn new(
        name: impl Into<String>,
        lambda: FeatureSize,
        year: u32,
        metal_layers: u32,
        mask_layers: u32,
        wafer_diameter_mm: f64,
    ) -> Result<Self, UnitError> {
        if !wafer_diameter_mm.is_finite() {
            return Err(UnitError::NonFinite {
                quantity: "wafer diameter",
            });
        }
        if wafer_diameter_mm <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "wafer diameter",
                value: wafer_diameter_mm,
            });
        }
        if metal_layers == 0 || mask_layers == 0 {
            return Err(UnitError::NotPositive {
                quantity: "layer count",
                value: 0.0,
            });
        }
        Ok(ProcessNode {
            name: name.into(),
            lambda,
            year,
            metal_layers,
            mask_layers,
            wafer_diameter_mm,
        })
    }
}

/// The standard node ladder from the micron era into the nanometer era,
/// with historically representative interconnect stacks, mask counts, and
/// wafer sizes. Years and counts follow the ITRS-1999 cadence the paper is
/// framed around.
#[must_use]
pub fn standard_nodes() -> Vec<ProcessNode> {
    let mk = |name: &str, um: f64, year, metal, masks, wafer| {
        ProcessNode::new(
            name,
            FeatureSize::from_microns(um).expect("ladder constants are valid"), // nanocost-audit: allow(R1, reason = "documented invariant: ladder constants are valid")
            year,
            metal,
            masks,
            wafer,
        )
        .expect("ladder constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: ladder constants are valid")
    };
    vec![
        mk("1.5um", 1.5, 1982, 2, 12, 100.0),
        mk("1.0um", 1.0, 1985, 2, 14, 125.0),
        mk("0.8um", 0.8, 1989, 3, 16, 150.0),
        mk("0.6um", 0.6, 1992, 3, 18, 150.0),
        mk("0.5um", 0.5, 1993, 4, 19, 200.0),
        mk("0.35um", 0.35, 1995, 4, 21, 200.0),
        mk("0.25um", 0.25, 1997, 5, 23, 200.0),
        mk("0.18um", 0.18, 1999, 6, 25, 200.0),
        mk("0.13um", 0.13, 2001, 7, 27, 200.0),
        mk("100nm", 0.10, 2003, 7, 29, 300.0),
        mk("70nm", 0.07, 2006, 8, 31, 300.0),
        mk("50nm", 0.05, 2009, 9, 33, 300.0),
        mk("35nm", 0.035, 2012, 9, 35, 300.0),
    ]
}

/// Finds the node in [`standard_nodes`] whose λ is closest (by log-distance)
/// to `lambda`.
#[must_use]
pub fn nearest_node(lambda: FeatureSize) -> ProcessNode {
    standard_nodes()
        .into_iter()
        .min_by(|a, b| {
            let da = (a.lambda.microns().ln() - lambda.microns().ln()).abs();
            let db = (b.lambda.microns().ln() - lambda.microns().ln()).abs();
            da.total_cmp(&db)
        })
        // nanocost-audit: allow(R1, reason = "the standard node ladder is a non-empty constant")
        .expect("ladder is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_strictly_shrinking_and_chronological() {
        let nodes = standard_nodes();
        assert!(nodes.len() >= 12);
        for w in nodes.windows(2) {
            assert!(w[1].lambda.microns() < w[0].lambda.microns());
            assert!(w[1].year >= w[0].year);
            assert!(w[1].mask_layers >= w[0].mask_layers);
        }
    }

    #[test]
    fn interconnect_grows_toward_nanometer_era() {
        let nodes = standard_nodes();
        assert_eq!(nodes.first().unwrap().metal_layers, 2);
        assert!(nodes.last().unwrap().metal_layers >= 9);
    }

    #[test]
    fn nearest_node_snaps_to_ladder() {
        let n = nearest_node(FeatureSize::from_microns(0.24).unwrap());
        assert_eq!(n.name, "0.25um");
        let n = nearest_node(FeatureSize::from_microns(0.16).unwrap());
        assert_eq!(n.name, "0.18um");
        let n = nearest_node(FeatureSize::from_microns(0.04).unwrap());
        assert_eq!(n.name, "35nm");
    }

    #[test]
    fn constructor_validates() {
        let l = FeatureSize::from_microns(0.25).unwrap();
        assert!(ProcessNode::new("x", l, 2000, 0, 20, 200.0).is_err());
        assert!(ProcessNode::new("x", l, 2000, 5, 0, 200.0).is_err());
        assert!(ProcessNode::new("x", l, 2000, 5, 20, -1.0).is_err());
    }
}
