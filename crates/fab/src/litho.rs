//! Lithography interaction neighborhoods.
//!
//! §3.2 of the paper argues that the region of mutual interaction between
//! IC elements "will grow in relative size" as λ shrinks: optical proximity
//! effects reach a fixed *physical* radius (set by the illumination
//! wavelength and the resist/etch stack), so measured in λ units the
//! relevant neighborhood expands — and with it the cost of accurate
//! simulation and the error of early-stage prediction. This module
//! quantifies that radius; the design-flow simulator consumes it.

use nanocost_units::{FeatureSize, UnitError};

/// Optical-proximity interaction model.
///
/// The interaction radius is a physical length (microns) roughly equal to a
/// few illumination wavelengths; expressed in λ units it is
/// `radius_um / λ`, which grows without bound as λ shrinks below the
/// wavelength.
///
/// ```
/// use nanocost_units::FeatureSize;
/// use nanocost_fab::ProximityModel;
///
/// let p = ProximityModel::default();
/// let at_350 = p.neighborhood_lambdas(FeatureSize::from_microns(0.35)?);
/// let at_070 = p.neighborhood_lambdas(FeatureSize::from_microns(0.07)?);
/// assert!(at_070 > 4.0 * at_350);
/// # Ok::<(), nanocost_units::UnitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityModel {
    /// Physical interaction radius in microns (a few λ_light).
    radius_um: f64,
}

impl ProximityModel {
    /// Creates a proximity model with the given physical interaction radius
    /// in microns.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the radius is not strictly positive and
    /// finite.
    pub fn new(radius_um: f64) -> Result<Self, UnitError> {
        if !radius_um.is_finite() {
            return Err(UnitError::NonFinite {
                quantity: "interaction radius",
            });
        }
        if radius_um <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "interaction radius",
                value: radius_um,
            });
        }
        Ok(ProximityModel { radius_um })
    }

    /// The physical interaction radius in microns.
    #[must_use]
    pub fn radius_um(self) -> f64 {
        self.radius_um
    }

    /// The interaction radius measured in λ units at the given node.
    #[must_use]
    pub fn neighborhood_lambdas(self, lambda: FeatureSize) -> f64 {
        self.radius_um / lambda.microns()
    }

    /// The number of λ² *cells* inside the interaction disc — the size of
    /// the context a simulator must consider per pattern. Grows as `1/λ²`.
    #[must_use]
    pub fn neighborhood_cells(self, lambda: FeatureSize) -> f64 {
        let r = self.neighborhood_lambdas(lambda);
        std::f64::consts::PI * r * r
    }

    /// A dimensionless simulation-complexity factor relative to a reference
    /// node: how much more context each pattern needs than it did at
    /// `reference`.
    #[must_use]
    pub fn complexity_factor(self, reference: FeatureSize, target: FeatureSize) -> f64 {
        self.neighborhood_cells(target) / self.neighborhood_cells(reference)
    }
}

impl Default for ProximityModel {
    /// 1.0 µm physical radius — a few 248/193 nm wavelengths, the regime the
    /// paper describes.
    fn default() -> Self {
        ProximityModel::new(1.0).expect("constant is valid") // nanocost-audit: allow(R1, reason = "documented invariant: constant is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(x: f64) -> FeatureSize {
        FeatureSize::from_microns(x).unwrap()
    }

    #[test]
    fn neighborhood_in_lambdas_grows_as_lambda_shrinks() {
        let p = ProximityModel::default();
        assert!((p.neighborhood_lambdas(um(1.0)) - 1.0).abs() < 1e-12);
        assert!((p.neighborhood_lambdas(um(0.1)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cells_grow_quadratically() {
        let p = ProximityModel::default();
        let c1 = p.neighborhood_cells(um(0.2));
        let c2 = p.neighborhood_cells(um(0.1));
        assert!((c2 / c1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn complexity_factor_is_relative() {
        let p = ProximityModel::default();
        let f = p.complexity_factor(um(0.25), um(0.125));
        assert!((f - 4.0).abs() < 1e-9);
        assert!((p.complexity_factor(um(0.25), um(0.25)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(ProximityModel::new(0.0).is_err());
        assert!(ProximityModel::new(-1.0).is_err());
        assert!(ProximityModel::new(f64::INFINITY).is_err());
    }
}
