//! Device records: one published industrial design per record.

use nanocost_trace::provenance;
use nanocost_units::{
    Area, DecompressionIndex, FeatureSize, TransistorCount, UnitError,
};

use crate::taxonomy::DeviceClass;

/// One row of the paper's Table A1: a published IC design with its die
/// size, feature size, transistor counts (split into memory and logic where
/// the source reported them), per-region areas, and the `s_d` values the
/// paper printed.
///
/// The `published_*` fields carry the paper's printed numbers verbatim;
/// [`DeviceRecord::computed_sd_logic`] and friends recompute them from the
/// raw columns so the dataset is self-checking.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRecord {
    /// Row number in Table A1 (1-based).
    pub id: u32,
    /// Total die size in cm².
    pub die_cm2: f64,
    /// Minimum feature size in µm.
    pub feature_um: f64,
    /// Total transistors, in millions.
    pub total_mtr: f64,
    /// Memory transistors in millions, where reported.
    pub mem_mtr: Option<f64>,
    /// Logic transistors in millions, where reported.
    pub logic_mtr: Option<f64>,
    /// Memory area in cm², where reported.
    pub mem_area_cm2: Option<f64>,
    /// Logic area in cm², where reported.
    pub logic_area_cm2: Option<f64>,
    /// The paper's printed memory `s_d`, where present.
    pub published_sd_mem: Option<f64>,
    /// The paper's printed logic `s_d`, where present.
    pub published_sd_logic: Option<f64>,
    /// Device taxonomy class.
    pub class: DeviceClass,
    /// The paper's "type of device" label, verbatim.
    pub label: &'static str,
}

impl DeviceRecord {
    /// The feature size as a typed quantity.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the stored value is invalid (cannot happen
    /// for the embedded dataset, which is test-verified).
    pub fn feature_size(&self) -> Result<FeatureSize, UnitError> {
        FeatureSize::from_microns(self.feature_um)
    }

    /// The total die area as a typed quantity.
    #[must_use]
    pub fn die_area(&self) -> Area {
        Area::from_cm2(self.die_cm2)
    }

    /// The total transistor count as a typed quantity.
    #[must_use]
    pub fn transistors(&self) -> TransistorCount {
        TransistorCount::from_millions(self.total_mtr)
    }

    /// Recomputes the logic-region `s_d` from the raw columns
    /// (`logic area / (logic transistors · λ²)`), if the split is reported.
    #[must_use]
    pub fn computed_sd_logic(&self) -> Option<DecompressionIndex> {
        let (area, mtr) = (self.logic_area_cm2?, self.logic_mtr?);
        let lambda = FeatureSize::from_microns(self.feature_um).ok()?;
        Some(DecompressionIndex::from_layout(
            Area::from_cm2(area),
            TransistorCount::from_millions(mtr),
            lambda,
        ))
    }

    /// Recomputes the memory-region `s_d`, if the split is reported.
    #[must_use]
    pub fn computed_sd_mem(&self) -> Option<DecompressionIndex> {
        let (area, mtr) = (self.mem_area_cm2?, self.mem_mtr?);
        let lambda = FeatureSize::from_microns(self.feature_um).ok()?;
        Some(DecompressionIndex::from_layout(
            Area::from_cm2(area),
            TransistorCount::from_millions(mtr),
            lambda,
        ))
    }

    /// The whole-die `s_d` from total area and total transistors — the
    /// value plotted in the paper's Figure 1 for devices without a
    /// mem/logic split.
    #[must_use]
    pub fn computed_sd_total(&self) -> DecompressionIndex {
        DecompressionIndex::from_layout(
            self.die_area(),
            self.transistors(),
            FeatureSize::from_microns(self.feature_um).expect("dataset is validated"), // nanocost-audit: allow(R1, reason = "documented invariant: dataset is validated")
        )
    }

    /// The best available logic `s_d`: the split-region value when
    /// reported, otherwise the whole-die value. This is the Figure-1
    /// quantity, i.e. eq. 2 solved for `s_d = A / (N_tr · λ²)`.
    #[must_use]
    pub fn effective_sd_logic(&self) -> DecompressionIndex {
        let sd = self
            .computed_sd_logic()
            .unwrap_or_else(|| self.computed_sd_total());
        provenance!(
            equation: Eq2,
            function: "nanocost_devices::record::DeviceRecord::effective_sd_logic",
            inputs: [
                lambda_um = self.feature_um,
                n_tr = self.transistors().count(),
                a_ch_cm2 = self.die_area().cm2(),
            ],
            outputs: [sd = sd.squares()],
        );
        sd
    }

    /// True if the record reports a memory/logic split.
    #[must_use]
    pub fn has_split(&self) -> bool {
        self.mem_mtr.is_some() && self.logic_mtr.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // 6.28 is the P6's published logic-transistor count in millions, not τ.
    #[allow(clippy::approx_constant)]
    fn sample() -> DeviceRecord {
        DeviceRecord {
            id: 1,
            die_cm2: 1.18,
            feature_um: 0.25,
            total_mtr: 7.5,
            mem_mtr: Some(1.23),
            logic_mtr: Some(6.28),
            mem_area_cm2: Some(0.04),
            logic_area_cm2: Some(1.14),
            published_sd_mem: Some(52.08),
            published_sd_logic: Some(290.0),
            class: DeviceClass::Cpu,
            label: "Pent II (P6)",
        }
    }

    #[test]
    fn typed_accessors_match_raw_fields() {
        let r = sample();
        assert!((r.feature_size().unwrap().microns() - 0.25).abs() < 1e-12);
        assert!((r.die_area().cm2() - 1.18).abs() < 1e-12);
        assert!((r.transistors().millions() - 7.5).abs() < 1e-12);
        assert!(r.has_split());
    }

    #[test]
    fn computed_sd_uses_region_columns() {
        let r = sample();
        // logic: 1.14 / (6.28e6 · (0.25e-4)²) = 1.14 / 3.925e-3 ≈ 290.4
        let sd = r.computed_sd_logic().unwrap().squares();
        assert!((sd - 290.4).abs() < 1.0, "{sd}");
        let sd_mem = r.computed_sd_mem().unwrap().squares();
        assert!((sd_mem - 52.0).abs() < 1.5, "{sd_mem}");
    }

    #[test]
    fn effective_sd_falls_back_to_total() {
        let mut r = sample();
        r.mem_mtr = None;
        r.logic_mtr = None;
        r.mem_area_cm2 = None;
        r.logic_area_cm2 = None;
        assert!(r.computed_sd_logic().is_none());
        let total = r.computed_sd_total().squares();
        assert!((r.effective_sd_logic().squares() - total).abs() < 1e-12);
        // 1.18/(7.5e6·6.25e-10) ≈ 251.7
        assert!((total - 251.7).abs() < 0.5);
    }
}
