//! Device and vendor taxonomy for the Table A1 dataset.

use std::fmt;

/// Broad device class, following the paper's "type of device" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// General-purpose microprocessors (x86, RISC, mainframe).
    Cpu,
    /// Digital signal processors.
    Dsp,
    /// Stand-alone or cache SRAM.
    Sram,
    /// MPEG/video codecs.
    Mpeg,
    /// Application-specific ICs (telecom, misc).
    Asic,
    /// ATM switch / network devices.
    Network,
    /// Game console processors.
    VideoGame,
}

impl DeviceClass {
    /// All classes, for iteration in reports.
    pub const ALL: [DeviceClass; 7] = [
        DeviceClass::Cpu,
        DeviceClass::Dsp,
        DeviceClass::Sram,
        DeviceClass::Mpeg,
        DeviceClass::Asic,
        DeviceClass::Network,
        DeviceClass::VideoGame,
    ];
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Cpu => "CPU",
            DeviceClass::Dsp => "DSP",
            DeviceClass::Sram => "SRAM",
            DeviceClass::Mpeg => "MPEG",
            DeviceClass::Asic => "ASIC",
            DeviceClass::Network => "network",
            DeviceClass::VideoGame => "video game",
        };
        f.write_str(s)
    }
}

/// Vendor attribution for the microprocessor rows, used by the Figure-1
/// market-position analysis (the paper's Intel-vs-AMD narrative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Intel x86 parts (Pentium family).
    Intel,
    /// AMD x86 parts (K5/K6/K7).
    Amd,
    /// Motorola/IBM PowerPC parts.
    PowerPcAlliance,
    /// Digital/Compaq Alpha parts.
    Alpha,
    /// Other or unattributed.
    Other,
}

impl Vendor {
    /// Infers the vendor from the paper's device label.
    #[must_use]
    pub fn from_label(label: &str) -> Vendor {
        let l = label.to_ascii_lowercase();
        if l.starts_with("pent") {
            Vendor::Intel
        } else if l.starts_with('k') && l.chars().nth(1).is_some_and(|c| c.is_ascii_digit()) {
            Vendor::Amd
        } else if l.contains("powerpc") || l.contains("power pc") {
            Vendor::PowerPcAlliance
        } else if l.contains("alpha") {
            Vendor::Alpha
        } else {
            Vendor::Other
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Vendor::Intel => "Intel",
            Vendor::Amd => "AMD",
            Vendor::PowerPcAlliance => "PowerPC alliance",
            Vendor::Alpha => "Alpha",
            Vendor::Other => "other",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_inference_from_labels() {
        assert_eq!(Vendor::from_label("Pentium (P5)"), Vendor::Intel);
        assert_eq!(Vendor::from_label("Pent. Pro"), Vendor::Intel);
        assert_eq!(Vendor::from_label("K6-2 (Mod. 8)"), Vendor::Amd);
        assert_eq!(Vendor::from_label("K7"), Vendor::Amd);
        assert_eq!(Vendor::from_label("PowerPC"), Vendor::PowerPcAlliance);
        assert_eq!(Vendor::from_label("Alpha (SOI)"), Vendor::Alpha);
        assert_eq!(Vendor::from_label("MIPS64TM"), Vendor::Other);
    }

    #[test]
    fn class_display_is_stable() {
        assert_eq!(DeviceClass::Cpu.to_string(), "CPU");
        assert_eq!(DeviceClass::VideoGame.to_string(), "video game");
        assert_eq!(DeviceClass::ALL.len(), 7);
    }
}
