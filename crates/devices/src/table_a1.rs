//! The embedded Table A1 dataset: 49 published industrial designs.
//!
//! Transcribed from Maly, DAC 2001, Table A1. The available source scan is
//! OCR-damaged in places (digits dropped, columns shifted); where a cell
//! was illegible it has been reconstructed to be *internally consistent*
//! with the row's legible cells (area = `N_tr · s_d · λ²`), and the row is
//! listed in [`RECONSTRUCTED_ROWS`]. The printed `s_d` columns are carried
//! verbatim where legible so the analysis can re-derive and cross-check
//! them.

use crate::record::DeviceRecord;
use crate::taxonomy::DeviceClass;

/// Row ids whose illegible cells were reconstructed from the legible ones
/// (see module docs). All other rows are verbatim transcriptions.
pub const RECONSTRUCTED_ROWS: &[u32] =
    &[2, 4, 5, 8, 9, 13, 14, 15, 18, 20, 21, 22, 23, 24, 26, 28, 29, 30, 32, 34];

/// Row ids that are fully legible but *internally inconsistent as printed*:
/// recomputing `s_d` from the row's own raw cells disagrees with the printed
/// `s_d` by more than the rounding of the inputs can explain. Row 1 prints
/// `s_d = 110.5` while its own die size, transistor count, and feature size
/// give 118.5 (7 % off). These rows keep their printed values verbatim and
/// are exempt from the strict self-consistency test.
pub const INCONSISTENT_ROWS: &[u32] = &[1];

/// Returns the full 49-row Table A1 dataset.
#[must_use]
// The dataset contains the literal 6.28 (millions of logic transistors in
// the Pentium II rows) — transcribed data, not an approximation of τ.
#[allow(clippy::approx_constant)]
pub fn table_a1() -> Vec<DeviceRecord> {
    use DeviceClass as C;
    let row = |id: u32,
               die_cm2: f64,
               feature_um: f64,
               total_mtr: f64,
               mem_mtr: Option<f64>,
               logic_mtr: Option<f64>,
               mem_area_cm2: Option<f64>,
               logic_area_cm2: Option<f64>,
               published_sd_mem: Option<f64>,
               published_sd_logic: Option<f64>,
               class: C,
               label: &'static str| DeviceRecord {
        id,
        die_cm2,
        feature_um,
        total_mtr,
        mem_mtr,
        logic_mtr,
        mem_area_cm2,
        logic_area_cm2,
        published_sd_mem,
        published_sd_logic,
        class,
        label,
    };
    vec![
        // --- x86 and early CPUs -------------------------------------------------
        row(1, 0.48, 1.5, 0.18, None, Some(0.18), None, Some(0.48), None, Some(110.5), C::Cpu, "CPU"),
        // Row 2: i486-class part; printed row is truncated in the scan.
        row(2, 0.81, 0.8, 1.2, None, Some(1.2), None, Some(0.81), None, Some(104.1), C::Cpu, "CPU"),
        row(3, 2.85, 0.8, 3.1, None, Some(3.1), None, Some(2.85), None, Some(146.4), C::Cpu, "Pentium (P5)"),
        // Row 4: P54C shrink of the P5 at 0.6 µm.
        row(4, 1.48, 0.6, 3.1, None, Some(3.1), None, Some(1.48), None, Some(132.6), C::Cpu, "Pentium (P5)"),
        // Row 5: Pentium Pro at 0.6 µm, 5.5 M transistors.
        row(5, 3.06, 0.6, 5.5, None, Some(5.5), None, Some(3.06), None, Some(154.5), C::Cpu, "Pent. Pro"),
        row(6, 1.95, 0.35, 5.5, Some(0.77), Some(4.73), Some(0.05), Some(1.9), Some(53.15), Some(327.9), C::Cpu, "Pent. Pro"),
        row(7, 1.41, 0.35, 4.5, None, Some(4.5), None, Some(1.41), None, Some(255.7), C::Cpu, "Pentium"),
        row(8, 2.03, 0.35, 7.5, Some(1.23), Some(6.28), Some(0.06), Some(1.80), Some(39.8), Some(233.6), C::Cpu, "Pent. II (P6)"),
        // Row 9: P6 at 0.25 µm (Deschutes).
        row(9, 1.31, 0.25, 7.5, Some(1.23), Some(6.28), Some(0.04), Some(1.276), Some(52.08), Some(325.0), C::Cpu, "Pent. II (P6)"),
        row(10, 0.95, 0.25, 4.5, None, Some(4.5), None, Some(0.95), None, Some(337.8), C::Cpu, "Pent. MMX"),
        row(11, 1.23, 0.25, 9.5, None, Some(9.5), None, Some(1.23), None, Some(207.1), C::Cpu, "Pentium III"),
        row(12, 1.61, 0.35, 4.3, Some(1.15), Some(3.15), Some(0.06), Some(1.47), Some(42.59), Some(380.9), C::Cpu, "K5"),
        row(13, 1.68, 0.35, 8.8, Some(2.1), Some(5.7), Some(0.122), Some(1.44), Some(47.4), Some(206.2), C::Cpu, "K6 (Mod. 6)"),
        // Row 14: K6 shrink (Model 7) at 0.25 µm.
        row(14, 0.68, 0.25, 8.8, Some(3.1), Some(5.7), Some(0.08), Some(0.6), Some(41.47), Some(168.4), C::Cpu, "K6 (Mod. 7)"),
        // Row 15: K6-2 at 0.25 µm.
        row(15, 0.68, 0.25, 9.3, None, Some(9.3), None, Some(0.68), None, Some(116.9), C::Cpu, "K6-2 (Mod. 8)"),
        row(16, 1.35, 0.25, 9.3, None, Some(9.3), None, Some(1.35), None, Some(232.3), C::Cpu, "K6-2 (Mod. 8)"),
        row(17, 1.84, 0.18, 22.0, Some(6.0), Some(16.0), Some(0.1), Some(1.74), Some(51.44), Some(335.6), C::Cpu, "K7"),
        // Row 18: RISC CPU, 0.5 µm, 2.8 M transistors.
        row(18, 1.2, 0.5, 2.8, None, Some(2.8), None, Some(1.2), None, Some(171.4), C::Cpu, "RISC CPU"),
        row(19, 1.95, 0.5, 3.6, None, Some(3.6), None, Some(1.95), None, Some(216.6), C::Cpu, "Power PC"),
        row(20, 2.72, 0.35, 12.0, Some(6.0), Some(6.0), Some(0.28), Some(1.34), Some(38.1), Some(182.3), C::Cpu, "Power PC"),
        // Row 21: S/390 G-series mainframe CPU at 0.35 µm.
        row(21, 2.72, 0.35, 8.0, None, Some(8.0), None, Some(2.72), None, Some(277.6), C::Cpu, "S/390 Gx"),
        row(22, 0.67, 0.25, 6.35, None, Some(6.35), None, Some(0.67), None, Some(169.5), C::Cpu, "Power PC"),
        // Row 23: PowerPC with large on-die L2 (mem-dominated).
        row(23, 1.47, 0.22, 34.0, Some(24.0), Some(10.0), Some(0.5), Some(0.90), Some(43.43), Some(185.0), C::Cpu, "PowerPC"),
        row(24, 2.1, 0.25, 25.0, Some(18.0), Some(7.0), Some(0.55), Some(1.14), Some(48.9), Some(260.2), C::Cpu, "G5"),
        row(25, 0.67, 0.2, 6.5, Some(3.0), Some(3.5), Some(0.09), Some(0.58), Some(74.92), Some(416.0), C::Cpu, "PowerPC"),
        // Row 26: PowerPC 0.2 µm shrink companion of row 25.
        row(26, 0.93, 0.2, 6.5, Some(3.0), Some(3.5), Some(0.09), Some(0.84), Some(74.92), Some(601.0), C::Cpu, "PowerPC"),
        row(27, 0.83, 0.15, 10.5, Some(3.4), Some(7.1), Some(0.18), Some(0.65), Some(235.3), Some(406.9), C::Cpu, "PowerPC"),
        row(28, 0.85, 0.35, 2.5, Some(1.15), Some(1.35), Some(0.265), Some(0.464), Some(187.9), Some(280.3), C::Cpu, "RISC"),
        row(29, 2.09, 0.25, 9.7, Some(4.9), Some(4.8), Some(0.5), Some(1.59), Some(163.2), Some(533.3), C::Cpu, "Alpha (SOI)"),
        row(30, 1.34, 0.5, 2.4, None, Some(2.4), None, Some(1.34), None, Some(223.3), C::Cpu, "Media GX"),
        row(31, 1.94, 0.35, 6.0, None, Some(6.0), None, Some(1.94), None, Some(263.9), C::Cpu, "6x86MX"),
        // Row 32: RISC CPU, 0.28 µm, 5.7 M transistors.
        row(32, 1.01, 0.28, 5.7, None, Some(5.7), None, Some(1.01), None, Some(226.0), C::Cpu, "RISC CPU"),
        row(33, 0.6, 0.28, 3.3, None, Some(3.3), None, Some(0.6), None, Some(231.9), C::Cpu, "RISC CPU"),
        row(34, 4.69, 0.25, 116.0, Some(92.0), Some(24.0), Some(2.3), Some(2.38), Some(40.0), Some(158.6), C::Cpu, "PA-RISC"),
        row(35, 0.34, 0.18, 7.2, Some(5.2), Some(2.0), Some(0.15), Some(0.19), Some(89.03), Some(293.2), C::Cpu, "MIPS64"),
        row(36, 0.2, 0.13, 7.2, Some(5.2), Some(2.0), Some(0.09), Some(0.11), Some(100.1), Some(331.3), C::Cpu, "MIPS64"),
        row(37, 2.76, 0.22, 12.9, Some(3.7), Some(9.2), Some(0.16), Some(2.6), Some(89.35), Some(583.9), C::Cpu, "MAJC 5200"),
        row(38, 1.77, 0.18, 47.0, Some(34.0), Some(13.0), Some(0.6), Some(1.17), Some(54.47), Some(278.2), C::Cpu, "7900"),
        row(39, 3.97, 0.18, 152.0, Some(138.0), Some(14.0), Some(2.77), Some(1.2), Some(61.88), Some(264.5), C::Cpu, "Alpha"),
        // --- DSPs ---------------------------------------------------------------
        row(40, 0.72, 0.6, 0.8, None, Some(0.8), None, Some(0.72), None, Some(250.2), C::Dsp, "DSP"),
        row(41, 2.26, 0.4, 12.0, None, Some(12.0), None, Some(2.26), None, Some(117.5), C::Dsp, "DSP"),
        row(42, 1.78, 0.35, 4.0, None, Some(4.0), None, Some(1.78), None, Some(363.0), C::Dsp, "DSP"),
        // --- Consumer / ASIC ----------------------------------------------------
        row(43, 2.72, 0.5, 2.0, None, Some(2.0), None, Some(2.72), None, Some(544.5), C::Mpeg, "MPEG-2"),
        row(44, 1.63, 0.35, 3.79, None, Some(3.79), None, Some(1.63), None, Some(350.9), C::Mpeg, "MPEG-2"),
        row(45, 1.55, 0.35, 3.1, None, Some(3.1), None, Some(1.55), None, Some(408.1), C::Mpeg, "MPEG-2"),
        row(46, 0.37, 0.35, 1.0, None, Some(1.0), None, Some(0.37), None, Some(299.2), C::Asic, "ASIC M"),
        row(47, 3.0, 0.25, 10.0, None, Some(10.0), None, Some(3.0), None, Some(480.0), C::Asic, "ASIC T. Com"),
        row(48, 2.38, 0.18, 10.5, None, Some(10.5), None, Some(2.38), None, Some(699.5), C::VideoGame, "Video Game"),
        row(49, 2.25, 0.35, 2.4, None, Some(2.4), None, Some(2.25), None, Some(765.3), C::Network, "ATM"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_forty_nine_rows_with_sequential_ids() {
        let rows = table_a1();
        assert_eq!(rows.len(), 49);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.id as usize, i + 1);
        }
    }

    #[test]
    fn every_row_is_physically_valid() {
        for r in table_a1() {
            assert!(r.die_cm2 > 0.0, "row {}", r.id);
            assert!(r.feature_um > 0.0 && r.feature_um <= 2.0, "row {}", r.id);
            assert!(r.total_mtr > 0.0, "row {}", r.id);
            assert!(r.feature_size().is_ok(), "row {}", r.id);
            // Region areas must not exceed the die.
            let regions = r.mem_area_cm2.unwrap_or(0.0) + r.logic_area_cm2.unwrap_or(0.0);
            assert!(
                regions <= r.die_cm2 * 1.02 + 1e-9,
                "row {}: regions {} exceed die {}",
                r.id,
                regions,
                r.die_cm2
            );
        }
    }

    #[test]
    fn published_logic_sd_within_tolerance_of_recomputed() {
        // The dataset must be self-consistent: recomputing s_d from the raw
        // columns reproduces the printed value to within the rounding the
        // printed inputs allow (printed with 2-3 significant digits).
        let mut checked = 0;
        for r in table_a1() {
            if INCONSISTENT_ROWS.contains(&r.id) {
                continue;
            }
            if let (Some(published), Some(computed)) =
                (r.published_sd_logic, r.computed_sd_logic())
            {
                let rel = (computed.squares() - published).abs() / published;
                assert!(
                    rel < 0.05,
                    "row {}: published {} vs computed {:.1}",
                    r.id,
                    published,
                    computed.squares()
                );
                checked += 1;
            }
        }
        assert!(checked >= 40, "only {checked} rows had both values");
    }

    #[test]
    fn published_memory_sd_within_tolerance_of_recomputed() {
        let mut checked = 0;
        for r in table_a1() {
            if let (Some(published), Some(computed)) = (r.published_sd_mem, r.computed_sd_mem()) {
                let rel = (computed.squares() - published).abs() / published;
                assert!(
                    rel < 0.08,
                    "row {}: published {} vs computed {:.1}",
                    r.id,
                    published,
                    computed.squares()
                );
                checked += 1;
            }
        }
        assert!(checked >= 15, "only {checked} rows had both values");
    }

    #[test]
    fn memory_regions_are_denser_than_logic() {
        // Whenever both splits exist, memory s_d < logic s_d — the paper's
        // SRAM-vs-logic density gap.
        for r in table_a1() {
            if let (Some(m), Some(l)) = (r.computed_sd_mem(), r.computed_sd_logic()) {
                assert!(
                    m.squares() < l.squares(),
                    "row {}: mem {} not denser than logic {}",
                    r.id,
                    m,
                    l
                );
            }
        }
    }

    #[test]
    fn sd_range_matches_paper_claims() {
        // §2.2.1: memory s_d down to ≈30-50, ASIC s_d up to ≈1000.
        let rows = table_a1();
        let min_mem = rows
            .iter()
            .filter_map(|r| r.published_sd_mem)
            .fold(f64::INFINITY, f64::min);
        let max_logic = rows
            .iter()
            .filter_map(|r| r.published_sd_logic)
            .fold(0.0f64, f64::max);
        assert!(min_mem < 50.0, "min mem s_d {min_mem}");
        assert!(max_logic > 650.0, "max logic s_d {max_logic}");
    }

    #[test]
    fn k7_exceeds_three_hundred() {
        // §2.2.2: "K7 ... s_d well above 300 squares per transistor".
        let rows = table_a1();
        let k7 = rows.iter().find(|r| r.label == "K7").expect("K7 present");
        assert!(k7.published_sd_logic.expect("split reported") > 300.0);
    }

    #[test]
    fn reconstructed_rows_are_a_subset_of_ids() {
        let rows = table_a1();
        for &id in RECONSTRUCTED_ROWS.iter().chain(INCONSISTENT_ROWS) {
            assert!(rows.iter().any(|r| r.id == id), "row {id} exists");
        }
    }

    #[test]
    fn inconsistent_rows_are_off_but_not_wildly() {
        // The flagged rows disagree with their own printed s_d, but only at
        // the ten-percent level — transcription would be suspect otherwise.
        let rows = table_a1();
        for &id in INCONSISTENT_ROWS {
            let r = rows.iter().find(|r| r.id == id).expect("row exists");
            let published = r.published_sd_logic.expect("flagged rows print s_d");
            let computed = r.computed_sd_logic().expect("flagged rows have raw cells");
            let rel = (computed.squares() - published).abs() / published;
            assert!(rel >= 0.05, "row {id} is actually consistent; unflag it");
            assert!(rel < 0.10, "row {id} is too far off: {rel}");
        }
    }
}
