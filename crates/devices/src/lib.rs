//! The published-design dataset behind the paper's empirical study.
//!
//! Maly's Table A1 collects die size, feature size, and transistor counts
//! (with memory/logic splits where available) for 49 industrial designs
//! published 1992–2000 (ISSCC and journal sources, the paper's refs.
//! [5–29]). This crate embeds that table as typed [`DeviceRecord`]s,
//! recomputes every printed `s_d` from the raw columns, and provides the
//! grouping/trend analysis behind Figure 1:
//!
//! * [`table_a1`] — the dataset;
//! * [`DeviceRecord::computed_sd_logic`] / [`DeviceRecord::computed_sd_mem`]
//!   — eq. 2 applied to each row;
//! * [`figure1_by_class`] / [`figure1_by_vendor`] — the Figure-1 scatter;
//! * [`vendor_density_trend`] / [`vendor_mean_sd`] — the §2.2.2 narrative
//!   (worsening MPU density; AMD-vs-Intel positioning);
//! * [`DeviceQuery`] / [`to_csv`] — filtering and export.
//!
//! # Example
//!
//! ```
//! use nanocost_devices::{table_a1, DeviceClass};
//!
//! let rows = table_a1();
//! assert_eq!(rows.len(), 49);
//! let k7 = rows.iter().find(|r| r.label == "K7").expect("K7 present");
//! assert!(k7.computed_sd_logic().expect("split reported").squares() > 300.0);
//! assert_eq!(k7.class, DeviceClass::Cpu);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod query;
mod record;
mod table_a1;
mod taxonomy;

pub use analysis::{
    chronology_series, class_summaries, density_time_trend, estimated_year, figure1_by_class,
    figure1_by_vendor, vendor_density_trend, vendor_mean_sd, ClassSummary,
};
pub use query::{to_csv, DeviceQuery};
pub use record::DeviceRecord;
pub use table_a1::{table_a1, INCONSISTENT_ROWS, RECONSTRUCTED_ROWS};
pub use taxonomy::{DeviceClass, Vendor};

#[cfg(test)]
mod proptests {
    //! Exhaustive row-by-row checks (formerly randomized via `proptest`,
    //! which is gone for offline builds — sweeping all rows is stronger).

    use super::*;

    #[test]
    fn effective_sd_scales_inversely_with_assumed_density() {
        // Doubling a record's transistor count at fixed area halves its
        // whole-die s_d — the eq.-2 linearity, exercised on real rows.
        let rows = table_a1();
        for r in rows.iter().take(49) {
            let base = r.computed_sd_total().squares();
            let mut doubled = r.clone();
            doubled.total_mtr *= 2.0;
            let halved = doubled.computed_sd_total().squares();
            assert!((halved * 2.0 - base).abs() < base * 1e-9);
        }
    }

    #[test]
    fn effective_sd_positive_for_all_rows() {
        for row in table_a1().iter().take(49) {
            assert!(row.effective_sd_logic().squares() > 0.0);
        }
    }
}
