//! Analysis over the Table A1 dataset: the computations behind the paper's
//! Figure 1 and its §2.2.2 narrative (worsening MPU density, the
//! Intel-vs-AMD market-position story).

use nanocost_fab::nearest_node;
use nanocost_numeric::{linear_fit, summarize, LinearFit, NumericError, Series, Summary};
use nanocost_units::FeatureSize;

use crate::record::DeviceRecord;
use crate::taxonomy::{DeviceClass, Vendor};

/// Per-class `s_d` statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSummary {
    /// The class summarized.
    pub class: DeviceClass,
    /// Statistics over the effective logic `s_d` of the class's records.
    pub sd: Summary,
}

/// Summarizes the effective logic `s_d` of every class present in `rows`.
///
/// # Errors
///
/// Returns [`NumericError`] only if a class somehow has no finite values
/// (impossible for the validated embedded dataset).
pub fn class_summaries(rows: &[DeviceRecord]) -> Result<Vec<ClassSummary>, NumericError> {
    let mut out = Vec::new();
    for class in DeviceClass::ALL {
        let values: Vec<f64> = rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.effective_sd_logic().squares())
            .collect();
        if values.is_empty() {
            continue;
        }
        out.push(ClassSummary {
            class,
            sd: summarize(&values)?,
        });
    }
    Ok(out)
}

/// The Figure-1 scatter: one [`Series`] per device class, with points
/// `(feature size µm, effective logic s_d)`.
///
/// # Errors
///
/// Returns [`NumericError`] if any computed coordinate is non-finite
/// (impossible for the validated embedded dataset).
pub fn figure1_by_class(rows: &[DeviceRecord]) -> Result<Vec<Series>, NumericError> {
    let mut out = Vec::new();
    for class in DeviceClass::ALL {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| (r.feature_um, r.effective_sd_logic().squares()))
            .collect();
        if !pts.is_empty() {
            out.push(Series::new(class.to_string(), pts)?);
        }
    }
    Ok(out)
}

/// The Figure-1 vendor view: one [`Series`] per vendor for the CPU rows.
///
/// # Errors
///
/// As [`figure1_by_class`].
pub fn figure1_by_vendor(rows: &[DeviceRecord]) -> Result<Vec<Series>, NumericError> {
    let vendors = [
        Vendor::Intel,
        Vendor::Amd,
        Vendor::PowerPcAlliance,
        Vendor::Alpha,
        Vendor::Other,
    ];
    let mut out = Vec::new();
    for vendor in vendors {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.class == DeviceClass::Cpu && Vendor::from_label(r.label) == vendor)
            .map(|r| (r.feature_um, r.effective_sd_logic().squares()))
            .collect();
        if !pts.is_empty() {
            out.push(Series::new(vendor.to_string(), pts)?);
        }
    }
    Ok(out)
}

/// Fits the logic-`s_d`-vs-λ trend for one vendor's CPU rows, regressing
/// `s_d` against `ln(1/λ)` so a positive slope means "density worsens as
/// the technology advances" — the §2.2.2 claim.
///
/// # Errors
///
/// Returns [`NumericError`] if the vendor has fewer than two CPU rows.
pub fn vendor_density_trend(
    rows: &[DeviceRecord],
    vendor: Vendor,
) -> Result<LinearFit, NumericError> {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.class == DeviceClass::Cpu && Vendor::from_label(r.label) == vendor)
        .map(|r| ((1.0 / r.feature_um).ln(), r.effective_sd_logic().squares()))
        .collect();
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    linear_fit(&xs, &ys)
}

/// Mean effective logic `s_d` of a vendor's CPU rows, restricted to
/// feature sizes in `[lo_um, hi_um]` so vendors can be compared on
/// contemporary nodes.
///
/// # Errors
///
/// Returns [`NumericError::Empty`] if no rows match.
pub fn vendor_mean_sd(
    rows: &[DeviceRecord],
    vendor: Vendor,
    lo_um: f64,
    hi_um: f64,
) -> Result<Summary, NumericError> {
    let values: Vec<f64> = rows
        .iter()
        .filter(|r| {
            r.class == DeviceClass::Cpu
                && Vendor::from_label(r.label) == vendor
                && r.feature_um >= lo_um
                && r.feature_um <= hi_um
        })
        .map(|r| r.effective_sd_logic().squares())
        .collect();
    summarize(&values)
}

/// Estimates a record's design year from its process node (volume-intro
/// year of the nearest standard node) — Table A1 itself carries no dates,
/// but its feature sizes do.
#[must_use]
pub fn estimated_year(record: &DeviceRecord) -> u32 {
    let lambda = FeatureSize::from_microns(record.feature_um).expect("dataset is validated"); // nanocost-audit: allow(R1, reason = "documented invariant: dataset is validated")
    nearest_node(lambda).year
}

/// The chronological Figure-1 view: `(estimated year, effective logic
/// s_d)` for one device class.
///
/// # Errors
///
/// Returns [`NumericError`] only for a corrupted dataset (test-excluded).
pub fn chronology_series(
    rows: &[DeviceRecord],
    class: DeviceClass,
) -> Result<Series, NumericError> {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.class == class)
        .map(|r| {
            (
                f64::from(estimated_year(r)),
                r.effective_sd_logic().squares(),
            )
        })
        .collect();
    Series::new(format!("{class} by year"), pts)
}

/// Fits the `s_d`-versus-time trend for a class: a positive slope is the
/// paper's "worsening design densities" read chronologically.
///
/// # Errors
///
/// Returns [`NumericError`] if the class has fewer than two records.
pub fn density_time_trend(
    rows: &[DeviceRecord],
    class: DeviceClass,
) -> Result<LinearFit, NumericError> {
    let series = chronology_series(rows, class)?;
    let xs: Vec<f64> = series.xs();
    let ys: Vec<f64> = series.ys();
    linear_fit(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_a1::table_a1;

    #[test]
    fn class_summaries_cover_all_present_classes() {
        let rows = table_a1();
        let summaries = class_summaries(&rows).unwrap();
        assert!(summaries.len() >= 5);
        let cpu = summaries.iter().find(|s| s.class == DeviceClass::Cpu).unwrap();
        assert!(cpu.sd.n >= 30);
    }

    #[test]
    fn asic_class_is_sparser_than_cpu_class() {
        let rows = table_a1();
        let summaries = class_summaries(&rows).unwrap();
        let cpu = summaries.iter().find(|s| s.class == DeviceClass::Cpu).unwrap();
        let asic = summaries.iter().find(|s| s.class == DeviceClass::Asic).unwrap();
        assert!(asic.sd.mean > cpu.sd.mean);
    }

    #[test]
    fn figure1_series_cover_the_dataset() {
        let rows = table_a1();
        let series = figure1_by_class(&rows).unwrap();
        let total: usize = series.iter().map(Series::len).sum();
        assert_eq!(total, rows.len());
    }

    #[test]
    fn intel_density_worsens_toward_smaller_nodes() {
        // §2.2.2: "a clear tendency among major microprocessor producers to
        // introduce products with worsening design densities".
        let rows = table_a1();
        let fit = vendor_density_trend(&rows, Vendor::Intel).unwrap();
        assert!(fit.slope > 0.0, "Intel trend slope {}", fit.slope);
    }

    #[test]
    fn amd_denser_than_intel_in_k5_k6_era() {
        // §2.2.2: AMD the market follower shipped denser (cheaper) parts
        // than Intel on contemporary 0.25-0.35 µm nodes.
        let rows = table_a1();
        let amd = vendor_mean_sd(&rows, Vendor::Amd, 0.25, 0.35).unwrap();
        let intel = vendor_mean_sd(&rows, Vendor::Intel, 0.25, 0.35).unwrap();
        assert!(
            amd.mean < intel.mean,
            "AMD mean {} should undercut Intel mean {}",
            amd.mean,
            intel.mean
        );
    }

    #[test]
    fn estimated_years_span_the_dataset_era() {
        let rows = table_a1();
        let years: Vec<u32> = rows.iter().map(estimated_year).collect();
        assert!(years.iter().all(|&y| (1980..=2005).contains(&y)));
        assert!(years.iter().min().unwrap() <= &1985);
        assert!(years.iter().max().unwrap() >= &1999);
    }

    #[test]
    fn cpu_density_worsens_chronologically() {
        // The paper's Figure-1 narrative read against calendar time.
        let rows = table_a1();
        let fit = density_time_trend(&rows, DeviceClass::Cpu).unwrap();
        assert!(
            fit.slope > 0.0,
            "CPU s_d should rise over the years, slope {}",
            fit.slope
        );
    }

    #[test]
    fn chronology_series_covers_the_class() {
        let rows = table_a1();
        let s = chronology_series(&rows, DeviceClass::Dsp).unwrap();
        assert_eq!(
            s.len(),
            rows.iter().filter(|r| r.class == DeviceClass::Dsp).count()
        );
    }

    #[test]
    fn vendor_series_split_the_cpu_rows() {
        let rows = table_a1();
        let series = figure1_by_vendor(&rows).unwrap();
        let total: usize = series.iter().map(Series::len).sum();
        let cpus = rows.iter().filter(|r| r.class == DeviceClass::Cpu).count();
        assert_eq!(total, cpus);
        assert!(series.iter().any(|s| s.name() == "Intel"));
        assert!(series.iter().any(|s| s.name() == "AMD"));
    }
}
