//! Query and export helpers over the device dataset.

use crate::record::DeviceRecord;
use crate::taxonomy::{DeviceClass, Vendor};

/// A fluent filter over device records.
///
/// ```
/// use nanocost_devices::{table_a1, DeviceClass, DeviceQuery};
///
/// let rows = table_a1();
/// let quarter_micron_cpus = DeviceQuery::new(&rows)
///     .class(DeviceClass::Cpu)
///     .feature_um(0.2, 0.3)
///     .collect();
/// assert!(!quarter_micron_cpus.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DeviceQuery<'a> {
    rows: &'a [DeviceRecord],
    class: Option<DeviceClass>,
    vendor: Option<Vendor>,
    feature_um: Option<(f64, f64)>,
    split_only: bool,
}

impl<'a> DeviceQuery<'a> {
    /// Starts a query over `rows`.
    #[must_use]
    pub fn new(rows: &'a [DeviceRecord]) -> Self {
        DeviceQuery {
            rows,
            class: None,
            vendor: None,
            feature_um: None,
            split_only: false,
        }
    }

    /// Keep only records of `class`.
    #[must_use]
    pub fn class(mut self, class: DeviceClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Keep only records whose label infers to `vendor`.
    #[must_use]
    pub fn vendor(mut self, vendor: Vendor) -> Self {
        self.vendor = Some(vendor);
        self
    }

    /// Keep only records with feature size in `[lo_um, hi_um]`.
    #[must_use]
    pub fn feature_um(mut self, lo_um: f64, hi_um: f64) -> Self {
        self.feature_um = Some((lo_um, hi_um));
        self
    }

    /// Keep only records reporting a memory/logic split.
    #[must_use]
    pub fn with_split(mut self) -> Self {
        self.split_only = true;
        self
    }

    fn matches(&self, r: &DeviceRecord) -> bool {
        if let Some(c) = self.class {
            if r.class != c {
                return false;
            }
        }
        if let Some(v) = self.vendor {
            if Vendor::from_label(r.label) != v {
                return false;
            }
        }
        if let Some((lo, hi)) = self.feature_um {
            if r.feature_um < lo || r.feature_um > hi {
                return false;
            }
        }
        if self.split_only && !r.has_split() {
            return false;
        }
        true
    }

    /// Materializes the matching records.
    #[must_use]
    pub fn collect(&self) -> Vec<&'a DeviceRecord> {
        self.rows.iter().filter(|r| self.matches(r)).collect()
    }

    /// Number of matching records without materializing.
    #[must_use]
    pub fn count(&self) -> usize {
        self.rows.iter().filter(|r| self.matches(r)).count()
    }
}

/// Exports records as CSV with both published and recomputed `s_d`
/// columns — for downstream analysis outside Rust.
#[must_use]
pub fn to_csv(rows: &[DeviceRecord]) -> String {
    let mut out = String::from(
        "id,die_cm2,feature_um,total_mtr,mem_mtr,logic_mtr,mem_area_cm2,logic_area_cm2,\
         published_sd_mem,published_sd_logic,computed_sd_mem,computed_sd_logic,\
         computed_sd_total,class,label\n",
    );
    let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x}"));
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.id,
            r.die_cm2,
            r.feature_um,
            r.total_mtr,
            opt(r.mem_mtr),
            opt(r.logic_mtr),
            opt(r.mem_area_cm2),
            opt(r.logic_area_cm2),
            opt(r.published_sd_mem),
            opt(r.published_sd_logic),
            opt(r.computed_sd_mem().map(|s| s.squares())),
            opt(r.computed_sd_logic().map(|s| s.squares())),
            r.computed_sd_total().squares(),
            r.class,
            r.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_a1::table_a1;

    #[test]
    fn unfiltered_query_returns_everything() {
        let rows = table_a1();
        assert_eq!(DeviceQuery::new(&rows).count(), rows.len());
    }

    #[test]
    fn filters_compose() {
        let rows = table_a1();
        let intel_quarter = DeviceQuery::new(&rows)
            .class(DeviceClass::Cpu)
            .vendor(Vendor::Intel)
            .feature_um(0.2, 0.3)
            .collect();
        assert!(!intel_quarter.is_empty());
        for r in &intel_quarter {
            assert_eq!(r.class, DeviceClass::Cpu);
            assert_eq!(Vendor::from_label(r.label), Vendor::Intel);
            assert!((0.2..=0.3).contains(&r.feature_um));
        }
    }

    #[test]
    fn split_filter_matches_has_split() {
        let rows = table_a1();
        let split = DeviceQuery::new(&rows).with_split().collect();
        assert!(split.len() > 15 && split.len() < rows.len());
        assert!(split.iter().all(|r| r.has_split()));
    }

    #[test]
    fn csv_has_header_plus_one_line_per_row() {
        let rows = table_a1();
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.starts_with("id,die_cm2"));
        // Spot-check the K7 row carries its published density.
        let k7_line = csv.lines().find(|l| l.ends_with(",K7")).expect("K7 row");
        assert!(k7_line.contains("335.6"));
    }

    #[test]
    fn empty_optional_cells_stay_empty_in_csv() {
        let rows = table_a1();
        let csv = to_csv(&rows);
        // Row 1 reports no memory split: consecutive commas.
        let row1 = csv.lines().nth(1).expect("row 1");
        assert!(row1.contains(",,"));
    }
}
