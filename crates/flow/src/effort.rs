//! The paper's design-effort model, eq. (6):
//!
//! ```text
//! C_DE = A0 · N_tr^p1 / (s_d − s_d0)^p2
//! ```
//!
//! Design cost explodes as the target density approaches the "best
//! possible" full-custom density `s_d0 ≈ 100`, because the number of
//! unsuccessful design iterations grows (§2.4). The tuning constants the
//! paper uses — `A0 = 1000`, `p1 = 1.0`, `p2 = 1.2` — are carried as
//! defaults.

use nanocost_trace::provenance;
use nanocost_units::{DecompressionIndex, Dollars, TransistorCount, UnitError};

/// The eq.-6 design-effort model.
///
/// ```
/// use nanocost_units::{DecompressionIndex, TransistorCount};
/// use nanocost_flow::DesignEffortModel;
///
/// let model = DesignEffortModel::paper_defaults();
/// let n = TransistorCount::from_millions(10.0);
/// let relaxed = model.design_cost(n, DecompressionIndex::new(400.0)?)?;
/// let aggressive = model.design_cost(n, DecompressionIndex::new(120.0)?)?;
/// // Pushing density toward s_d0 = 100 costs dramatically more.
/// assert!(aggressive.amount() > 3.0 * relaxed.amount());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignEffortModel {
    a0: f64,
    p1: f64,
    p2: f64,
    sd0: f64,
}

impl DesignEffortModel {
    /// Creates a model with explicit tuning parameters.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if any parameter is non-finite or not strictly
    /// positive.
    pub fn new(a0: f64, p1: f64, p2: f64, sd0: f64) -> Result<Self, UnitError> {
        for (name, v) in [("A0", a0), ("p1", p1), ("p2", p2), ("s_d0", sd0)] {
            if !v.is_finite() {
                return Err(UnitError::NonFinite { quantity: name });
            }
            if v <= 0.0 {
                return Err(UnitError::NotPositive { quantity: name, value: v });
            }
        }
        Ok(DesignEffortModel { a0, p1, p2, sd0 })
    }

    /// The paper's constants: `A0 = 1000`, `p1 = 1.0`, `p2 = 1.2`,
    /// `s_d0 = 100` (§2.4, with the footnote's "illustration purpose"
    /// caveat).
    #[must_use]
    pub fn paper_defaults() -> Self {
        DesignEffortModel::new(1000.0, 1.0, 1.2, 100.0).expect("paper constants are valid") // nanocost-audit: allow(R1, R3, reason = "documented invariant: paper constants are valid")
    }

    /// The best-possible decompression index `s_d0`.
    #[must_use]
    pub fn sd0(&self) -> DecompressionIndex {
        DecompressionIndex::new(self.sd0).expect("validated at construction") // nanocost-audit: allow(R1, reason = "documented invariant: validated at construction")
    }

    /// The `(A0, p1, p2)` tuning constants.
    #[must_use]
    pub fn parameters(&self) -> (f64, f64, f64) {
        (self.a0, self.p1, self.p2)
    }

    /// Total design cost `C_DE` for a design of `transistors` targeting
    /// density `sd`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `sd <= s_d0`: the model's
    /// domain is strictly sparser-than-best-possible (eq. 6 diverges at
    /// `s_d0` — no finite budget buys the theoretical optimum).
    pub fn design_cost(
        &self,
        transistors: TransistorCount,
        sd: DecompressionIndex,
    ) -> Result<Dollars, UnitError> {
        let margin = sd.squares() - self.sd0;
        if margin <= 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "decompression index s_d",
                value: sd.squares(),
                min: self.sd0,
                max: f64::INFINITY,
            });
        }
        let cost = self.a0 * transistors.count().powf(self.p1) / margin.powf(self.p2);
        provenance!(
            equation: Eq6,
            function: "nanocost_flow::effort::DesignEffortModel::design_cost",
            inputs: [n_tr = transistors.count(), sd = sd.squares(), sd0 = self.sd0],
            outputs: [c_de = cost],
        );
        Dollars::try_new(cost)
    }

    /// Derivative of design cost with respect to `s_d` (always negative on
    /// the domain): the marginal saving of relaxing density by one λ²
    /// square per transistor.
    ///
    /// # Errors
    ///
    /// As [`DesignEffortModel::design_cost`].
    pub fn marginal_cost(
        &self,
        transistors: TransistorCount,
        sd: DecompressionIndex,
    ) -> Result<f64, UnitError> {
        let margin = sd.squares() - self.sd0;
        if margin <= 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "decompression index s_d",
                value: sd.squares(),
                min: self.sd0,
                max: f64::INFINITY,
            });
        }
        Ok(-self.p2 * self.a0 * transistors.count().powf(self.p1) / margin.powf(self.p2 + 1.0))
    }
}

impl DesignEffortModel {
    /// Fits an effort model to observed `(s_d, cost)` points, holding
    /// `sd0` and `p1` fixed (the design size exponent is not identifiable
    /// from a single-design sweep): a power-law fit of cost against the
    /// margin `s_d − s_d0` recovers `p2` and, given the design size, `A0`.
    ///
    /// This turns a [`calibrate_effort_shape`](crate::calibrate_effort_shape)
    /// sweep (or real project ledgers) into a usable model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if any point is at or below
    /// `sd0`, or [`UnitError::NonFinite`] if the fit degenerates (fewer
    /// than two valid points, zero costs).
    pub fn fit(
        points: &[(f64, f64)],
        sd0: f64,
        transistors: TransistorCount,
        p1: f64,
    ) -> Result<Self, UnitError> {
        for &(sd, _) in points {
            if sd <= sd0 {
                return Err(UnitError::OutOfRange {
                    quantity: "decompression index s_d",
                    value: sd,
                    min: sd0,
                    max: f64::INFINITY,
                });
            }
        }
        let margins: Vec<f64> = points.iter().map(|&(sd, _)| sd - sd0).collect();
        let costs: Vec<f64> = points.iter().map(|&(_, c)| c).collect();
        let fit = nanocost_numeric::power_law_fit(&margins, &costs).map_err(|_| {
            UnitError::NonFinite {
                quantity: "effort fit",
            }
        })?;
        let a0 = fit.coefficient / transistors.count().powf(p1);
        DesignEffortModel::new(a0, p1, -fit.exponent, sd0)
    }
}

impl Default for DesignEffortModel {
    fn default() -> Self {
        DesignEffortModel::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(v: f64) -> DecompressionIndex {
        DecompressionIndex::new(v).unwrap()
    }

    fn mt(v: f64) -> TransistorCount {
        TransistorCount::from_millions(v)
    }

    #[test]
    fn paper_point_value_checks_out() {
        // A0·N^p1/(s_d−100)^p2 = 1000·1e7/(100)^1.2 ≈ $39.8M at s_d = 200.
        let m = DesignEffortModel::paper_defaults();
        let c = m.design_cost(mt(10.0), sd(200.0)).unwrap();
        assert!((c.amount() - 3.981e7).abs() / 3.981e7 < 1e-3, "{c}");
    }

    #[test]
    fn cost_diverges_approaching_sd0() {
        let m = DesignEffortModel::paper_defaults();
        let far = m.design_cost(mt(10.0), sd(500.0)).unwrap();
        let near = m.design_cost(mt(10.0), sd(101.0)).unwrap();
        assert!(near.amount() > 100.0 * far.amount());
    }

    #[test]
    fn domain_excludes_sd0_and_below() {
        let m = DesignEffortModel::paper_defaults();
        assert!(m.design_cost(mt(1.0), sd(100.0)).is_err());
        assert!(m.design_cost(mt(1.0), sd(50.0)).is_err());
        assert!(m.marginal_cost(mt(1.0), sd(99.0)).is_err());
    }

    #[test]
    fn cost_linear_in_transistors_with_p1_one() {
        let m = DesignEffortModel::paper_defaults();
        let one = m.design_cost(mt(1.0), sd(300.0)).unwrap();
        let ten = m.design_cost(mt(10.0), sd(300.0)).unwrap();
        assert!((ten.amount() / one.amount() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn marginal_cost_is_negative_and_matches_finite_difference() {
        let m = DesignEffortModel::paper_defaults();
        let n = mt(10.0);
        let x = 250.0;
        let h = 1e-4;
        let analytic = m.marginal_cost(n, sd(x)).unwrap();
        let numeric = (m.design_cost(n, sd(x + h)).unwrap().amount()
            - m.design_cost(n, sd(x - h)).unwrap().amount())
            / (2.0 * h);
        assert!(analytic < 0.0);
        assert!((analytic - numeric).abs() / numeric.abs() < 1e-5);
    }

    #[test]
    fn fit_round_trips_the_paper_model() {
        // Generate exact eq.-6 costs from the paper constants; the fit
        // must recover them.
        let truth = DesignEffortModel::paper_defaults();
        let n = mt(10.0);
        let points: Vec<(f64, f64)> = [120.0, 160.0, 220.0, 320.0, 500.0, 800.0]
            .iter()
            .map(|&s| (s, truth.design_cost(n, sd(s)).unwrap().amount()))
            .collect();
        let fitted = DesignEffortModel::fit(&points, 100.0, n, 1.0).unwrap();
        let (a0, p1, p2) = fitted.parameters();
        assert!((a0 - 1000.0).abs() / 1000.0 < 1e-6, "A0 {a0}");
        assert!((p1 - 1.0).abs() < 1e-12);
        assert!((p2 - 1.2).abs() < 1e-6, "p2 {p2}");
        // And predictions agree off the fitting grid.
        let predicted = fitted.design_cost(n, sd(250.0)).unwrap().amount();
        let actual = truth.design_cost(n, sd(250.0)).unwrap().amount();
        assert!((predicted - actual).abs() / actual < 1e-6);
    }

    #[test]
    fn fit_rejects_points_below_sd0() {
        let n = mt(1.0);
        assert!(DesignEffortModel::fit(&[(90.0, 1.0e6), (200.0, 5.0e5)], 100.0, n, 1.0).is_err());
        assert!(DesignEffortModel::fit(&[(150.0, 1.0e6)], 100.0, n, 1.0).is_err());
    }

    #[test]
    fn custom_parameters_validated() {
        assert!(DesignEffortModel::new(0.0, 1.0, 1.2, 100.0).is_err());
        assert!(DesignEffortModel::new(1000.0, -1.0, 1.2, 100.0).is_err());
        assert!(DesignEffortModel::new(1000.0, 1.0, f64::NAN, 100.0).is_err());
    }
}
