//! The layout-regularity → design-cost linkage (§3.2 end-to-end).
//!
//! Takes a measured [`RegularityReport`] from the layout substrate and
//! produces the inputs the flow models need: a simulation-reuse factor for
//! the [`PredictionModel`](crate::PredictionModel) and an effective
//! design-effort multiplier relative to fully irregular artwork.

use nanocost_layout::RegularityReport;
use nanocost_numeric::McConfig;
use nanocost_units::{DecompressionIndex, FeatureSize, UnitError};

use crate::iteration::ClosureSimulator;

/// Flow-relevant summary of a layout's regularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegularityEffect {
    /// Simulation-reuse factor: scanned windows per unique pattern.
    pub reuse_factor: f64,
    /// Fraction of the layout covered by its ten most frequent patterns.
    pub top10_coverage: f64,
    /// Pattern entropy in bits.
    pub entropy_bits: f64,
}

impl RegularityEffect {
    /// Extracts the effect from a pattern-extraction report.
    #[must_use]
    pub fn from_report(report: &RegularityReport) -> Self {
        RegularityEffect {
            reuse_factor: report.reuse_factor(),
            top10_coverage: report.coverage_top(10),
            entropy_bits: report.entropy_bits(),
        }
    }

    /// The iteration-count ratio of this layout versus fully irregular
    /// artwork at the same design point: simulates both and divides.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if `sd` is at or below the simulator's
    /// `s_d0`.
    pub fn iteration_ratio(
        &self,
        simulator: &ClosureSimulator,
        config: McConfig,
        lambda: FeatureSize,
        sd: DecompressionIndex,
    ) -> Result<f64, UnitError> {
        let regular = simulator.mean_iterations(config, lambda, sd, self.reuse_factor)?;
        let irregular = simulator.mean_iterations(config, lambda, sd, 1.0)?;
        Ok(regular / irregular)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanocost_layout::{MemoryArrayGenerator, RandomBlockGenerator, RegularityAnalysis};

    #[test]
    fn memory_array_effect_shows_high_reuse() {
        let array = MemoryArrayGenerator::new(16, 16).unwrap().generate().unwrap();
        let report = RegularityAnalysis::tiling_rect(14, 13).unwrap().analyze(array.grid()).unwrap();
        let effect = RegularityEffect::from_report(&report);
        assert!(effect.reuse_factor > 10.0);
        assert!(effect.top10_coverage > 0.5);
    }

    #[test]
    fn regular_layout_closes_in_fewer_iterations() {
        let array = MemoryArrayGenerator::new(16, 16).unwrap().generate().unwrap();
        let report = RegularityAnalysis::tiling_rect(14, 13).unwrap().analyze(array.grid()).unwrap();
        let effect = RegularityEffect::from_report(&report);
        let sim = ClosureSimulator::nanometer_default();
        let ratio = effect
            .iteration_ratio(
                &sim,
                McConfig { seed: 5, trials: 400 },
                FeatureSize::from_microns(0.1).unwrap(),
                DecompressionIndex::new(150.0).unwrap(),
            )
            .unwrap();
        assert!(ratio < 0.9, "regular/irregular iteration ratio {ratio}");
    }

    #[test]
    fn random_block_effect_is_weak() {
        let block = RandomBlockGenerator::new(224, 208, 250, 11)
            .unwrap()
            .generate()
            .unwrap();
        let report = RegularityAnalysis::tiling_rect(14, 13).unwrap().analyze(block.grid()).unwrap();
        let effect = RegularityEffect::from_report(&report);
        let array = MemoryArrayGenerator::new(16, 16).unwrap().generate().unwrap();
        let mem_report = RegularityAnalysis::tiling_rect(14, 13).unwrap().analyze(array.grid()).unwrap();
        let mem_effect = RegularityEffect::from_report(&mem_report);
        assert!(effect.reuse_factor < mem_effect.reuse_factor / 3.0);
    }
}
