//! Pre-layout prediction error — the root cause the paper assigns to
//! design-cost growth (§2.4, §3.2).
//!
//! Early design stages must predict physical quantities (interconnect
//! delay, coupling, printability) before placement and routing exist. Two
//! forces set the error of that prediction:
//!
//! * the **lithography neighborhood**: the λ-relative interaction radius
//!   grows as features shrink (see `nanocost_fab::ProximityModel`), so
//!   more context is unknown at prediction time;
//! * **regularity**: pre-characterized repeated patterns are predictable —
//!   reuse of accurate simulation results shrinks the error (§3.2).

use nanocost_numeric::Sampler;
use nanocost_units::{FeatureSize, UnitError};

/// Model of the relative error of pre-layout physical prediction.
///
/// The error standard deviation is
///
/// ```text
/// σ(λ, R) = σ_ref · (λ_ref / λ)^q / (1 + k · log2(R))
/// ```
///
/// where `R ≥ 1` is the simulation-reuse factor of the design's dominant
/// patterns (1 for fully irregular artwork) and `q` reflects the growing
/// interaction neighborhood.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionModel {
    sigma_ref: f64,
    reference_lambda_um: f64,
    lambda_exponent: f64,
    regularity_gain: f64,
}

impl PredictionModel {
    /// Creates a prediction model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if any parameter is non-finite, or if
    /// `sigma_ref`/`lambda_exponent` are not strictly positive, or
    /// `regularity_gain` is negative.
    pub fn new(
        sigma_ref: f64,
        reference_lambda: FeatureSize,
        lambda_exponent: f64,
        regularity_gain: f64,
    ) -> Result<Self, UnitError> {
        for (name, v) in [
            ("reference sigma", sigma_ref),
            ("lambda exponent", lambda_exponent),
        ] {
            if !v.is_finite() {
                return Err(UnitError::NonFinite { quantity: name });
            }
            if v <= 0.0 {
                return Err(UnitError::NotPositive { quantity: name, value: v });
            }
        }
        if !regularity_gain.is_finite() || regularity_gain < 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "regularity gain",
                value: regularity_gain,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        Ok(PredictionModel {
            sigma_ref,
            reference_lambda_um: reference_lambda.microns(),
            lambda_exponent,
            regularity_gain,
        })
    }

    /// A calibration representative of late-1990s flows: 8 % relative
    /// error at 0.25 µm for irregular artwork, neighborhood exponent 0.7,
    /// and a regularity gain of 0.35 per doubling of pattern reuse.
    #[must_use]
    pub fn nanometer_default() -> Self {
        PredictionModel::new(
            0.08, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            FeatureSize::from_microns(0.25).expect("constant is valid"), // nanocost-audit: allow(R1, R3, reason = "documented invariant: constant is valid")
            0.7, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            0.35, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
        )
        .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }

    /// The prediction-error standard deviation at node `lambda` for a
    /// design whose dominant patterns have simulation-reuse factor
    /// `reuse_factor` (≥ 1; values below one are clamped).
    #[must_use]
    pub fn sigma(&self, lambda: FeatureSize, reuse_factor: f64) -> f64 {
        let r = reuse_factor.max(1.0);
        let node = (self.reference_lambda_um / lambda.microns()).powf(self.lambda_exponent);
        self.sigma_ref * node / (1.0 + self.regularity_gain * r.log2())
    }

    /// Draws one relative prediction error (zero-mean normal with
    /// [`PredictionModel::sigma`]).
    pub fn sample_error(
        &self,
        sampler: &mut Sampler,
        lambda: FeatureSize,
        reuse_factor: f64,
    ) -> f64 {
        sampler.normal(0.0, self.sigma(lambda, reuse_factor))
    }
}

impl Default for PredictionModel {
    fn default() -> Self {
        PredictionModel::nanometer_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(x: f64) -> FeatureSize {
        FeatureSize::from_microns(x).unwrap()
    }

    #[test]
    fn error_grows_as_lambda_shrinks() {
        let m = PredictionModel::nanometer_default();
        let s025 = m.sigma(um(0.25), 1.0);
        let s007 = m.sigma(um(0.07), 1.0);
        assert!((s025 - 0.08).abs() < 1e-12);
        assert!(s007 > 1.8 * s025, "{s007} vs {s025}");
    }

    #[test]
    fn regularity_shrinks_the_error() {
        let m = PredictionModel::nanometer_default();
        let irregular = m.sigma(um(0.1), 1.0);
        let regular = m.sigma(um(0.1), 256.0); // 8 doublings
        assert!(regular < irregular / 3.0, "{regular} vs {irregular}");
    }

    #[test]
    fn reuse_below_one_is_clamped() {
        let m = PredictionModel::nanometer_default();
        assert_eq!(m.sigma(um(0.25), 0.5), m.sigma(um(0.25), 1.0));
    }

    #[test]
    fn sampled_errors_have_requested_spread() {
        let m = PredictionModel::nanometer_default();
        let mut s = Sampler::seeded(17);
        let lambda = um(0.13);
        let sigma = m.sigma(lambda, 4.0);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| m.sample_error(&mut s, lambda, 4.0))
            .collect();
        let est = nanocost_numeric::summarize(&xs).unwrap();
        assert!(est.mean.abs() < sigma * 0.05);
        assert!((est.std_dev - sigma).abs() < sigma * 0.05);
    }

    #[test]
    fn validation() {
        let l = um(0.25);
        assert!(PredictionModel::new(0.0, l, 0.7, 0.3).is_err());
        assert!(PredictionModel::new(0.08, l, 0.0, 0.3).is_err());
        assert!(PredictionModel::new(0.08, l, 0.7, -0.1).is_err());
    }
}
