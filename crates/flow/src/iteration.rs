//! The design-iteration (timing-closure) simulator.
//!
//! §2.4's causal story: design cost ∝ number of design iterations, and the
//! iteration count is set by how well early-stage predictions match
//! post-layout reality. This module simulates that loop directly:
//!
//! 1. the team commits to a target with some *tolerance* (slack) — tight
//!    for aggressive densities near `s_d0`, generous for relaxed ones;
//! 2. each iteration realizes a prediction error drawn from the
//!    [`PredictionModel`](crate::PredictionModel); if the error exceeds the
//!    tolerance the iteration fails and the team retries with better
//!    information (the error spread contracts by a learning factor);
//! 3. the project closes when an iteration lands inside the tolerance.

use nanocost_numeric::{McConfig, Sampler};
use nanocost_trace::{counter, provenance, span};
use nanocost_units::{DecompressionIndex, FeatureSize, UnitError};

use crate::predictor::PredictionModel;

/// Timing-closure loop simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosureSimulator {
    prediction: PredictionModel,
    /// Best-possible density: tolerance vanishes as `s_d → s_d0`.
    sd0: f64,
    /// Relative tolerance available to an unconstrained (very sparse)
    /// design.
    base_tolerance: f64,
    /// Per-failed-iteration contraction of the error spread (learning).
    learning_factor: f64,
    /// Iteration budget before a project is abandoned (counts as the
    /// budget itself — a censored observation).
    max_iterations: usize,
}

impl ClosureSimulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] unless `sd0 > 0`, `base_tolerance > 0`,
    /// `learning_factor ∈ (0, 1]`, and `max_iterations > 0`.
    pub fn new(
        prediction: PredictionModel,
        sd0: f64,
        base_tolerance: f64,
        learning_factor: f64,
        max_iterations: usize,
    ) -> Result<Self, UnitError> {
        for (name, v) in [("s_d0", sd0), ("base tolerance", base_tolerance)] {
            if !v.is_finite() {
                return Err(UnitError::NonFinite { quantity: name });
            }
            if v <= 0.0 {
                return Err(UnitError::NotPositive { quantity: name, value: v });
            }
        }
        if !learning_factor.is_finite() || learning_factor <= 0.0 || learning_factor > 1.0 {
            return Err(UnitError::OutOfRange {
                quantity: "learning factor",
                value: learning_factor,
                min: 0.0,
                max: 1.0,
            });
        }
        if max_iterations == 0 {
            return Err(UnitError::NotPositive {
                quantity: "iteration budget",
                value: 0.0,
            });
        }
        Ok(ClosureSimulator {
            prediction,
            sd0,
            base_tolerance,
            learning_factor,
            max_iterations,
        })
    }

    /// A default calibration: the default [`PredictionModel`],
    /// `s_d0 = 100`, 20 % base tolerance, 15 % learning per spin, and a
    /// 50-iteration budget.
    #[must_use]
    pub fn nanometer_default() -> Self {
        ClosureSimulator::new(PredictionModel::nanometer_default(), 100.0, 0.20, 0.85, 50) // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }

    /// The relative tolerance available at density `sd`:
    /// `base · (1 − s_d0/s_d)`, vanishing as the design approaches the
    /// best-possible density and saturating at `base` for sparse designs.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `sd <= s_d0`.
    pub fn tolerance(&self, sd: DecompressionIndex) -> Result<f64, UnitError> {
        let s = sd.squares();
        if s <= self.sd0 {
            return Err(UnitError::OutOfRange {
                quantity: "decompression index s_d",
                value: s,
                min: self.sd0,
                max: f64::INFINITY,
            });
        }
        Ok(self.base_tolerance * (1.0 - self.sd0 / s))
    }

    /// Simulates one project: the number of iterations until closure (or
    /// the budget, for abandoned projects).
    ///
    /// # Errors
    ///
    /// As [`ClosureSimulator::tolerance`].
    pub fn simulate_project(
        &self,
        sampler: &mut Sampler,
        lambda: FeatureSize,
        sd: DecompressionIndex,
        reuse_factor: f64,
    ) -> Result<usize, UnitError> {
        let tolerance = self.tolerance(sd)?;
        let mut spread_scale = 1.0;
        for iteration in 1..=self.max_iterations {
            let error = self.prediction.sample_error(sampler, lambda, reuse_factor) * spread_scale;
            if error.abs() <= tolerance {
                return Ok(iteration);
            }
            spread_scale *= self.learning_factor;
        }
        Ok(self.max_iterations)
    }

    /// Mean iterations-to-closure over a Monte-Carlo ensemble.
    ///
    /// # Errors
    ///
    /// As [`ClosureSimulator::tolerance`], or if `config.trials` is zero.
    pub fn mean_iterations(
        &self,
        config: McConfig,
        lambda: FeatureSize,
        sd: DecompressionIndex,
        reuse_factor: f64,
    ) -> Result<f64, UnitError> {
        // Surface the domain error before burning trials.
        self.tolerance(sd)?;
        let _span = span!(
            "flow.iteration.mean_iterations",
            sd = sd.squares(),
            lambda_um = lambda.microns(),
            reuse_factor = reuse_factor,
            trials = config.trials,
        );
        let mut sampler = config.sampler();
        let mut total = 0usize;
        let trials = config.trials.max(1);
        for _ in 0..trials {
            total += self.simulate_project(&mut sampler, lambda, sd, reuse_factor)?;
            counter!("flow.iteration.projects", 1);
        }
        let mean = total as f64 / trials as f64;
        provenance!(
            equation: Eq6,
            function: "nanocost_flow::iteration::ClosureSimulator::mean_iterations",
            inputs: [sd = sd.squares(), lambda_um = lambda.microns(), reuse_factor = reuse_factor],
            outputs: [mean_iterations = mean],
        );
        Ok(mean)
    }
}

impl Default for ClosureSimulator {
    fn default() -> Self {
        ClosureSimulator::nanometer_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(x: f64) -> FeatureSize {
        FeatureSize::from_microns(x).unwrap()
    }

    fn sd(v: f64) -> DecompressionIndex {
        DecompressionIndex::new(v).unwrap()
    }

    fn mc(seed: u64) -> McConfig {
        McConfig { seed, trials: 400 }
    }

    #[test]
    fn tolerance_shape_matches_paper_story() {
        let sim = ClosureSimulator::nanometer_default();
        let tight = sim.tolerance(sd(105.0)).unwrap();
        let loose = sim.tolerance(sd(1000.0)).unwrap();
        assert!(tight < 0.02);
        assert!(loose > 0.15);
        assert!(sim.tolerance(sd(100.0)).is_err());
    }

    #[test]
    fn denser_targets_need_more_iterations() {
        let sim = ClosureSimulator::nanometer_default();
        let relaxed = sim.mean_iterations(mc(1), um(0.25), sd(500.0), 1.0).unwrap();
        let aggressive = sim.mean_iterations(mc(1), um(0.25), sd(115.0), 1.0).unwrap();
        assert!(
            aggressive > 1.5 * relaxed,
            "aggressive {aggressive} vs relaxed {relaxed}"
        );
    }

    #[test]
    fn smaller_nodes_need_more_iterations() {
        let sim = ClosureSimulator::nanometer_default();
        let old = sim.mean_iterations(mc(2), um(0.35), sd(250.0), 1.0).unwrap();
        let new = sim.mean_iterations(mc(2), um(0.07), sd(250.0), 1.0).unwrap();
        assert!(new > old, "new {new} vs old {old}");
    }

    #[test]
    fn regularity_cuts_iterations() {
        // §3.2's claim, quantified: high pattern reuse closes faster.
        let sim = ClosureSimulator::nanometer_default();
        let irregular = sim.mean_iterations(mc(3), um(0.1), sd(150.0), 1.0).unwrap();
        let regular = sim.mean_iterations(mc(3), um(0.1), sd(150.0), 500.0).unwrap();
        assert!(
            regular < irregular * 0.75,
            "regular {regular} vs irregular {irregular}"
        );
    }

    #[test]
    fn iterations_bounded_by_budget() {
        let sim = ClosureSimulator::new(
            PredictionModel::nanometer_default(),
            100.0,
            1e-6, // absurdly tight: nothing ever closes
            1.0,  // no learning
            7,
        )
        .unwrap();
        let mut s = Sampler::seeded(0);
        let n = sim.simulate_project(&mut s, um(0.25), sd(101.0), 1.0).unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn determinism_per_seed() {
        let sim = ClosureSimulator::nanometer_default();
        let a = sim.mean_iterations(mc(9), um(0.18), sd(200.0), 4.0).unwrap();
        let b = sim.mean_iterations(mc(9), um(0.18), sd(200.0), 4.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constructor_validation() {
        let p = PredictionModel::nanometer_default();
        assert!(ClosureSimulator::new(p, 0.0, 0.2, 0.9, 10).is_err());
        assert!(ClosureSimulator::new(p, 100.0, 0.0, 0.9, 10).is_err());
        assert!(ClosureSimulator::new(p, 100.0, 0.2, 0.0, 10).is_err());
        assert!(ClosureSimulator::new(p, 100.0, 0.2, 1.1, 10).is_err());
        assert!(ClosureSimulator::new(p, 100.0, 0.2, 0.9, 0).is_err());
    }
}
