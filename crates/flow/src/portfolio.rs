//! Cross-product reuse: amortizing pre-characterized blocks over a
//! product family.
//!
//! §3.2's prescription is regularity "across single products or entire
//! family of products … this way one will be able to increase an
//! effective volume used in the computation of `C_DE`". This module
//! prices exactly that: a portfolio of products built from a shared,
//! experimentally pre-characterized block library pays the
//! characterization cost once, and each product's remaining effort covers
//! only its unique content.

use nanocost_units::{DecompressionIndex, Dollars, TransistorCount, UnitError};

use crate::effort::DesignEffortModel;

/// One product in the family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortfolioProduct {
    /// Design size.
    pub transistors: TransistorCount,
    /// Target density.
    pub sd: DecompressionIndex,
    /// Fraction of the design built from the shared block library, in
    /// `[0, 1]`.
    pub shared_fraction: f64,
}

impl PortfolioProduct {
    /// Creates a product description.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `shared_fraction` is outside
    /// `[0, 1]` or non-finite.
    pub fn new(
        transistors: TransistorCount,
        sd: DecompressionIndex,
        shared_fraction: f64,
    ) -> Result<Self, UnitError> {
        if !shared_fraction.is_finite() || !(0.0..=1.0).contains(&shared_fraction) {
            return Err(UnitError::OutOfRange {
                quantity: "shared fraction",
                value: shared_fraction,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(PortfolioProduct {
            transistors,
            sd,
            shared_fraction,
        })
    }
}

/// The family-level design-cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortfolioModel {
    /// The per-design effort model for unique content.
    pub effort: DesignEffortModel,
    /// One-time cost of building and experimentally pre-characterizing
    /// the shared block library.
    pub library_cost: Dollars,
    /// Integration discount on shared content: designing *with* the
    /// library still costs this fraction of from-scratch effort
    /// (floorplanning, hookup, verification), in `[0, 1]`.
    pub integration_fraction: f64,
}

impl PortfolioModel {
    /// Creates a portfolio model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the library cost is negative or the
    /// integration fraction is outside `[0, 1]`.
    pub fn new(
        effort: DesignEffortModel,
        library_cost: Dollars,
        integration_fraction: f64,
    ) -> Result<Self, UnitError> {
        if library_cost.amount() < 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "library cost",
                value: library_cost.amount(),
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        if !integration_fraction.is_finite() || !(0.0..=1.0).contains(&integration_fraction) {
            return Err(UnitError::OutOfRange {
                quantity: "integration fraction",
                value: integration_fraction,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(PortfolioModel {
            effort,
            library_cost,
            integration_fraction,
        })
    }

    /// A representative configuration: paper-default effort, a $25 M
    /// library program, 20 % integration cost on shared content.
    #[must_use]
    pub fn nanometer_default() -> Self {
        PortfolioModel::new(
            DesignEffortModel::paper_defaults(),
            Dollars::from_millions(25.0), // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            0.20, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
        )
        .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }

    /// Design cost of one product inside the family (library cost not
    /// included): unique content at full eq.-6 effort, shared content at
    /// the integration fraction.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if the product's `sd` is at or below the
    /// effort model's `s_d0`.
    pub fn product_cost(&self, product: &PortfolioProduct) -> Result<Dollars, UnitError> {
        let full = self.effort.design_cost(product.transistors, product.sd)?;
        let unique = full * (1.0 - product.shared_fraction);
        let shared = full * (product.shared_fraction * self.integration_fraction);
        Ok(unique + shared)
    }

    /// Total family cost: library program plus every product's cost.
    ///
    /// # Errors
    ///
    /// As [`PortfolioModel::product_cost`].
    pub fn family_cost(&self, products: &[PortfolioProduct]) -> Result<Dollars, UnitError> {
        let mut total = self.library_cost;
        for p in products {
            total += self.product_cost(p)?;
        }
        Ok(total)
    }

    /// Cost of the same products designed independently, from scratch,
    /// with no library (the paper's status quo).
    ///
    /// # Errors
    ///
    /// As [`PortfolioModel::product_cost`].
    pub fn from_scratch_cost(&self, products: &[PortfolioProduct]) -> Result<Dollars, UnitError> {
        let mut total = Dollars::ZERO;
        for p in products {
            total += self.effort.design_cost(p.transistors, p.sd)?;
        }
        Ok(total)
    }

    /// The smallest family size at which the library program pays for
    /// itself, assuming `prototype` repeated; `None` if it never does
    /// within `max_products`.
    ///
    /// # Errors
    ///
    /// As [`PortfolioModel::product_cost`].
    pub fn breakeven_products(
        &self,
        prototype: &PortfolioProduct,
        max_products: usize,
    ) -> Result<Option<usize>, UnitError> {
        let scratch = self.effort.design_cost(prototype.transistors, prototype.sd)?;
        let with_library = self.product_cost(prototype)?;
        let saving_per_product = scratch - with_library;
        if saving_per_product.amount() <= 0.0 {
            return Ok(None);
        }
        for k in 1..=max_products {
            if saving_per_product * k as f64 >= self.library_cost {
                return Ok(Some(k));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product(shared: f64) -> PortfolioProduct {
        PortfolioProduct::new(
            TransistorCount::from_millions(10.0),
            DecompressionIndex::new(200.0).unwrap(),
            shared,
        )
        .unwrap()
    }

    #[test]
    fn fully_unique_product_costs_full_effort() {
        let m = PortfolioModel::nanometer_default();
        let p = product(0.0);
        let full = m.effort.design_cost(p.transistors, p.sd).unwrap();
        assert_eq!(m.product_cost(&p).unwrap(), full);
    }

    #[test]
    fn shared_content_is_discounted_by_the_integration_fraction() {
        let m = PortfolioModel::nanometer_default();
        let p = product(1.0);
        let full = m.effort.design_cost(p.transistors, p.sd).unwrap();
        let cost = m.product_cost(&p).unwrap();
        assert!((cost.amount() - full.amount() * 0.2).abs() < 1e-6);
    }

    #[test]
    fn library_pays_for_itself_on_a_small_family() {
        // 10M-tr products at s_d 200 cost ≈ $39.8M from scratch; at 70%
        // shared the saving is ≈ $22M/product, so a $25M library breaks
        // even at the second product.
        let m = PortfolioModel::nanometer_default();
        let p = product(0.7);
        let breakeven = m.breakeven_products(&p, 10).unwrap();
        assert_eq!(breakeven, Some(2));
        // Family of three: library route cheaper than from-scratch.
        let family = vec![p, p, p];
        assert!(
            m.family_cost(&family).unwrap().amount()
                < m.from_scratch_cost(&family).unwrap().amount()
        );
    }

    #[test]
    fn one_off_products_do_not_justify_a_library() {
        let m = PortfolioModel::nanometer_default();
        let p = product(0.7);
        let family = vec![p];
        assert!(
            m.family_cost(&family).unwrap().amount()
                > m.from_scratch_cost(&family).unwrap().amount()
        );
        // And with nothing shared, breakeven never arrives.
        assert_eq!(m.breakeven_products(&product(0.0), 100).unwrap(), None);
    }

    #[test]
    fn more_sharing_means_cheaper_products() {
        let m = PortfolioModel::nanometer_default();
        let lo = m.product_cost(&product(0.3)).unwrap();
        let hi = m.product_cost(&product(0.9)).unwrap();
        assert!(hi.amount() < lo.amount());
    }

    #[test]
    fn validation() {
        let n = TransistorCount::from_millions(1.0);
        let sd = DecompressionIndex::new(200.0).unwrap();
        assert!(PortfolioProduct::new(n, sd, -0.1).is_err());
        assert!(PortfolioProduct::new(n, sd, 1.1).is_err());
        let e = DesignEffortModel::paper_defaults();
        assert!(PortfolioModel::new(e, Dollars::new(-1.0), 0.2).is_err());
        assert!(PortfolioModel::new(e, Dollars::ZERO, 1.5).is_err());
    }
}
