//! Schedules and market windows: the *time* cost of design iterations.
//!
//! §2.2.2 attributes the industry's worsening densities to "the time to
//! market pressure". Cost models alone cannot express that force — a
//! denser design is always cheaper per transistor at high volume — so
//! this module prices *lateness*: every design iteration consumes
//! calendar weeks, and the achievable selling price erodes while the
//! product is not on the market.

use nanocost_units::{Dollars, UnitError};

/// Calendar model of a design project.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignSchedule {
    /// Weeks of up-front work before the first iteration completes
    /// (architecture, RTL, verification setup).
    pub base_weeks: f64,
    /// Weeks consumed by each full design iteration.
    pub weeks_per_iteration: f64,
}

impl DesignSchedule {
    /// Creates a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] unless both durations are strictly positive
    /// and finite.
    pub fn new(base_weeks: f64, weeks_per_iteration: f64) -> Result<Self, UnitError> {
        for (name, v) in [
            ("base weeks", base_weeks),
            ("weeks per iteration", weeks_per_iteration),
        ] {
            if !v.is_finite() {
                return Err(UnitError::NonFinite { quantity: name });
            }
            if v <= 0.0 {
                return Err(UnitError::NotPositive { quantity: name, value: v });
            }
        }
        Ok(DesignSchedule {
            base_weeks,
            weeks_per_iteration,
        })
    }

    /// A representative late-1990s MPU-class schedule: 52 weeks of base
    /// work, 6 weeks per iteration.
    #[must_use]
    pub fn nanometer_default() -> Self {
        DesignSchedule::new(52.0, 6.0).expect("constants are valid") // nanocost-audit: allow(R1, R3, reason = "documented invariant: constants are valid")
    }

    /// Calendar weeks to market entry for a project that needed
    /// `iterations` spins.
    #[must_use]
    pub fn time_to_market_weeks(&self, iterations: f64) -> f64 {
        self.base_weeks + self.weeks_per_iteration * iterations.max(0.0)
    }
}

impl Default for DesignSchedule {
    fn default() -> Self {
        DesignSchedule::nanometer_default()
    }
}

/// Market price erosion: the unit price available to a product entering
/// the market `t` weeks after project start,
/// `price(t) = launch_price · 2^(−t / price_halving_weeks)`.
///
/// Semiconductor ASPs decay roughly exponentially within a product
/// generation; the halving time is the single knob controlling how hard
/// time-to-market pressure bites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketModel {
    launch_price: Dollars,
    price_halving_weeks: f64,
}

impl MarketModel {
    /// Creates a market model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] unless the price and halving time are
    /// strictly positive and finite.
    pub fn new(launch_price: Dollars, price_halving_weeks: f64) -> Result<Self, UnitError> {
        if launch_price.amount() <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "launch price",
                value: launch_price.amount(),
            });
        }
        if !price_halving_weeks.is_finite() {
            return Err(UnitError::NonFinite {
                quantity: "price halving time",
            });
        }
        if price_halving_weeks <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "price halving time",
                value: price_halving_weeks,
            });
        }
        Ok(MarketModel {
            launch_price,
            price_halving_weeks,
        })
    }

    /// A competitive MPU-class market: $250 at concept time, halving every
    /// 52 weeks.
    #[must_use]
    pub fn competitive_mpu() -> Self {
        MarketModel::new(Dollars::new(250.0), 52.0).expect("constants are valid") // nanocost-audit: allow(R1, R3, reason = "documented invariant: constants are valid")
    }

    /// A slow-moving embedded market: $40, halving every 3 years — weak
    /// time pressure.
    #[must_use]
    pub fn slow_embedded() -> Self {
        MarketModel::new(Dollars::new(40.0), 156.0).expect("constants are valid") // nanocost-audit: allow(R1, R3, reason = "documented invariant: constants are valid")
    }

    /// The unit price available at market entry `t_weeks` after project
    /// start.
    #[must_use]
    pub fn unit_price(&self, t_weeks: f64) -> Dollars {
        self.launch_price * 2f64.powf(-t_weeks.max(0.0) / self.price_halving_weeks)
    }

    /// The halving time in weeks.
    #[must_use]
    pub fn price_halving_weeks(&self) -> f64 {
        self.price_halving_weeks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_to_market_is_affine_in_iterations() {
        let s = DesignSchedule::nanometer_default();
        assert_eq!(s.time_to_market_weeks(0.0), 52.0);
        assert_eq!(s.time_to_market_weeks(4.0), 76.0);
        // Negative iteration counts are clamped (defensive).
        assert_eq!(s.time_to_market_weeks(-3.0), 52.0);
    }

    #[test]
    fn price_halves_at_the_halving_time() {
        let m = MarketModel::competitive_mpu();
        let p0 = m.unit_price(0.0);
        let p52 = m.unit_price(52.0);
        assert!((p0.amount() - 250.0).abs() < 1e-12);
        assert!((p52.amount() - 125.0).abs() < 1e-9);
        // And again at two halving times.
        assert!((m.unit_price(104.0).amount() - 62.5).abs() < 1e-9);
    }

    #[test]
    fn slow_market_erodes_gently() {
        let fast = MarketModel::competitive_mpu();
        let slow = MarketModel::slow_embedded();
        let retention = |m: &MarketModel| m.unit_price(52.0).amount() / m.unit_price(0.0).amount();
        assert!(retention(&slow) > retention(&fast));
    }

    #[test]
    fn validation() {
        assert!(DesignSchedule::new(0.0, 6.0).is_err());
        assert!(DesignSchedule::new(52.0, -1.0).is_err());
        assert!(MarketModel::new(Dollars::ZERO, 52.0).is_err());
        assert!(MarketModel::new(Dollars::new(100.0), 0.0).is_err());
    }
}
