//! Calibration: recover eq.-6-shaped parameters from simulated data.
//!
//! The paper's (A0, p1, p2) came from "a limited set of real life
//! design/cost data" that is not public. Our substitution: run the
//! iteration simulator over a density sweep, convert iteration counts to
//! dollars with the team model, and fit `cost = c · (s_d − s_d0)^(−p2)` —
//! demonstrating that the simulated design process *has* the functional
//! form eq. 6 asserts.

use nanocost_numeric::{power_law_fit, McConfig, NumericError, PowerLawFit};
use nanocost_units::{DecompressionIndex, FeatureSize, TransistorCount, UnitError};

use crate::iteration::ClosureSimulator;
use crate::team::DesignTeamModel;

/// One calibration observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Target density.
    pub sd: f64,
    /// Mean iterations to closure.
    pub mean_iterations: f64,
    /// Mean project cost in dollars.
    pub mean_cost: f64,
}

/// The recovered eq.-6 shape.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationResult {
    /// The fitted `cost ≈ c·(s_d − s_d0)^(−p2)` exponent, reported
    /// positively (so comparable with the paper's `p2 = 1.2`).
    pub p2: f64,
    /// The fitted multiplier (the paper's `A0·N_tr^p1` lump).
    pub coefficient: f64,
    /// R² of the log-log fit.
    pub r_squared: f64,
    /// The observations the fit used.
    pub points: Vec<CalibrationPoint>,
}

/// Errors from calibration: either the simulation domain or the fit can
/// fail.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// A simulated density was at or below `s_d0`.
    Domain(UnitError),
    /// The regression failed (degenerate sweep).
    Fit(NumericError),
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrateError::Domain(e) => write!(f, "calibration domain error: {e}"),
            CalibrateError::Fit(e) => write!(f, "calibration fit error: {e}"),
        }
    }
}

impl std::error::Error for CalibrateError {}

impl From<UnitError> for CalibrateError {
    fn from(e: UnitError) -> Self {
        CalibrateError::Domain(e)
    }
}

impl From<NumericError> for CalibrateError {
    fn from(e: NumericError) -> Self {
        CalibrateError::Fit(e)
    }
}

/// Sweeps the simulator over `sd_values` and fits the eq.-6 shape.
///
/// `sd0` must match the simulator's own divergence point for the fit to be
/// meaningful.
///
/// # Errors
///
/// Returns [`CalibrateError`] if any density is at or below `sd0`, or the
/// sweep has fewer than two points.
#[allow(clippy::too_many_arguments)] // a calibration sweep has this many knobs
pub fn calibrate_effort_shape(
    simulator: &ClosureSimulator,
    team: &DesignTeamModel,
    config: McConfig,
    lambda: FeatureSize,
    transistors: TransistorCount,
    reuse_factor: f64,
    sd0: f64,
    sd_values: &[f64],
) -> Result<CalibrationResult, CalibrateError> {
    let mut points = Vec::with_capacity(sd_values.len());
    for (k, &sd) in sd_values.iter().enumerate() {
        let density = DecompressionIndex::new(sd)?;
        let cfg = McConfig {
            seed: config.seed.wrapping_add(k as u64),
            trials: config.trials,
        };
        let iters = simulator.mean_iterations(cfg, lambda, density, reuse_factor)?;
        let cost = team.project_cost(transistors, iters);
        points.push(CalibrationPoint {
            sd,
            mean_iterations: iters,
            mean_cost: cost.amount(),
        });
    }
    let margins: Vec<f64> = points.iter().map(|p| p.sd - sd0).collect();
    let costs: Vec<f64> = points.iter().map(|p| p.mean_cost).collect();
    let fit: PowerLawFit = power_law_fit(&margins, &costs)?;
    Ok(CalibrationResult {
        p2: -fit.exponent,
        coefficient: fit.coefficient,
        r_squared: fit.r_squared,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_design_process_has_eq6_shape() {
        let sim = ClosureSimulator::nanometer_default();
        let team = DesignTeamModel::nanometer_default();
        let result = calibrate_effort_shape(
            &sim,
            &team,
            McConfig { seed: 42, trials: 600 },
            FeatureSize::from_microns(0.18).unwrap(),
            TransistorCount::from_millions(10.0),
            1.0,
            100.0,
            &[110.0, 130.0, 160.0, 200.0, 260.0, 340.0, 450.0, 600.0],
        )
        .unwrap();
        // Cost falls with margin: a decisively positive recovered p2 in the
        // broad vicinity of the paper's 1.2.
        assert!(
            (0.1..2.5).contains(&result.p2),
            "recovered p2 = {}",
            result.p2
        );
        assert!(result.r_squared > 0.7, "R² = {}", result.r_squared);
        // Monotone: tighter density, higher cost.
        for w in result.points.windows(2) {
            assert!(w[0].mean_cost >= w[1].mean_cost * 0.95);
        }
    }

    #[test]
    fn regular_designs_calibrate_cheaper() {
        let sim = ClosureSimulator::nanometer_default();
        let team = DesignTeamModel::nanometer_default();
        let run = |reuse: f64| {
            calibrate_effort_shape(
                &sim,
                &team,
                McConfig { seed: 7, trials: 300 },
                FeatureSize::from_microns(0.13).unwrap(),
                TransistorCount::from_millions(10.0),
                reuse,
                100.0,
                &[120.0, 180.0, 300.0, 500.0],
            )
            .unwrap()
        };
        let irregular = run(1.0);
        let regular = run(200.0);
        let total = |r: &CalibrationResult| -> f64 { r.points.iter().map(|p| p.mean_cost).sum() };
        assert!(total(&regular) < total(&irregular));
    }

    #[test]
    fn domain_error_surfaces() {
        let sim = ClosureSimulator::nanometer_default();
        let team = DesignTeamModel::nanometer_default();
        let err = calibrate_effort_shape(
            &sim,
            &team,
            McConfig { seed: 1, trials: 10 },
            FeatureSize::from_microns(0.25).unwrap(),
            TransistorCount::from_millions(1.0),
            1.0,
            100.0,
            &[90.0, 200.0],
        )
        .unwrap_err();
        assert!(matches!(err, CalibrateError::Domain(_)));
    }
}
