//! IC design-process economics for the `nanocost` workspace.
//!
//! Implements both sides of the paper's §2.4/§3.2 argument:
//!
//! * **top-down** — [`DesignEffortModel`], the closed-form eq. 6
//!   (`C_DE = A0·N_tr^p1/(s_d − s_d0)^p2`) with the paper's constants;
//! * **bottom-up** — the mechanism eq. 6 summarizes:
//!   [`PredictionModel`] (pre-layout prediction error growing as λ shrinks,
//!   falling with pattern reuse), the [`ClosureSimulator`] iteration loop,
//!   the [`DesignTeamModel`] pricing each spin, and
//!   [`calibrate_effort_shape`] which fits the simulated process back to
//!   the eq.-6 form, recovering a p2-shaped exponent;
//! * **physical grounding** — [`DelayStudy`] builds the §2.4 motivating
//!   example concretely: Elmore delays of random nets, HPWL-based
//!   pre-layout estimates, and coupling from aggressors inside the
//!   lithography interaction radius, yielding the σ(λ) the abstract
//!   model parameterizes;
//! * **time-to-market** — [`DesignSchedule`] and [`MarketModel`] price
//!   lateness (ASP erosion), the force §2.2.2 blames for worsening
//!   industrial densities;
//! * **cross-product reuse** — [`PortfolioModel`] amortizes a
//!   pre-characterized block library over a product family, §3.2's
//!   "across many products" economics with a break-even calculator;
//! * **the regularity bridge** — [`RegularityEffect`] turns a measured
//!   layout [`RegularityReport`](nanocost_layout::RegularityReport) into a
//!   simulation-reuse factor and an iteration-count ratio, quantifying the
//!   paper's closing prescription.
//!
//! # Example
//!
//! ```
//! use nanocost_flow::DesignEffortModel;
//! use nanocost_units::{DecompressionIndex, TransistorCount};
//!
//! let model = DesignEffortModel::paper_defaults();
//! let cost = model.design_cost(
//!     TransistorCount::from_millions(10.0),
//!     DecompressionIndex::new(200.0)?,
//! )?;
//! assert!(cost.to_millions() > 30.0 && cost.to_millions() < 50.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calibrate;
mod effort;
mod interconnect;
mod iteration;
mod portfolio;
mod predictor;
mod regularity_link;
mod schedule;
mod team;

pub use calibrate::{calibrate_effort_shape, CalibrateError, CalibrationPoint, CalibrationResult};
pub use effort::DesignEffortModel;
pub use interconnect::{elmore_delay, DelayErrorReport, DelayStudy, Net};
pub use iteration::ClosureSimulator;
pub use portfolio::{PortfolioModel, PortfolioProduct};
pub use predictor::PredictionModel;
pub use regularity_link::RegularityEffect;
pub use schedule::{DesignSchedule, MarketModel};
pub use team::DesignTeamModel;

#[cfg(test)]
mod proptests {
    //! Randomized property checks driven by the in-tree [`Rng64`] stream so
    //! the suite runs fully offline (the external `proptest` crate is gone).

    use super::*;
    use nanocost_numeric::Rng64;
    use nanocost_units::{DecompressionIndex, TransistorCount};

    const CASES: usize = 256;

    #[test]
    fn effort_monotone_decreasing_in_sd() {
        let mut r = Rng64::seed_from_u64(0x31);
        for _ in 0..CASES {
            let sd = r.random_range(101.0f64..2000.0);
            let extra = r.random_range(1.0f64..500.0);
            let m = r.random_range(0.1f64..500.0);
            let model = DesignEffortModel::paper_defaults();
            let n = TransistorCount::from_millions(m);
            let tight = model.design_cost(n, DecompressionIndex::new(sd).unwrap()).unwrap();
            let loose = model.design_cost(n, DecompressionIndex::new(sd + extra).unwrap()).unwrap();
            assert!(loose.amount() < tight.amount());
        }
    }

    #[test]
    fn effort_monotone_increasing_in_transistors() {
        let mut r = Rng64::seed_from_u64(0x32);
        for _ in 0..CASES {
            let m = r.random_range(0.1f64..500.0);
            let factor = r.random_range(1.1f64..10.0);
            let model = DesignEffortModel::paper_defaults();
            let sd = DecompressionIndex::new(300.0).unwrap();
            let small = model.design_cost(TransistorCount::from_millions(m), sd).unwrap();
            let big = model
                .design_cost(TransistorCount::from_millions(m * factor), sd)
                .unwrap();
            assert!(big.amount() > small.amount());
        }
    }

    #[test]
    fn tolerance_is_bounded_by_base() {
        let mut r = Rng64::seed_from_u64(0x33);
        for _ in 0..CASES {
            let sd = r.random_range(100.5f64..5000.0);
            let sim = ClosureSimulator::nanometer_default();
            let t = sim.tolerance(DecompressionIndex::new(sd).unwrap()).unwrap();
            assert!(t > 0.0 && t < 0.20);
        }
    }

    #[test]
    fn market_price_monotone_decreasing_in_time() {
        let mut r = Rng64::seed_from_u64(0x34);
        for _ in 0..CASES {
            let t1 = r.random_range(0.0f64..300.0);
            let dt = r.random_range(0.1f64..300.0);
            let m = MarketModel::competitive_mpu();
            assert!(m.unit_price(t1 + dt).amount() < m.unit_price(t1).amount());
        }
    }

    #[test]
    fn portfolio_sharing_never_raises_product_cost() {
        let mut r = Rng64::seed_from_u64(0x35);
        for _ in 0..CASES {
            let shared = r.random_range(0.0f64..=1.0);
            let extra = r.random_range(0.01f64..0.5);
            let model = PortfolioModel::nanometer_default();
            let product = |f: f64| {
                PortfolioProduct::new(
                    TransistorCount::from_millions(10.0),
                    DecompressionIndex::new(250.0).unwrap(),
                    f,
                )
                .unwrap()
            };
            let hi = (shared + extra).min(1.0);
            let lo_cost = model.product_cost(&product(shared)).unwrap();
            let hi_cost = model.product_cost(&product(hi)).unwrap();
            assert!(hi_cost.amount() <= lo_cost.amount() + 1e-9);
        }
    }

    #[test]
    fn sigma_positive_and_monotone_in_reuse() {
        let mut r = Rng64::seed_from_u64(0x36);
        for _ in 0..CASES {
            let um = r.random_range(0.03f64..1.0);
            let r1 = r.random_range(1.0f64..100.0);
            let bump = r.random_range(1.0f64..100.0);
            let p = PredictionModel::nanometer_default();
            let lambda = nanocost_units::FeatureSize::from_microns(um).unwrap();
            let lo = p.sigma(lambda, r1 + bump);
            let hi = p.sigma(lambda, r1);
            assert!(lo > 0.0);
            assert!(lo <= hi);
        }
    }
}
