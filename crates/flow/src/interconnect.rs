//! A concrete interconnect-delay substrate for the prediction-error story.
//!
//! §2.4's motivating example: "timing closure would be much easier … if it
//! were possible during logic synthesis to predict interconnect delays",
//! but the prediction is only accurate after placement and routing. This
//! module builds that situation physically:
//!
//! * random [`Net`]s with a source and sinks on a λ grid;
//! * pre-layout delay **estimate** from the half-perimeter wire length
//!   (HPWL) and a nominal detour factor — all a synthesis tool has;
//! * post-layout **actual** delay: Elmore delay of the routed length
//!   (sampled detour) plus a coupling term from aggressor wires inside the
//!   lithography/extraction interaction neighborhood — which grows, in λ
//!   units, as features shrink (see
//!   [`ProximityModel`](nanocost_fab::ProximityModel)).
//!
//! The measured relative-error spread is the physical ancestor of the
//! abstract [`PredictionModel`](crate::PredictionModel) the closure
//! simulator consumes.

use nanocost_fab::ProximityModel;
use nanocost_numeric::{summarize, Sampler, Summary};
use nanocost_trace::{metric_histogram, provenance, span};
use nanocost_units::{FeatureSize, UnitError};

/// A signal net: one source, one or more sinks, coordinates in λ.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Driver location.
    pub source: (f64, f64),
    /// Sink locations (non-empty).
    pub sinks: Vec<(f64, f64)>,
}

impl Net {
    /// Creates a net.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::NotPositive`] if `sinks` is empty.
    pub fn new(source: (f64, f64), sinks: Vec<(f64, f64)>) -> Result<Self, UnitError> {
        if sinks.is_empty() {
            return Err(UnitError::NotPositive {
                quantity: "sink count",
                value: 0.0,
            });
        }
        Ok(Net { source, sinks })
    }

    /// The half-perimeter wire length (HPWL) of the net's bounding box, in
    /// λ — the standard pre-placement length estimator.
    #[must_use]
    pub fn half_perimeter_length(&self) -> f64 {
        let mut min_x = self.source.0;
        let mut max_x = self.source.0;
        let mut min_y = self.source.1;
        let mut max_y = self.source.1;
        for &(x, y) in &self.sinks {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        (max_x - min_x) + (max_y - min_y)
    }
}

/// Distributed-RC (Elmore) delay of a wire of `length` λ on a process with
/// the given unit resistance and capacitance per λ:
/// `t = ½ · r · c · L²`.
#[must_use]
pub fn elmore_delay(length_lambda: f64, r_per_lambda: f64, c_per_lambda: f64) -> f64 {
    0.5 * r_per_lambda * c_per_lambda * length_lambda * length_lambda
}

/// Configuration of a delay-prediction study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayStudy {
    /// Placement-region side, in λ.
    pub region_lambda: f64,
    /// Nets to sample.
    pub nets: usize,
    /// Mean routed-length detour over HPWL (≈1.1–1.3 in practice).
    pub mean_detour: f64,
    /// Spread of the detour factor.
    pub detour_sigma: f64,
    /// Coupling-delay fraction contributed per aggressor wire within the
    /// interaction neighborhood.
    pub coupling_per_aggressor: f64,
    /// Aggressor wire density, wires per λ of neighborhood radius.
    pub aggressor_density: f64,
}

impl DelayStudy {
    /// A representative mid-1990s-to-nanometer configuration.
    #[must_use]
    pub fn nanometer_default() -> Self {
        DelayStudy {
            region_lambda: 2_000.0, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            nets: 2_000,
            mean_detour: 1.2, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            detour_sigma: 0.05, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            coupling_per_aggressor: 0.05, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            aggressor_density: 0.4, // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
        }
    }

    /// Runs the study at node `lambda`: samples nets, computes pre-layout
    /// estimates and post-layout actuals, and summarizes the relative
    /// delay-prediction error.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::NotPositive`] if the configuration is
    /// degenerate (zero nets or region).
    pub fn run(
        &self,
        sampler: &mut Sampler,
        proximity: &ProximityModel,
        lambda: FeatureSize,
    ) -> Result<DelayErrorReport, UnitError> {
        if self.nets == 0 || self.region_lambda <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "study size",
                value: 0.0,
            });
        }
        let _span = span!(
            "flow.interconnect.delay_study",
            lambda_um = lambda.microns(),
            nets = self.nets,
        );
        // Unit RC chosen so absolute delays are O(1); only relative errors
        // matter downstream.
        let (r, c) = (1.0e-3, 1.0e-3); // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
        let neighborhood = proximity.neighborhood_lambdas(lambda);
        let mean_aggressors = self.aggressor_density * neighborhood;
        let mut errors = Vec::with_capacity(self.nets);
        for _ in 0..self.nets {
            let net = self.sample_net(sampler);
            let hpwl = net.half_perimeter_length().max(1.0);
            // Pre-layout: nominal detour and *expected* coupling — a
            // calibrated estimator corrects for the mean aggressor count,
            // but the realized count is unknowable before routing.
            let estimate = elmore_delay(hpwl * self.mean_detour, r, c)
                * (1.0 + self.coupling_per_aggressor * mean_aggressors);
            // Post-layout: realized detour and realized aggressors.
            let detour = (self.mean_detour + sampler.normal(0.0, self.detour_sigma)).max(1.0);
            let routed = elmore_delay(hpwl * detour, r, c);
            let aggressors = sampler.poisson(mean_aggressors) as f64;
            let actual = routed * (1.0 + self.coupling_per_aggressor * aggressors);
            errors.push((actual - estimate) / estimate);
        }
        let summary = summarize(&errors).expect("non-empty by construction"); // nanocost-audit: allow(R1, reason = "documented invariant: non-empty by construction")
        metric_histogram!("flow.interconnect.error_sigma", summary.std_dev);
        // The measured spread is the physical origin of the eq. 6
        // prediction-error model that drives failed design iterations.
        provenance!(
            equation: Eq6,
            function: "nanocost_flow::interconnect::DelayStudy::run",
            inputs: [
                lambda_um = lambda.microns(),
                nets = self.nets,
                neighborhood_lambdas = neighborhood,
            ],
            outputs: [bias = summary.mean, sigma = summary.std_dev],
        );
        Ok(DelayErrorReport {
            lambda_um: lambda.microns(),
            neighborhood_lambdas: neighborhood,
            mean_aggressors,
            error: summary,
        })
    }

    fn sample_net(&self, sampler: &mut Sampler) -> Net {
        let coord = |s: &mut Sampler| {
            (
                s.uniform(0.0, self.region_lambda),
                s.uniform(0.0, self.region_lambda),
            )
        };
        let source = coord(sampler);
        let fanout = 1 + sampler.poisson(1.5) as usize; // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
        let sinks = (0..fanout).map(|_| coord(sampler)).collect();
        Net::new(source, sinks).expect("fanout is at least one") // nanocost-audit: allow(R1, reason = "documented invariant: fanout is at least one")
    }
}

impl Default for DelayStudy {
    fn default() -> Self {
        DelayStudy::nanometer_default()
    }
}

/// Result of a delay-prediction study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayErrorReport {
    /// Node studied, µm.
    pub lambda_um: f64,
    /// Interaction radius at that node, in λ.
    pub neighborhood_lambdas: f64,
    /// Mean aggressor count per net.
    pub mean_aggressors: f64,
    /// Relative prediction-error statistics (signed; positive = estimate
    /// was optimistic).
    pub error: Summary,
}

impl DelayErrorReport {
    /// The error spread (standard deviation) — the quantity the abstract
    /// [`PredictionModel`](crate::PredictionModel) parameterizes as σ(λ).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.error.std_dev
    }

    /// The residual bias of pre-layout estimation. Even a mean-calibrated
    /// estimator is slightly optimistic: Elmore delay is quadratic in the
    /// routed length, so detour *noise* raises the expected actual delay
    /// above the nominal-detour estimate (Jensen's inequality).
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.error.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(x: f64) -> FeatureSize {
        FeatureSize::from_microns(x).unwrap()
    }

    #[test]
    fn hpwl_matches_hand_computation() {
        let net = Net::new((0.0, 0.0), vec![(10.0, 5.0), (3.0, 8.0)]).unwrap();
        assert!((net.half_perimeter_length() - 18.0).abs() < 1e-12);
        assert!(Net::new((0.0, 0.0), vec![]).is_err());
    }

    #[test]
    fn elmore_delay_is_quadratic_in_length() {
        let d1 = elmore_delay(100.0, 1e-3, 1e-3);
        let d2 = elmore_delay(200.0, 1e-3, 1e-3);
        assert!((d2 / d1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn error_spread_grows_as_lambda_shrinks() {
        // The §2.4/§3.2 mechanism, measured on physical nets: the same
        // study at a smaller node has a wider prediction-error spread
        // because more aggressors fall inside the interaction radius.
        let study = DelayStudy::nanometer_default();
        let prox = ProximityModel::default();
        let mut s = Sampler::seeded(77);
        let at_035 = study.run(&mut s, &prox, um(0.35)).unwrap();
        let mut s = Sampler::seeded(77);
        let at_007 = study.run(&mut s, &prox, um(0.07)).unwrap();
        assert!(
            at_007.sigma() > at_035.sigma(),
            "σ(70nm) = {} should exceed σ(0.35µm) = {}",
            at_007.sigma(),
            at_035.sigma()
        );
        assert!(at_007.mean_aggressors > at_035.mean_aggressors);
    }

    #[test]
    fn estimates_are_systematically_optimistic() {
        // Jensen residual: quadratic delay in a noisy routed length makes
        // the mean actual delay exceed the nominal-detour estimate. The
        // term is small (σ²/m²), so the default 2 000 nets leave it inside
        // sampling noise for unlucky seeds; widen the sample instead of
        // hunting for a lucky one.
        let mut study = DelayStudy::nanometer_default();
        study.nets = 40_000;
        let prox = ProximityModel::default();
        let mut s = Sampler::seeded(5);
        let report = study.run(&mut s, &prox, um(0.13)).unwrap();
        assert!(report.bias() > 0.0, "bias {}", report.bias());
        // And it is the σ²_detour/m² Jensen term, i.e. small.
        assert!(report.bias() < 0.05, "bias {}", report.bias());
    }

    #[test]
    fn report_is_deterministic_per_seed() {
        let study = DelayStudy::nanometer_default();
        let prox = ProximityModel::default();
        let mut a = Sampler::seeded(9);
        let mut b = Sampler::seeded(9);
        let ra = study.run(&mut a, &prox, um(0.18)).unwrap();
        let rb = study.run(&mut b, &prox, um(0.18)).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn degenerate_study_rejected() {
        let mut study = DelayStudy::nanometer_default();
        study.nets = 0;
        let mut s = Sampler::seeded(0);
        assert!(study
            .run(&mut s, &ProximityModel::default(), um(0.18))
            .is_err());
    }

    #[test]
    fn measured_sigma_is_in_the_prediction_model_ballpark() {
        // The abstract PredictionModel uses σ ≈ 0.08 at 0.25 µm; the
        // physical study should land within a small factor of that with
        // default calibration.
        let study = DelayStudy::nanometer_default();
        let prox = ProximityModel::default();
        let mut s = Sampler::seeded(21);
        let report = study.run(&mut s, &prox, um(0.25)).unwrap();
        assert!(
            report.sigma() > 0.02 && report.sigma() < 0.3,
            "σ(0.25µm) = {}",
            report.sigma()
        );
    }
}
