//! Design-team economics: what one design iteration costs.
//!
//! The effort model (eq. 6) prices the whole project; the iteration
//! simulator counts spins. This module supplies the bridge — the loaded
//! cost of running the team through one iteration — so simulated iteration
//! counts convert to dollars comparable with eq. 6.

use nanocost_units::{Dollars, TransistorCount, UnitError};

/// A design-team cost model.
///
/// Team size grows with the square root of design size (communication
/// overhead keeps large teams sub-linear), and each iteration occupies the
/// full team for a fixed number of weeks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignTeamModel {
    /// Fully loaded cost of one engineer-year.
    loaded_cost_per_engineer_year: Dollars,
    /// Baseline team size (independent of design size).
    base_engineers: f64,
    /// Additional engineers per √(millions of transistors).
    engineers_per_sqrt_mtr: f64,
    /// Calendar weeks per design iteration.
    weeks_per_iteration: f64,
}

impl DesignTeamModel {
    /// Creates a team model.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if any parameter is non-finite or not strictly
    /// positive.
    pub fn new(
        loaded_cost_per_engineer_year: Dollars,
        base_engineers: f64,
        engineers_per_sqrt_mtr: f64,
        weeks_per_iteration: f64,
    ) -> Result<Self, UnitError> {
        for (name, v) in [
            ("loaded cost per engineer-year", loaded_cost_per_engineer_year.amount()),
            ("base engineers", base_engineers),
            ("engineers per sqrt(Mtr)", engineers_per_sqrt_mtr),
            ("weeks per iteration", weeks_per_iteration),
        ] {
            if !v.is_finite() {
                return Err(UnitError::NonFinite {
                    quantity: "team model parameter",
                });
            }
            if v <= 0.0 {
                return Err(UnitError::NotPositive {
                    quantity: "team model parameter",
                    value: v,
                });
            }
            let _ = name;
        }
        Ok(DesignTeamModel {
            loaded_cost_per_engineer_year,
            base_engineers,
            engineers_per_sqrt_mtr,
            weeks_per_iteration,
        })
    }

    /// Late-1990s defaults: $250 k loaded engineer-year, 10-engineer core
    /// team plus 8 per √Mtr, 6-week iterations.
    #[must_use]
    pub fn nanometer_default() -> Self {
        DesignTeamModel::new(Dollars::new(250_000.0), 10.0, 8.0, 6.0) // nanocost-audit: allow(R3, reason = "paper-anchored default; the constructor parameters document each value")
            .expect("constants are valid") // nanocost-audit: allow(R1, reason = "documented invariant: constants are valid")
    }

    /// Team size for a design of the given size.
    #[must_use]
    pub fn engineers(&self, transistors: TransistorCount) -> f64 {
        self.base_engineers + self.engineers_per_sqrt_mtr * transistors.millions().sqrt()
    }

    /// Cost of one full-team iteration on a design of the given size.
    #[must_use]
    pub fn cost_per_iteration(&self, transistors: TransistorCount) -> Dollars {
        /// Calendar weeks per engineer-year, converting iteration effort to
        /// a fraction of the loaded annual cost.
        const WEEKS_PER_YEAR: f64 = 52.0;
        self.loaded_cost_per_engineer_year
            * (self.engineers(transistors) * self.weeks_per_iteration / WEEKS_PER_YEAR)
    }

    /// Total design cost for a project that took `iterations` spins.
    #[must_use]
    pub fn project_cost(&self, transistors: TransistorCount, iterations: f64) -> Dollars {
        self.cost_per_iteration(transistors) * iterations
    }
}

impl Default for DesignTeamModel {
    fn default() -> Self {
        DesignTeamModel::nanometer_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mt(v: f64) -> TransistorCount {
        TransistorCount::from_millions(v)
    }

    #[test]
    fn team_size_grows_sublinearly() {
        let m = DesignTeamModel::nanometer_default();
        let small = m.engineers(mt(1.0));
        let big = m.engineers(mt(100.0));
        assert!((small - 18.0).abs() < 1e-9);
        assert!((big - 90.0).abs() < 1e-9);
        assert!(big / small < 100.0 / 1.0);
    }

    #[test]
    fn iteration_cost_magnitude_is_plausible() {
        // 10M-tr design: ~35 engineers · 6/52 year · $250k ≈ $1.0M/spin.
        let m = DesignTeamModel::nanometer_default();
        let c = m.cost_per_iteration(mt(10.0));
        assert!(c.amount() > 0.5e6 && c.amount() < 2.0e6, "{c}");
    }

    #[test]
    fn project_cost_linear_in_iterations() {
        let m = DesignTeamModel::nanometer_default();
        let one = m.project_cost(mt(10.0), 1.0);
        let ten = m.project_cost(mt(10.0), 10.0);
        assert!((ten.amount() / one.amount() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(DesignTeamModel::new(Dollars::ZERO, 10.0, 8.0, 6.0).is_err());
        assert!(DesignTeamModel::new(Dollars::new(1.0), 0.0, 8.0, 6.0).is_err());
        assert!(DesignTeamModel::new(Dollars::new(1.0), 10.0, 8.0, 0.0).is_err());
    }
}
