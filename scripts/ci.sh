#!/usr/bin/env bash
# The merge gate: tier-1 verify plus the in-tree static-analysis pass.
# Everything runs offline; no network access is required.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test -q --workspace"
cargo test -q --workspace

echo "==> nanocost-audit --deny"
cargo run -q --release -p nanocost-audit -- --deny

echo "ci: all gates passed"
