#!/usr/bin/env bash
# The merge gate: tier-1 verify plus the in-tree static-analysis pass.
# Everything runs offline; no network access is required.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test -q --workspace"
cargo test -q --workspace

echo "==> nanocost-audit --deny --strict-pragmas (budget: ${NANOCOST_AUDIT_BUDGET_S:-90}s)"
# The analyzer is on the merge path, so its wall clock is a gate too:
# a workspace-wide audit (lex, parse, symbol table, dataflow fixpoint)
# that cannot finish inside the budget is a regression in its own right.
AUDIT_T0=$(date +%s)
cargo run -q --release -p nanocost-audit -- --deny --strict-pragmas
AUDIT_T1=$(date +%s)
AUDIT_ELAPSED=$((AUDIT_T1 - AUDIT_T0))
if (( AUDIT_ELAPSED > ${NANOCOST_AUDIT_BUDGET_S:-90} )); then
    echo "ci: FAIL: nanocost-audit took ${AUDIT_ELAPSED}s (budget ${NANOCOST_AUDIT_BUDGET_S:-90}s)" >&2
    exit 1
fi

echo "==> nanocost-audit negative gate: seeded fixtures must fire"
# The inverse check: run the analyzer over the seeded-bug mini-workspace
# and demand it still reports every rule family and exits nonzero. A
# pass here with an empty report means the analyzer has gone blind.
SEEDED_OUT=target/ci-audit-seeded.txt
if cargo run -q --release -p nanocost-audit -- \
    --root crates/audit/fixtures/seeded --deny >"$SEEDED_OUT" 2>&1; then
    echo "ci: FAIL: audit of the seeded fixture workspace exited 0" >&2
    cat "$SEEDED_OUT" >&2
    exit 1
fi
for rule in R8 R9 R10; do
    if ! grep -q "\[$rule\]" "$SEEDED_OUT"; then
        echo "ci: FAIL: seeded fixtures did not trip $rule:" >&2
        cat "$SEEDED_OUT" >&2
        exit 1
    fi
done

echo "==> timeline smoke: figure4 under NANOCOST_TRACE=jsonl + sampling"
TRACE_OUT=target/ci-trace.jsonl
rm -f "$TRACE_OUT"
NANOCOST_TRACE=jsonl NANOCOST_TRACE_FILE="$TRACE_OUT" NANOCOST_TRACE_SAMPLE=1 \
    cargo run -q --release -p nanocost-bench --bin figure4 >/dev/null
if [[ ! -s "$TRACE_OUT" ]]; then
    echo "ci: FAIL: $TRACE_OUT is missing or empty" >&2
    exit 1
fi
# trace_check enforces schema, span balance, AND per-thread timestamp
# monotonicity (both record order and sample capture times).
cargo run -q --release -p nanocost-trace --bin trace_check -- --summary "$TRACE_OUT"
cargo run -q --release -p nanocost-sentinel --bin trace_profile -- "$TRACE_OUT" >/dev/null
# Windowed metrics view over the back half of the capture must succeed.
cargo run -q --release -p nanocost-sentinel --bin trace_profile -- \
    --since 50% --metrics "$TRACE_OUT" >/dev/null
# The live dashboard must render one frame from the same capture.
cargo run -q --release -p nanocost-sentinel --bin trace_tail -- --once "$TRACE_OUT" >/dev/null

echo "==> timeline smoke: chrome export carries counter tracks"
CHROME_OUT=target/ci-trace-chrome.json
rm -f "$CHROME_OUT"
NANOCOST_TRACE=chrome NANOCOST_TRACE_FILE="$CHROME_OUT" NANOCOST_TRACE_SAMPLE=1 \
    cargo run -q --release -p nanocost-bench --bin figure4 >/dev/null
if ! grep -q '"ph":"C"' "$CHROME_OUT"; then
    echo "ci: FAIL: $CHROME_OUT has no \"ph\":\"C\" counter-track events" >&2
    exit 1
fi

echo "==> fingerprint gate: Eq.1-7 provenance digests per pipeline"
# NANOCOST_BLESS_FINGERPRINTS=1 turns drift into an in-place update of
# FINGERPRINTS.json (use after an intentional model change).
for fig in figure1 figure2 figure3 figure4 node_selection wafer_transition delay_study; do
    FP_OUT="target/ci-$fig.jsonl"
    rm -f "$FP_OUT"
    NANOCOST_TRACE=jsonl NANOCOST_TRACE_FILE="$FP_OUT" \
        cargo run -q --release -p nanocost-bench --bin "$fig" >/dev/null
    cargo run -q --release -p nanocost-sentinel --bin fingerprint -- \
        --check "$fig" --file FINGERPRINTS.json "$FP_OUT"
done

echo "==> serve smoke gate: ephemeral server + loadgen mix"
SERVE_LOG=target/ci-serve.log
rm -f "$SERVE_LOG" target/ci-serve-metrics.json target/ci-serve-prov.jsonl target/ci-serve-bench.json
rm -f target/ci-serve-access.jsonl target/ci-serve-health.json target/ci-serve-exemplar.*.jsonl
cargo build -q --release -p nanocost-serve
NANOCOST_SERVE_TRACE_RING=4096 \
    NANOCOST_SERVE_ACCESS_LOG=target/ci-serve-access.jsonl \
    ./target/release/serve --port 0 --workers 4 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
# The "listening on" line is the readiness handshake; wait for it.
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR="$(sed -n 's/.*listening on //p' "$SERVE_LOG" | head -1)"
    [[ -n "$SERVE_ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$SERVE_ADDR" ]]; then
    echo "ci: FAIL: serve never reported its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# 200 requests across the mix: zero non-2xx tolerated, and the batch
# endpoint must report cache hits (the overlapping-grid property).
./target/release/loadgen --addr "$SERVE_ADDR" --requests 200 \
    --mix cost,optimum,batch --concurrency 4 --require-batch-hits \
    --metrics-out target/ci-serve-metrics.json \
    --provenance-out target/ci-serve-prov.jsonl \
    --bench-out target/ci-serve-bench.json
# The metrics document must carry real latency quantiles.
if ! grep -q '"p50_us"' target/ci-serve-metrics.json \
    || ! grep -q '"p99_us"' target/ci-serve-metrics.json; then
    echo "ci: FAIL: /v1/metrics is missing latency quantiles" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# The per-request provenance replay must be a valid trace capture.
cargo run -q --release -p nanocost-trace --bin trace_check -- target/ci-serve-prov.jsonl

echo "==> serve soak gate: elevated concurrency + SLO criteria + exemplar round-trip"
# A heavier burst against the same server: sheds are tolerated (bounded
# queue doing its job) but the shed rate, the client-observed p99, and
# the server's own /v1/health verdict must all hold, and every
# endpoint's p99 exemplar must round-trip to a fetchable trace.
./target/release/loadgen --addr "$SERVE_ADDR" --requests 400 \
    --mix cost,optimum,batch,yield --concurrency 16 \
    --allow-shed --max-shed-rate 0.5 --slo-p99-us 1000000 \
    --health-out target/ci-serve-health.json \
    --exemplar-traces target/ci-serve-exemplar
# Every fetched exemplar trace must be a trace_check-clean capture with
# request attribution on each record.
EXEMPLARS=0
for cap in target/ci-serve-exemplar.*.jsonl; do
    [[ -e "$cap" ]] || continue
    cargo run -q --release -p nanocost-trace --bin trace_check -- "$cap"
    if grep -vq '"req_id"' "$cap"; then
        echo "ci: FAIL: $cap has records without req_id" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    EXEMPLARS=$((EXEMPLARS + 1))
done
if [[ "$EXEMPLARS" -lt 1 ]]; then
    echo "ci: FAIL: soak produced no exemplar traces" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# The structured access log must have one JSON record per request.
if [[ ! -s target/ci-serve-access.jsonl ]] \
    || ! grep -q '"endpoint":"cost"' target/ci-serve-access.jsonl \
    || grep -vq '^{"req_id":' target/ci-serve-access.jsonl; then
    echo "ci: FAIL: access log is missing or malformed" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# SIGTERM must be a clean shutdown (exit 0).
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "ci: FAIL: serve did not exit cleanly on SIGTERM" >&2
    exit 1
fi

echo "==> serve profiling gate: continuous sampler + /v1/profile + profile_diff"
# A second server with the sampling profiler cranked up: the loadgen
# burst must leave a non-empty /v1/profile report whose stacks
# attribute work to serve.request, a self-diff must be clean, the live
# trace_profile --attach view must render, and the JSONL capture must
# carry trace_check-valid stack_sample records.
PROF_LOG=target/ci-serve-prof.log
PROF_TRACE=target/ci-serve-prof.jsonl
rm -f "$PROF_LOG" "$PROF_TRACE" target/ci-serve-profile.json target/ci-serve-prof-exemplar.*.jsonl
NANOCOST_PROFILE_HZ=500 NANOCOST_TRACE=jsonl NANOCOST_TRACE_FILE="$PROF_TRACE" \
    ./target/release/serve --port 0 --workers 4 >"$PROF_LOG" 2>&1 &
PROF_PID=$!
PROF_ADDR=""
for _ in $(seq 1 100); do
    PROF_ADDR="$(sed -n 's/.*listening on //p' "$PROF_LOG" | head -1)"
    [[ -n "$PROF_ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$PROF_ADDR" ]]; then
    echo "ci: FAIL: profiled serve never reported its address" >&2
    kill "$PROF_PID" 2>/dev/null || true
    exit 1
fi
./target/release/loadgen --addr "$PROF_ADDR" --requests 300 \
    --mix cost,optimum,batch --concurrency 8 \
    --allow-shed --max-shed-rate 0.5 \
    --profile-out target/ci-serve-profile.json --profile-window-s 60 \
    --exemplar-traces target/ci-serve-prof-exemplar --max-evicted-exemplars 8
if ! grep -q '"samples":' target/ci-serve-profile.json \
    || ! grep -q 'serve.request' target/ci-serve-profile.json; then
    echo "ci: FAIL: /v1/profile report is empty or missing serve.request frames" >&2
    kill "$PROF_PID" 2>/dev/null || true
    exit 1
fi
# A report diffed against itself must never regress (exit 0).
cargo run -q --release -p nanocost-sentinel --bin profile_diff -- \
    --against target/ci-serve-profile.json target/ci-serve-profile.json >/dev/null
# The live attach view over the same server must render a report.
cargo run -q --release -p nanocost-sentinel --bin trace_profile -- \
    --attach "$PROF_ADDR" --window-s 30 >/dev/null
kill -TERM "$PROF_PID"
if ! wait "$PROF_PID"; then
    echo "ci: FAIL: profiled serve did not exit cleanly on SIGTERM" >&2
    exit 1
fi
# The exported capture must be schema-clean including its stack_sample
# records, and must actually contain some.
PROF_SUMMARY="$(cargo run -q --release -p nanocost-trace --bin trace_check -- --summary "$PROF_TRACE")"
echo "$PROF_SUMMARY"
if ! grep -q 'stack samples: [1-9]' <<<"$PROF_SUMMARY"; then
    echo "ci: FAIL: profiled capture has no stack_sample records" >&2
    exit 1
fi

echo "==> fleet federation gate: two labeled replicas + consistent-hash loadgen + fleet_report"
# Two replicas labeled via NANOCOST_REPLICA, driven through loadgen's
# consistent-hash ring, then federated: the merged requests_total must
# exactly equal the sum of the per-replica raw scrapes (model requests
# alone move that counter, so scrape order cannot skew it), --health
# must agree with the healthy replicas, and --reconcile re-proves the
# merge invariants (totals == sums, fleet quantiles inside the
# per-replica envelope) against the live scrapes.
FLEET_A_LOG=target/ci-fleet-a.log
FLEET_B_LOG=target/ci-fleet-b.log
rm -f "$FLEET_A_LOG" "$FLEET_B_LOG" \
    target/ci-fleet.json target/ci-fleet-a.json target/ci-fleet-b.json
NANOCOST_REPLICA=a ./target/release/serve --port 0 --workers 2 >"$FLEET_A_LOG" 2>&1 &
FLEET_A_PID=$!
NANOCOST_REPLICA=b ./target/release/serve --port 0 --workers 2 >"$FLEET_B_LOG" 2>&1 &
FLEET_B_PID=$!
fleet_fail() {
    echo "ci: FAIL: $1" >&2
    kill "$FLEET_A_PID" "$FLEET_B_PID" 2>/dev/null || true
    exit 1
}
FLEET_A_ADDR=""
FLEET_B_ADDR=""
for _ in $(seq 1 100); do
    FLEET_A_ADDR="$(sed -n 's/.*listening on //p' "$FLEET_A_LOG" | head -1)"
    FLEET_B_ADDR="$(sed -n 's/.*listening on //p' "$FLEET_B_LOG" | head -1)"
    [[ -n "$FLEET_A_ADDR" && -n "$FLEET_B_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$FLEET_A_ADDR" && -n "$FLEET_B_ADDR" ]] \
    || fleet_fail "a fleet replica never reported its address"
./target/release/loadgen --replica "$FLEET_A_ADDR" --replica "$FLEET_B_ADDR" \
    --requests 200 --mix cost,optimum,batch --concurrency 4 \
    || fleet_fail "fleet loadgen failed"
# Per-replica ground truth first (single-target fleet_report), then the
# federated artifact over both.
cargo run -q --release -p nanocost-sentinel --bin fleet_report -- \
    "$FLEET_A_ADDR" -o target/ci-fleet-a.json \
    || fleet_fail "replica-a raw scrape failed"
cargo run -q --release -p nanocost-sentinel --bin fleet_report -- \
    "$FLEET_B_ADDR" -o target/ci-fleet-b.json \
    || fleet_fail "replica-b raw scrape failed"
cargo run -q --release -p nanocost-sentinel --bin fleet_report -- \
    "$FLEET_A_ADDR" "$FLEET_B_ADDR" --health --reconcile \
    -o target/ci-fleet.json \
    || fleet_fail "federated fleet_report --health --reconcile failed"
fleet_requests() { grep -o '"requests_total":[0-9]*' "$1" | head -1 | cut -d: -f2; }
FLEET_N="$(fleet_requests target/ci-fleet.json)"
FLEET_A_N="$(fleet_requests target/ci-fleet-a.json)"
FLEET_B_N="$(fleet_requests target/ci-fleet-b.json)"
if [[ "$FLEET_N" -ne $((FLEET_A_N + FLEET_B_N)) || "$FLEET_N" -ne 200 ]]; then
    fleet_fail "federated requests_total $FLEET_N != ${FLEET_A_N}+${FLEET_B_N} (drove 200)"
fi
if [[ "$FLEET_A_N" -lt 1 || "$FLEET_B_N" -lt 1 ]]; then
    fleet_fail "routing starved a replica (a=$FLEET_A_N b=$FLEET_B_N)"
fi
grep -q '"replicas":\["a","b"\]' target/ci-fleet.json \
    || fleet_fail "fleet artifact is missing the NANOCOST_REPLICA labels"
# The live fleet dashboard must render one frame over both replicas.
cargo run -q --release -p nanocost-sentinel --bin trace_tail -- \
    --attach "$FLEET_A_ADDR" --attach "$FLEET_B_ADDR" --once >/dev/null \
    || fleet_fail "fleet trace_tail frame failed"
kill -TERM "$FLEET_A_PID" "$FLEET_B_PID"
wait "$FLEET_A_PID" || fleet_fail "replica a did not exit cleanly on SIGTERM"
wait "$FLEET_B_PID" || fleet_fail "replica b did not exit cleanly on SIGTERM"

# One bench capture + diff; prints the names of regressed benchmarks
# (empty = clean). Absolute capture path: cargo runs bench targets with
# cwd = the package dir. Both checked-in baselines (captured under
# different machine conditions) pool into one reference distribution,
# so neither environment's scatter alone decides the verdict.
perf_regressions() {
    local out="$PWD/target/$1"
    rm -f "$out"
    NANOCOST_BENCH_JSON="$out" cargo bench -q -p nanocost-bench >/dev/null
    # bench_diff exits 1 on regression; the retry logic below decides.
    cargo run -q --release -p nanocost-sentinel --bin bench_diff -- \
        --against BENCH_baseline.json --against BENCH_baseline_2.json \
        "$out" --threshold 0.5 \
        | awk '$NF == "regressed" {print $1}' || true
}

if [[ "${NANOCOST_SKIP_PERF_GATE:-0}" != "1" ]]; then
    echo "==> perf gate: bench capture vs BENCH_baseline.json"
    # Shared-runner noise swamps small shifts (single benchmarks are
    # routinely 60-80% off in one run), so the gate is generous twice
    # over: a benchmark fails only on a rank-significant slowdown of
    # 50%+ that reproduces in a second independent capture.
    # NANOCOST_SKIP_PERF_GATE=1 skips this block entirely.
    FIRST="$(perf_regressions ci-bench.json)"
    if [[ -n "$FIRST" ]]; then
        echo "perf gate: retrying to rule out machine noise:"
        echo "$FIRST"
        SECOND="$(perf_regressions ci-bench-retry.json)"
        CONFIRMED="$(comm -12 <(sort <<<"$FIRST") <(sort <<<"$SECOND"))"
        if [[ -n "$CONFIRMED" ]]; then
            echo "ci: FAIL: regressed in two independent runs vs BENCH_baseline.json:" >&2
            echo "$CONFIRMED" >&2
            exit 1
        fi
        echo "perf gate: regressions did not reproduce; attributed to noise"
    fi
else
    echo "==> perf gate: skipped (NANOCOST_SKIP_PERF_GATE=1)"
fi

echo "ci: all gates passed"
