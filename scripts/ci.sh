#!/usr/bin/env bash
# The merge gate: tier-1 verify plus the in-tree static-analysis pass.
# Everything runs offline; no network access is required.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test -q --workspace"
cargo test -q --workspace

echo "==> nanocost-audit --deny"
cargo run -q --release -p nanocost-audit -- --deny

echo "==> observability smoke: figure4 under NANOCOST_TRACE=jsonl"
TRACE_OUT=target/ci-trace.jsonl
rm -f "$TRACE_OUT"
NANOCOST_TRACE=jsonl NANOCOST_TRACE_FILE="$TRACE_OUT" \
    cargo run -q --release -p nanocost-bench --bin figure4 >/dev/null
if [[ ! -s "$TRACE_OUT" ]]; then
    echo "ci: FAIL: $TRACE_OUT is missing or empty" >&2
    exit 1
fi
cargo run -q --release -p nanocost-trace --bin trace_check -- "$TRACE_OUT"

echo "ci: all gates passed"
