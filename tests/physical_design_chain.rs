//! Integration tests for the physical-design substrate chain: netlist →
//! placement → measured density → measured critical area → yield →
//! redundancy economics, all through the public facade.

use nanocost::fab::WaferSpec;
use nanocost::layout::{MemoryArrayGenerator, Netlist, Placer, StdCellGenerator};
use nanocost::units::{Area, FeatureSize};
use nanocost::yield_model::{
    critical_scan, optimal_spares, DefectDensity, DefectSizeDistribution, PoissonModel,
    RedundantDie, YieldModel,
};

#[test]
fn placement_density_knob_reaches_the_cost_model() {
    // Place one netlist at two densities, measure s_d from the artwork,
    // and price both through eq. 3 — the full artwork-to-dollars loop.
    use nanocost::core::ManufacturingCostModel;
    let netlist = Netlist::random(120, 200, 7).expect("valid");
    let lambda = FeatureSize::from_microns(0.25).expect("valid");
    let model = ManufacturingCostModel::paper_anchor();
    let price = |width: usize| {
        let placement = Placer {
            per_row: Some(5),
            ..Placer::with_die_width(width)
        }
        .place(&netlist)
        .expect("valid");
        let layout = placement.to_layout(&netlist).expect("valid");
        (
            model
                .transistor_cost(lambda, layout.measured_sd())
                .amount(),
            placement.total_hpwl(&netlist),
        )
    };
    let (dense_cost, dense_hpwl) = price(400);
    let (sparse_cost, sparse_hpwl) = price(1200);
    // Denser placement: cheaper transistors, shorter wires... the wire
    // savings is what the *sparse* design gives up in silicon.
    assert!(dense_cost < sparse_cost);
    assert!(dense_hpwl < sparse_hpwl);
}

#[test]
fn measured_critical_area_orders_design_styles_like_the_parametric_model() {
    // The parametric CriticalAreaModel asserts dense artwork is more
    // defect-sensitive; the measured scan must agree on real artwork.
    let dist = DefectSizeDistribution::new(0.2).expect("valid");
    let lambda = FeatureSize::from_microns(0.25).expect("valid");
    let memory = MemoryArrayGenerator::new(8, 12).expect("valid").generate().expect("valid");
    let sparse = StdCellGenerator::new(4, 300, 30, 0.4, 5)
        .expect("valid")
        .generate()
        .expect("valid");
    let mem_fraction = critical_scan(memory.grid(), dist, lambda)
        .expect("valid")
        .critical_fraction();
    let sparse_fraction = critical_scan(sparse.grid(), dist, lambda)
        .expect("valid")
        .critical_fraction();
    assert!(mem_fraction > sparse_fraction);
    // And both feed a plain Poisson yield sensibly.
    let d0 = DefectDensity::per_cm2(0.8).expect("valid");
    let die = memory.physical_area(lambda);
    let y = PoissonModel.die_yield(die * mem_fraction, d0);
    assert!(y.value() > 0.0 && y.value() <= 1.0);
}

#[test]
fn redundancy_pays_on_dirty_processes_and_wafer_economics_agree() {
    // Spares raise per-die yield *and* good-dice-per-wafer at realistic
    // defect densities, despite their area overhead.
    let d0 = DefectDensity::per_cm2(1.0).expect("valid");
    let repairable = Area::from_cm2(1.0);
    let logic = Area::from_cm2(0.4);
    let best = optimal_spares(repairable, logic, 1.0 / 256.0, d0, 16);
    assert!(best >= 1, "dirty process should use spares, got {best}");

    let bare = RedundantDie::new(repairable, logic, 0, 1.0 / 256.0).expect("valid");
    let repaired = RedundantDie::new(repairable, logic, best, 1.0 / 256.0).expect("valid");
    let wafer = WaferSpec::standard_200mm();
    let good = |die: &RedundantDie| {
        wafer.gross_dice(die.total_area()).as_f64() * die.yield_with_repair(d0).value()
    };
    assert!(
        good(&repaired) > good(&bare),
        "repair should net more good dice per wafer: {} vs {}",
        good(&repaired),
        good(&bare)
    );
}
