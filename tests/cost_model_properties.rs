//! Integration tests: cross-crate properties of the cost-model stack.

use nanocost::core::{
    DesignPoint, GeneralizedCostModel, ManufacturingCostModel, TotalCostModel,
};
use nanocost::fab::{MaskCostModel, TestCostModel, WaferSpec};
use nanocost::units::{
    DecompressionIndex, Dollars, FeatureSize, TransistorCount, Utilization, WaferCount, Yield,
};

fn um(x: f64) -> FeatureSize {
    FeatureSize::from_microns(x).unwrap()
}

fn sd(v: f64) -> DecompressionIndex {
    DecompressionIndex::new(v).unwrap()
}

#[test]
fn eq1_eq3_eq4_eq7_form_a_cost_ladder() {
    // Each refinement can only make the estimate less optimistic at a
    // low-volume design point (the paper's lower-bound argument, §2.5).
    let lambda = um(0.18);
    let density = sd(300.0);
    let transistors = TransistorCount::from_millions(10.0);
    let volume = WaferCount::new(5_000).unwrap();

    let eq3 = ManufacturingCostModel::paper_anchor()
        .transistor_cost(lambda, density)
        .amount();
    let eq1 = ManufacturingCostModel::paper_anchor()
        .transistor_cost_eq1(WaferSpec::standard_200mm(), lambda, density, transistors)
        .unwrap()
        .amount();
    let eq4 = TotalCostModel::paper_figure4()
        .transistor_cost(
            lambda,
            density,
            transistors,
            volume,
            Yield::new(0.8).unwrap(),
            MaskCostModel::default().mask_set_cost(lambda),
        )
        .unwrap()
        .total()
        .amount();
    let eq7 = GeneralizedCostModel::nanometer_default()
        .evaluate(DesignPoint {
            lambda,
            sd: density,
            transistors,
            volume,
        })
        .unwrap()
        .transistor_cost
        .amount();

    assert!(eq1 > eq3, "wafer-edge losses: eq1 {eq1} > eq3 {eq3}");
    assert!(eq4 > eq3, "design cost: eq4 {eq4} > eq3 {eq3}");
    assert!(eq7 > eq4, "substrate realism: eq7 {eq7} > eq4 {eq4}");
}

#[test]
fn fpga_crossover_exists_and_moves_with_volume() {
    // EXT-U end to end: at some product volume the custom part overtakes
    // the FPGA.
    let lambda = um(0.18);
    let transistors = TransistorCount::from_millions(10.0);
    let custom = GeneralizedCostModel::nanometer_default();
    let fpga = GeneralizedCostModel::nanometer_default()
        .with_utilization(Utilization::new(0.10).unwrap());
    let fpga_cost = fpga
        .evaluate(DesignPoint {
            lambda,
            sd: sd(450.0),
            transistors,
            volume: WaferCount::new(500_000).unwrap(), // vendor volume
        })
        .unwrap()
        .transistor_cost
        .amount();
    let custom_cost = |v: u64| {
        custom
            .evaluate(DesignPoint {
                lambda,
                sd: sd(250.0),
                transistors,
                volume: WaferCount::new(v).unwrap(),
            })
            .unwrap()
            .transistor_cost
            .amount()
    };
    assert!(
        custom_cost(1_000) > fpga_cost,
        "at tiny volume custom should lose to the FPGA"
    );
    assert!(
        custom_cost(200_000) < fpga_cost,
        "at high volume custom should win"
    );
}

#[test]
fn test_cost_extension_is_small_but_nonzero() {
    // EXT-TEST: the §2.5 extension changes the answer by percents, not
    // orders of magnitude, on a mainstream part.
    let base = GeneralizedCostModel::nanometer_default();
    let tested = GeneralizedCostModel::nanometer_default().with_test(TestCostModel::default());
    let point = DesignPoint {
        lambda: um(0.18),
        sd: sd(300.0),
        transistors: TransistorCount::from_millions(10.0),
        volume: WaferCount::new(50_000).unwrap(),
    };
    let a = base.evaluate(point).unwrap().transistor_cost.amount();
    let b = tested.evaluate(point).unwrap().transistor_cost.amount();
    let overhead = (b - a) / a;
    assert!(overhead > 0.0);
    assert!(overhead < 0.5, "test overhead {overhead} should be modest");
}

#[test]
fn die_cost_constancy_requires_density_progress() {
    // The Fig-2/Fig-3 logic restated through the eq-3 die cost: holding
    // s_d at industry-trend values blows the $34 budget at nanometer
    // nodes; holding it at the constant-cost value does not.
    use nanocost::roadmap::{itrs_1999, ConstantCostAssumptions};
    let assumptions = ConstantCostAssumptions::paper_1999();
    let industry_sd = sd(400.0); // the paper's K7-era custom-MPU ballpark
    for entry in itrs_1999() {
        let lambda = entry.feature_size().unwrap();
        let budget = assumptions
            .die_cost_for(lambda, entry.transistors(), industry_sd)
            .amount();
        let affordable = assumptions
            .required_sd(lambda, entry.transistors())
            .unwrap();
        let at_required = assumptions
            .die_cost_for(lambda, entry.transistors(), affordable)
            .amount();
        assert!((at_required - 34.0).abs() < 1e-6);
        if entry.year >= 2005 {
            assert!(
                budget > 34.0,
                "{}: industry-density die should exceed $34, got {budget}",
                entry.year
            );
        }
    }
}

#[test]
fn mask_share_grows_but_design_effort_dominates_it() {
    // Decompose Cd_sq: at the paper's constants, C_DE >> C_MA for a 10M
    // design even at nanometer mask prices.
    use nanocost::flow::DesignEffortModel;
    let masks = MaskCostModel::default();
    let effort = DesignEffortModel::paper_defaults();
    let n = TransistorCount::from_millions(10.0);
    for &node in &[0.25, 0.13, 0.07] {
        let mask: Dollars = masks.mask_set_cost(um(node));
        let design = effort.design_cost(n, sd(300.0)).unwrap();
        assert!(
            design.amount() > mask.amount(),
            "λ={node}: C_DE {design} should dominate C_MA {mask}"
        );
    }
}
