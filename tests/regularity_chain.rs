//! Integration test: the full §3.2 chain — layout generation → pattern
//! extraction → prediction quality → iteration count → design dollars →
//! transistor cost.

use nanocost::core::{DesignPoint, GeneralizedCostModel};
use nanocost::flow::{ClosureSimulator, DesignTeamModel, RegularityEffect};
use nanocost::layout::{
    MemoryArrayGenerator, RandomBlockGenerator, RegularityAnalysis,
};
use nanocost::numeric::McConfig;
use nanocost::units::{DecompressionIndex, FeatureSize, TransistorCount, WaferCount};

#[test]
fn regular_and_irregular_layouts_diverge_in_end_to_end_cost() {
    // Two layouts with *matched* area and transistor count (hence equal
    // measured s_d) — regularity is the only difference.
    let regular = MemoryArrayGenerator::new(24, 32).unwrap().generate().unwrap();
    let irregular = RandomBlockGenerator::new(
        regular.grid().width(),
        regular.grid().height(),
        regular.transistors(),
        99,
    )
    .unwrap()
    .generate()
    .unwrap();
    assert_eq!(
        regular.measured_sd().squares(),
        irregular.measured_sd().squares()
    );

    let window = RegularityAnalysis::tiling_rect(14, 13).unwrap();
    let reg_effect = RegularityEffect::from_report(&window.analyze(regular.grid()).unwrap());
    let irr_effect = RegularityEffect::from_report(&window.analyze(irregular.grid()).unwrap());
    assert!(reg_effect.reuse_factor > 20.0 * irr_effect.reuse_factor);

    // Same density target, same node, same team — different iteration
    // counts and dollars.
    let sim = ClosureSimulator::nanometer_default();
    let team = DesignTeamModel::nanometer_default();
    let lambda = FeatureSize::from_microns(0.10).unwrap();
    let target = DecompressionIndex::new(140.0).unwrap();
    let transistors = TransistorCount::from_millions(10.0);
    let config = McConfig { seed: 3, trials: 1_500 };

    let reg_iters = sim
        .mean_iterations(config, lambda, target, reg_effect.reuse_factor)
        .unwrap();
    let irr_iters = sim
        .mean_iterations(config, lambda, target, irr_effect.reuse_factor)
        .unwrap();
    assert!(
        reg_iters < irr_iters,
        "regular {reg_iters} vs irregular {irr_iters}"
    );

    let reg_cost = team.project_cost(transistors, reg_iters);
    let irr_cost = team.project_cost(transistors, irr_iters);
    assert!(reg_cost.amount() < irr_cost.amount());

    // Fold the design-cost difference into the transistor cost at modest
    // volume: the regular design's part is cheaper end to end.
    let model = GeneralizedCostModel::nanometer_default();
    let point = DesignPoint {
        lambda,
        sd: target,
        transistors,
        volume: WaferCount::new(5_000).unwrap(),
    };
    let silicon = model.evaluate(point).unwrap();
    let spread = |design_cost: f64| {
        design_cost / (point.volume.as_f64() * model.wafer().total_area().cm2())
    };
    let reg_total = silicon.transistor_cost.amount()
        + spread(reg_cost.amount()) * target.squares() * lambda.square().cm2()
            / silicon.effective_yield.value();
    let irr_total = silicon.transistor_cost.amount()
        + spread(irr_cost.amount()) * target.squares() * lambda.square().cm2()
            / silicon.effective_yield.value();
    assert!(reg_total < irr_total);
}

#[test]
fn measured_sd_feeds_the_cost_model_directly() {
    // A generated layout's measured density can be priced without any
    // hand-specified s_d — closing the loop between artwork and economics.
    // A memory array lands near s_d ≈ 30, below the *logic* best-possible
    // s_d0 = 100 (eq. 6 correctly refuses that), so the effort model is
    // re-anchored at the bitcell-limited memory density.
    let layout = MemoryArrayGenerator::new(64, 128).unwrap().generate().unwrap();
    let memory_effort =
        nanocost::flow::DesignEffortModel::new(1000.0, 1.0, 1.2, 25.0).unwrap();
    let model = GeneralizedCostModel::new(
        nanocost::fab::WaferSpec::standard_200mm(),
        nanocost::fab::WaferCostModel::default(),
        nanocost::fab::MaskCostModel::default(),
        memory_effort,
        nanocost::yield_model::YieldSurface::nanometer_default(),
    );
    let report = model
        .evaluate(DesignPoint {
            lambda: FeatureSize::from_microns(0.25).unwrap(),
            sd: layout.measured_sd(),
            transistors: layout.transistor_count(),
            volume: WaferCount::new(100_000).unwrap(),
        })
        .unwrap();
    // A dense memory block prices out at classic SRAM-era cost levels:
    // well under a micro-dollar per transistor at high volume.
    assert!(report.transistor_cost.amount() < 1.0e-6);
    assert!(report.transistor_cost.amount() > 1.0e-9);
}
