//! Integration test: run every Table-A1 device through the cost models —
//! the dataset and the models must compose without special cases.

use nanocost::core::ManufacturingCostModel;
use nanocost::devices::{table_a1, DeviceClass};
use nanocost::fab::WaferSpec;
use nanocost::units::{CostPerArea, Yield};

#[test]
fn every_device_prices_out_positively() {
    let model = ManufacturingCostModel::paper_anchor();
    for r in table_a1() {
        let lambda = r.feature_size().expect("dataset is validated");
        let sd = r.effective_sd_logic();
        let cost = model.transistor_cost(lambda, sd);
        assert!(
            cost.amount() > 0.0 && cost.amount() < 1.0e-2,
            "row {}: implausible transistor cost {}",
            r.id,
            cost
        );
        let die = model.die_cost(lambda, sd, r.transistors());
        assert!(die.amount() > 0.01, "row {}: die cost {}", r.id, die);
    }
}

#[test]
fn die_costs_track_die_areas() {
    // Eq. 3's die cost is C_sq·A_ch/Y: ordering by area must order costs.
    let model = ManufacturingCostModel::paper_anchor();
    let rows = table_a1();
    let mut by_area: Vec<_> = rows.iter().collect();
    by_area.sort_by(|a, b| a.die_cm2.partial_cmp(&b.die_cm2).expect("finite"));
    let costs: Vec<f64> = by_area
        .iter()
        .map(|r| {
            model
                .die_cost(
                    r.feature_size().expect("valid"),
                    r.computed_sd_total(),
                    r.transistors(),
                )
                .amount()
        })
        .collect();
    for w in costs.windows(2) {
        assert!(w[1] >= w[0] * 0.999, "die cost should track area: {costs:?}");
    }
}

#[test]
fn table_a1_dies_fit_on_period_wafers() {
    // Every published die must actually fit a 200 mm wafer — and yield a
    // sensible count of candidates.
    let wafer = WaferSpec::standard_200mm();
    for r in table_a1() {
        let dice = wafer.gross_dice(r.die_area());
        assert!(
            dice.count() >= 40,
            "row {}: only {} dice from a 200mm wafer for a {:.2} cm² die",
            r.id,
            dice.count(),
            r.die_cm2
        );
    }
}

#[test]
fn memory_heavy_devices_are_cheapest_per_transistor() {
    // The paper's economic reading of Table A1: dense (memory-dominated)
    // parts deliver the cheapest transistors. Compare the mem-split CPUs'
    // memory regions against ASIC-class whole dies on equal terms.
    let model = ManufacturingCostModel::new(
        CostPerArea::per_cm2(8.0),
        Yield::new(0.8).expect("constant"),
    );
    let rows = table_a1();
    let mem_costs: Vec<f64> = rows
        .iter()
        .filter_map(|r| {
            let sd = r.computed_sd_mem()?;
            Some(
                model
                    .transistor_cost(r.feature_size().ok()?, sd)
                    .amount()
                    / r.feature_size().ok()?.square().cm2(), // normalize λ² out
            )
        })
        .collect();
    let asic_costs: Vec<f64> = rows
        .iter()
        .filter(|r| r.class == DeviceClass::Asic || r.class == DeviceClass::Network)
        .map(|r| {
            let lambda = r.feature_size().expect("valid");
            model.transistor_cost(lambda, r.computed_sd_total()).amount()
                / lambda.square().cm2()
        })
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(!mem_costs.is_empty() && !asic_costs.is_empty());
    assert!(
        mean(&asic_costs) > 4.0 * mean(&mem_costs),
        "normalized ASIC transistor cost {} should dwarf memory {}",
        mean(&asic_costs),
        mean(&mem_costs)
    );
}
