//! Integration tests: each of the paper's figures regenerated end to end
//! through the public API, asserting the shapes the paper reports.

use nanocost::core::{Figure4Scenario, TotalCostModel};
use nanocost::devices::{figure1_by_vendor, table_a1, vendor_density_trend, Vendor};
use nanocost::fab::MaskCostModel;
use nanocost::roadmap::{figure3, itrs_1999, ConstantCostAssumptions};

#[test]
fn figure1_pipeline_worsening_density_and_vendor_gap() {
    let rows = table_a1();
    let series = figure1_by_vendor(&rows).expect("dataset is valid");
    assert!(series.iter().any(|s| s.name() == "Intel"));
    assert!(series.iter().any(|s| s.name() == "AMD"));

    // Industrial MPU densities worsen toward newer nodes for the two
    // market leaders the paper discusses.
    for vendor in [Vendor::Intel, Vendor::PowerPcAlliance] {
        let fit = vendor_density_trend(&rows, vendor).expect("enough rows");
        assert!(
            fit.slope > 0.0,
            "{vendor}: s_d should rise as nodes shrink, slope {}",
            fit.slope
        );
    }
}

#[test]
fn figure2_pipeline_itrs_demands_density_improvement() {
    let roadmap = itrs_1999();
    let sds: Vec<f64> = roadmap.iter().map(|e| e.implied_sd().squares()).collect();
    // Monotone non-increasing within 5 % noise, ending far below the start.
    for w in sds.windows(2) {
        assert!(w[1] < w[0] * 1.05, "implied s_d should trend down: {sds:?}");
    }
    assert!(sds[0] / sds[sds.len() - 1] > 2.0);
}

#[test]
fn figure3_pipeline_cost_contradiction() {
    let pts = figure3(&itrs_1999(), &ConstantCostAssumptions::paper_1999())
        .expect("roadmap is valid");
    // The ratio roughly doubles over the horizon and crosses unity.
    assert!(pts.last().unwrap().ratio > 1.0);
    assert!(pts.last().unwrap().ratio / pts[0].ratio > 1.8);
}

#[test]
fn figure4_pipeline_interior_optima_that_shift_with_volume() {
    let model = TotalCostModel::paper_figure4();
    let masks = MaskCostModel::default();
    let a = Figure4Scenario::paper_4a();
    let b = Figure4Scenario::paper_4b();

    for scenario in [&a, &b] {
        let chart = scenario.chart(&model, &masks).expect("sweep is valid");
        for series in chart.series() {
            let (sd_min, _) = series.argmin().expect("non-empty");
            let lo = series.points()[0].0;
            let hi = series.points()[series.len() - 1].0;
            assert!(
                sd_min > lo && sd_min < hi,
                "{}: optimum should be interior, got s_d = {sd_min}",
                series.name()
            );
        }
    }

    // The optimum of (b) sits at denser layout, at every node plotted.
    for &um in &a.lambdas_um {
        let oa = a.optimum(&model, &masks, um).expect("valid");
        let ob = b.optimum(&model, &masks, um).expect("valid");
        assert!(
            ob.sd < oa.sd,
            "λ={um}: 4b optimum {} should be denser than 4a optimum {}",
            ob.sd,
            oa.sd
        );
        assert!(ob.cost.amount() < oa.cost.amount());
    }
}

#[test]
fn figure4_yield_invariance_of_eq4_optimum() {
    // Analytic property the reproduction surfaced: a density-independent Y
    // cancels out of eq. 4's argmin — only the cost level moves.
    use nanocost::units::{Dollars, FeatureSize, TransistorCount, WaferCount, Yield};
    let model = TotalCostModel::paper_figure4();
    let lambda = FeatureSize::from_microns(0.18).unwrap();
    let n = TransistorCount::from_millions(10.0);
    let mask = Dollars::new(200_000.0);
    let opt = |y: f64| {
        nanocost::core::optimal_sd_total(
            &model,
            lambda,
            n,
            WaferCount::new(5_000).unwrap(),
            Yield::new(y).unwrap(),
            mask,
            105.0,
            2_000.0,
        )
        .unwrap()
    };
    let low_y = opt(0.4);
    let high_y = opt(0.9);
    assert!(
        (low_y.sd - high_y.sd).abs() < 2.0,
        "eq4 optimum should be Y-invariant: {} vs {}",
        low_y.sd,
        high_y.sd
    );
    assert!(high_y.cost.amount() < low_y.cost.amount());
}
