//! Integration tests for the extension experiments: wafer-map simulation
//! (EXT-SIM), time-to-market economics (EXT-TTM), the physical delay
//! study (EXT-DELAY), and pitch-driven auto-configuration of the pattern
//! extractor — all through the public facade.

use nanocost::core::{cheapest_node, GeneralizedCostModel, ProfitModel};
use nanocost::fab::{ProximityModel, WaferSpec};
use nanocost::flow::DelayStudy;
use nanocost::layout::{auto_analysis, MemoryArrayGenerator};
use nanocost::numeric::{bootstrap_mean_ci, Sampler};
use nanocost::units::{Area, FeatureSize, TransistorCount, Yield};
use nanocost::yield_model::{
    DefectDensity, DefectProcess, PoissonModel, WaferMapSimulator, YieldModel,
};

#[test]
fn wafer_map_ground_truth_validates_the_analytic_family() {
    let sim = WaferMapSimulator::new(WaferSpec::standard_200mm(), Area::from_cm2(1.5), 0.5)
        .expect("valid configuration");
    let density = DefectDensity::per_cm2(0.6).expect("valid");

    // Uniform process ≈ Poisson.
    let mut sampler = Sampler::seeded(404);
    let uniform = sim.simulate(&mut sampler, DefectProcess::Uniform { density }, 100);
    let poisson = PoissonModel.die_yield(sim.critical_area(), density);
    assert!((uniform.empirical_yield.value() - poisson.value()).abs() < 0.03);

    // Clustering at the same mean density helps and is over-dispersed.
    let mut sampler = Sampler::seeded(404);
    let clustered = sim.simulate(
        &mut sampler,
        DefectProcess::Clustered {
            density,
            mean_per_cluster: 8.0,
            sigma_mm: 2.0,
        },
        100,
    );
    assert!(clustered.empirical_yield.value() > uniform.empirical_yield.value());
    assert!(clustered.dispersion() > 1.5);
    assert!(clustered.fitted_alpha().expect("over-dispersed") < 2.0);
}

#[test]
fn time_to_market_reconciles_figure1_with_figure4() {
    // The full EXT-TTM pipeline through the facade: under fast ASP
    // erosion, the profit-optimal density is sparser than the
    // cost-optimal one and sparser than under a slow market.
    let lambda = FeatureSize::from_microns(0.18).expect("valid");
    let transistors = TransistorCount::from_millions(10.0);
    let y = Yield::new(0.8).expect("valid");
    let demand = 2.0e6;

    let fast = ProfitModel::competitive_default();
    let profit_fast = fast
        .optimal_sd(lambda, transistors, demand, y, 110.0, 1_200.0)
        .expect("valid bracket");
    let cost_fast = fast
        .optimal_sd_cost(lambda, transistors, demand, y, 110.0, 1_200.0)
        .expect("valid bracket");
    let profit_slow = ProfitModel::slow_market_default()
        .optimal_sd(lambda, transistors, demand, y, 110.0, 1_200.0)
        .expect("valid bracket");

    assert!(profit_fast.sd > cost_fast.sd);
    assert!(profit_fast.sd > profit_slow.sd);
    // And the chosen point is profitable at all in both markets.
    assert!(profit_fast.profit.amount() > 0.0);
    assert!(profit_slow.profit.amount() > 0.0);
}

#[test]
fn delay_study_grounds_the_prediction_model() {
    // The physical Elmore/coupling study produces a σ(λ) with the same
    // direction and magnitude the abstract PredictionModel assumes.
    let study = DelayStudy::nanometer_default();
    let prox = ProximityModel::default();
    let sigma_at = |um: f64| {
        let mut s = Sampler::seeded(77);
        study
            .run(&mut s, &prox, FeatureSize::from_microns(um).expect("valid"))
            .expect("valid study")
            .sigma()
    };
    let coarse = sigma_at(0.35);
    let fine = sigma_at(0.07);
    assert!(fine > coarse);
    assert!((0.02..0.3).contains(&coarse));
    assert!((0.02..0.3).contains(&fine));
}

#[test]
fn node_selection_is_demand_sensitive_through_the_facade() {
    // EXT-NODE end to end: a niche product and a mainstream product land
    // on different process generations.
    let model = GeneralizedCostModel::nanometer_default();
    let transistors = TransistorCount::from_millions(10.0);
    let niche = cheapest_node(&model, transistors, 3.0e4, (0.05, 0.6), (105.0, 2_000.0))
        .expect("sweep succeeds")
        .expect("candidates exist");
    let mainstream = cheapest_node(&model, transistors, 2.0e7, (0.05, 0.6), (105.0, 2_000.0))
        .expect("sweep succeeds")
        .expect("candidates exist");
    assert!(mainstream.lambda_um < niche.lambda_um);
    assert!(mainstream.die_cost.amount() < niche.die_cost.amount());
}

#[test]
fn auto_configured_extractor_matches_hand_tuned_on_memory() {
    let array = MemoryArrayGenerator::new(24, 32)
        .expect("valid")
        .generate()
        .expect("valid");
    let analysis = auto_analysis(array.grid(), 40, 16).expect("valid");
    assert_eq!((analysis.window_w, analysis.window_h), (14, 13));
    let report = analysis.analyze(array.grid()).expect("window fits");
    assert!(report.reuse_factor() > 50.0);
}

#[test]
fn bootstrap_ci_quantifies_simulation_uncertainty() {
    // The wafer-map empirical yield comes with a defensible error bar.
    let sim = WaferMapSimulator::new(WaferSpec::standard_200mm(), Area::from_cm2(1.5), 0.5)
        .expect("valid configuration");
    let density = DefectDensity::per_cm2(0.6).expect("valid");
    let mut sampler = Sampler::seeded(11);
    // Per-wafer yields as the bootstrap population.
    let per_wafer: Vec<f64> = (0..40)
        .map(|_| {
            sim.simulate(&mut sampler, DefectProcess::Uniform { density }, 1)
                .empirical_yield
                .value()
        })
        .collect();
    let ci = bootstrap_mean_ci(&per_wafer, 500, 0.95, 3).expect("valid samples");
    let analytic = PoissonModel
        .die_yield(sim.critical_area(), density)
        .value();
    assert!(
        ci.contains(analytic),
        "95% CI [{:.3}, {:.3}] should contain the Poisson value {:.3}",
        ci.lo,
        ci.hi,
        analytic
    );
}
